"""Structured deterministic sensing: LFSR-circulant binary matrices.

A step toward the paper's "analog CS" goal: a *circulant* binary
matrix needs only one pseudo-random master row (an LFSR bit sequence);
every other row is a cyclic shift.  In hardware that is a single shift
register instead of per-column index generation — even cheaper than
sparse binary — and circulant structure admits FFT-based fast
multiplication on the decoder.  The trade-off: rows are highly
structured, so recovery degrades sooner at aggressive undersampling.
The sensing ablation quantifies that trade-off.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SensingError
from ..utils import derive_seed
from .base import SensingMatrix
from .rng import GaloisLfsr16


class LfsrCirculantMatrix(SensingMatrix):
    """Binary circulant ``Phi`` built from one LFSR master row.

    The master row has density ``density`` (fraction of ones); row ``i``
    is the master row cyclically shifted by ``i * stride`` with
    ``stride = n // m`` (spreading the m selected shifts uniformly).
    Entries are scaled so columns have approximately unit norm.
    """

    def __init__(
        self,
        m: int,
        n: int,
        density: float = 0.25,
        seed: int = 2011,
    ) -> None:
        super().__init__(m, n)
        if not 0.0 < density <= 0.5:
            raise SensingError(
                f"density must be in (0, 0.5], got {density}"
            )
        self.density = float(density)
        self.seed = int(seed)

        lfsr = GaloisLfsr16(derive_seed(seed, "lfsr-circulant", m, n))
        threshold = int(round(self.density * 65536))
        master = np.array(
            [1 if lfsr.next_u16() < threshold else 0 for _ in range(n)],
            dtype=np.int8,
        )
        if master.sum() == 0:
            master[0] = 1  # degenerate draw: force a nonzero row
        self._master = master
        self._stride = max(1, n // m)

        ones_per_row = int(master.sum())
        # each column receives ~ m * density ones; scale for unit norm
        ones_per_column = max(1.0, m * ones_per_row / n)
        self._scale = 1.0 / math.sqrt(ones_per_column)

        rows = np.empty((m, n), dtype=np.float64)
        for i in range(m):
            rows[i] = np.roll(master, i * self._stride)
        self._matrix = rows * self._scale
        self._matrix.setflags(write=False)

    @property
    def master_row(self) -> np.ndarray:
        """The LFSR-generated master bit row."""
        return self._master

    @property
    def stride(self) -> int:
        """Cyclic shift between consecutive rows."""
        return self._stride

    def matrix(self) -> np.ndarray:
        return self._matrix

    def measure_integer(self, x: np.ndarray) -> np.ndarray:
        """Integer accumulation against the binary pattern (scale deferred)."""
        x = np.asarray(x)
        if x.shape != (self.n,):
            raise SensingError(f"expected signal shape ({self.n},), got {x.shape}")
        if not np.issubdtype(x.dtype, np.integer):
            raise SensingError("integer path requires an integer signal")
        pattern = self._master.astype(np.int64)
        out = np.empty(self.m, dtype=np.int64)
        values = x.astype(np.int64)
        for i in range(self.m):
            out[i] = int(np.dot(np.roll(pattern, i * self._stride), values))
        return out

    def storage_bits(self) -> int:
        """One master row of n bits plus the 16-bit LFSR seed."""
        return self.n + 16
