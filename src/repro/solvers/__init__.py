"""CS reconstruction solvers.

The paper cites four families of recovery algorithms (interior-point,
gradient projection, iterative thresholding, greedy pursuit) and adopts
FISTA.  All of them are implemented here as baselines around a common
interface, so the solver-comparison benchmark can reproduce the paper's
motivation quantitatively:

- :func:`~repro.solvers.fista.fista` — the paper's solver (Beck &
  Teboulle 2009), O(1/k^2);
- :func:`~repro.solvers.ista.ista` — plain iterative shrinkage, O(1/k);
- :func:`~repro.solvers.twist.twist` — two-step IST (Bioucas-Dias &
  Figueiredo 2007);
- :func:`~repro.solvers.omp.omp` — orthogonal matching pursuit (Tropp
  2004);
- :func:`~repro.solvers.gpsr.gpsr` — gradient projection for sparse
  reconstruction (Figueiredo et al. 2007);
- :func:`~repro.solvers.bp.basis_pursuit` — the LP/interior-point
  formulation (Chen et al. 1999).

:mod:`repro.solvers.batched` scales the adopted FISTA to many windows
at once: :class:`~repro.solvers.batched.BatchedFista` stacks measurement
vectors into an ``(m, B)`` matrix and iterates all columns with one GEMM
pair per step, per-column convergence masking and warm starts.
"""

from .base import SolverResult, as_operator
from .prox import soft_threshold, soft_threshold_branchy, soft_threshold_if_converted
from .lipschitz import power_iteration_norm, lipschitz_constant
from .ista import ista
from .fista import fista, lambda_from_fraction
from .batched import (
    DEFAULT_POLISH_CORRIDOR,
    BatchedFista,
    BatchedSolverResult,
    BatchWorkspace,
    HybridSolveResult,
    batched_fista,
    batched_lambda_from_fraction,
    structured_batched_fista,
)
from .sparse_apply import SparsePhiApply, StructuredOperator
from .twist import twist
from .omp import omp
from .gpsr import gpsr
from .bp import basis_pursuit
from .debias import debias

__all__ = [
    "debias",
    "DEFAULT_POLISH_CORRIDOR",
    "BatchedFista",
    "BatchedSolverResult",
    "BatchWorkspace",
    "HybridSolveResult",
    "SparsePhiApply",
    "StructuredOperator",
    "batched_fista",
    "batched_lambda_from_fraction",
    "structured_batched_fista",
    "SolverResult",
    "as_operator",
    "soft_threshold",
    "soft_threshold_branchy",
    "soft_threshold_if_converted",
    "power_iteration_norm",
    "lipschitz_constant",
    "ista",
    "fista",
    "lambda_from_fraction",
    "twist",
    "omp",
    "gpsr",
    "basis_pursuit",
]
