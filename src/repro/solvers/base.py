"""Shared solver plumbing: operator adaptation, results, stopping rules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import DenseOperator, LinearOperator


def as_operator(a: LinearOperator | np.ndarray) -> LinearOperator:
    """Accept a dense matrix or a :class:`LinearOperator` uniformly."""
    if isinstance(a, LinearOperator):
        return a
    array = np.asarray(a)
    if array.ndim != 2:
        raise SolverError(f"system operator must be 2-D, got shape {array.shape}")
    return DenseOperator(array)


@dataclass
class SolverResult:
    """Outcome of a reconstruction solve.

    Attributes
    ----------
    coefficients:
        The recovered sparse coefficient vector ``alpha``.
    iterations:
        Iterations actually executed.
    converged:
        Whether the stopping tolerance was met within the budget.
    stop_reason:
        ``"tolerance"``, ``"max_iterations"`` or solver-specific reasons
        (e.g. ``"residual"`` for greedy methods).
    objective_history:
        Objective value per iteration, when the solver tracks it.
    residual_norm:
        Final ``||A alpha - y||_2``.
    """

    coefficients: np.ndarray
    iterations: int
    converged: bool
    stop_reason: str
    residual_norm: float
    objective_history: list[float] = field(default_factory=list)

    @property
    def objective(self) -> float:
        """Final objective value (``nan`` if no history was tracked)."""
        return self.objective_history[-1] if self.objective_history else float("nan")


def check_measurements(a: LinearOperator, y: np.ndarray) -> np.ndarray:
    """Validate the measurement vector against the operator shape."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise SolverError(f"y must be 1-D, got shape {y.shape}")
    if y.shape[0] != a.shape[0]:
        raise SolverError(
            f"y length {y.shape[0]} does not match operator rows {a.shape[0]}"
        )
    return y


def relative_change(new: np.ndarray, old: np.ndarray) -> float:
    """``||new - old|| / max(||old||, 1)`` — the standard stopping metric."""
    denominator = max(float(np.linalg.norm(old)), 1.0)
    return float(np.linalg.norm(new - old)) / denominator
