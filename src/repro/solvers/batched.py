"""Batched FISTA: many measurement vectors solved as one matrix problem.

The serial decoder reconstructs one 2-second window at a time, so every
FISTA iteration is a pair of matrix-*vector* products plus Python-level
bookkeeping.  At scale (offline re-decodes, multi-lead Holter dumps, a
server decoding many patients) the same iteration can be written over a
stacked measurement matrix ``Y`` of shape ``(m, B)``:

    residual  = A @ Momentum - Y          # one GEMM instead of B GEMVs
    gradient  = 2 A^T residual            # ditto
    Alpha     = soft_threshold(Momentum - gradient / L, lam_b / L)

with a *per-column* regularization weight ``lam_b`` and a per-column
convergence mask: a column whose relative iterate change drops below the
tolerance is frozen (its result no longer updates and it leaves the
active set), so the batch performs exactly the iterations the serial
path would — column ``b`` of the batched solve follows the same iterate
sequence as ``fista(a, Y[:, b], lam_b)``, down to floating-point noise
in the BLAS kernels.

The momentum restart parameter ``t_k`` depends only on the iteration
number, never on the data, so one global schedule serves all columns.

Warm starts are supported through ``x0`` of shape ``(n, B)`` — e.g. the
previous batch's solutions when streaming chunk by chunk.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult
from .lipschitz import lipschitz_constant


def _as_dense(a: LinearOperator | np.ndarray) -> np.ndarray:
    """Materialize the system operator for GEMM-based iterations."""
    if isinstance(a, LinearOperator):
        return a.to_dense()
    array = np.asarray(a)
    if array.ndim != 2:
        raise SolverError(f"system operator must be 2-D, got shape {array.shape}")
    return array


def check_measurement_matrix(
    a: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Validate a stacked measurement matrix ``(m, B)`` against ``A``."""
    ys = np.asarray(ys)
    if ys.ndim != 2:
        raise SolverError(
            f"ys must be 2-D (m, batch), got shape {ys.shape}"
        )
    if ys.shape[0] != a.shape[0]:
        raise SolverError(
            f"ys rows {ys.shape[0]} do not match operator rows {a.shape[0]}"
        )
    if ys.shape[1] == 0:
        raise SolverError("ys must contain at least one column")
    return ys


def batched_lambda_from_fraction(
    a: LinearOperator | np.ndarray,
    ys: np.ndarray,
    fraction: float | np.ndarray,
) -> np.ndarray:
    """Per-column regularization weights ``fraction_b * ||A^T y_b||_inf``.

    The batched twin of
    :func:`~repro.solvers.fista.lambda_from_fraction`: one GEMM computes
    every column's correlation at once.  All-zero columns get the bare
    fraction, matching the serial rule.  ``fraction`` may be a scalar
    shared by every column or a ``(B,)`` vector — a cross-stream batch
    (see :mod:`repro.fleet`) can mix streams configured with different
    ``lam`` fractions in one solve.
    """
    fraction = np.asarray(fraction, dtype=np.float64)
    if np.any(fraction <= 0):
        raise SolverError(f"fraction must be positive, got {fraction.min()}")
    dense = _as_dense(a)
    ys = check_measurement_matrix(dense, ys)
    if fraction.ndim not in (0, 1) or (
        fraction.ndim == 1 and fraction.shape[0] != ys.shape[1]
    ):
        raise SolverError(
            f"fraction shape {fraction.shape} does not match batch {ys.shape[1]}"
        )
    correlation = np.max(np.abs(dense.T @ ys), axis=0)
    return np.where(correlation == 0, fraction, fraction * correlation)


class BatchWorkspace:
    """Reusable per-(kind, dtype) arenas for batched solves.

    A fleet scheduler feeds a :class:`BatchedFista` a long sequence of
    measurement blocks; reallocating the per-iteration scratch arrays
    for every block is measurable overhead at small operator sizes.
    The workspace keeps one flat grow-only arena per ``(kind, dtype)``
    pair and hands out contiguous reshaped views into it:

    - a repeated request with the same shape and dtype returns the
      *same* view objects (steady-state serve allocates nothing);
    - a narrower request reuses the arena through a smaller view;
    - a different **dtype** gets its own arena — the hybrid-precision
      path alternates float32 iterate batches with float64 polish
      re-solves on one workspace, and each precision must keep its own
      correctly-typed buffers rather than thrash a single slot (or,
      worse, hand a stale-dtype buffer to the solver).

    Arenas are plain scratch: every kernel fully overwrites its buffer
    before reading it, so views may alias across requests of the same
    kind.  Buffers handed out here must never escape a solve — results
    returned to callers are always freshly allocated.
    """

    def __init__(self) -> None:
        #: flat backing store per (kind, dtype); grows, never shrinks
        self._arenas: dict[tuple[str, np.dtype], np.ndarray] = {}
        #: cached reshaped views keyed by ((kind, dtype), shape) so a
        #: repeated same-signature request returns identical objects
        self._views: dict[tuple, np.ndarray] = {}

    def arena(
        self, kind: str, shape: tuple[int, ...], dtype: np.dtype | type
    ) -> np.ndarray:
        """A contiguous ``shape`` view into the ``(kind, dtype)`` arena."""
        key = (kind, np.dtype(dtype))
        size = 1
        for extent in shape:
            size *= int(extent)
        flat = self._arenas.get(key)
        if flat is None or flat.size < size:
            flat = np.empty(max(size, 1), dtype=dtype)
            self._arenas[key] = flat
            for stale in [k for k in self._views if k[0] == key]:
                del self._views[stale]
        view_key = (key, tuple(shape))
        view = self._views.get(view_key)
        if view is None:
            view = flat[:size].reshape(shape)
            self._views[view_key] = view
        return view

    def buffers(
        self, m: int, n: int, width: int, dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(resid (m,B), u (n,B), alpha (n,B), diff (n,B))``."""
        return (
            self.arena("resid", (m, width), dtype),
            self.arena("u", (n, width), dtype),
            self.arena("alpha", (n, width), dtype),
            self.arena("diff", (n, width), dtype),
        )


@dataclass
class BatchedSolverResult:
    """Per-column outcome of one batched reconstruction.

    Attributes
    ----------
    coefficients:
        ``(n, B)`` matrix; column ``b`` is the recovered ``alpha`` of
        measurement column ``b``.
    iterations:
        ``(B,)`` iterations each column actually executed before its
        convergence mask froze it (or the shared cap was hit).
    converged:
        ``(B,)`` boolean convergence flags.
    residual_norms:
        ``(B,)`` final ``||A alpha_b - y_b||_2``.
    total_iterations:
        Iterations of the batched loop itself (``max(iterations)``).
    """

    coefficients: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    residual_norms: np.ndarray
    total_iterations: int
    stop_reasons: list[str] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        """Number of columns solved."""
        return int(self.coefficients.shape[1])

    def per_column(self, column: int) -> SolverResult:
        """Adapt one column to the serial :class:`SolverResult` shape."""
        if not 0 <= column < self.batch_size:
            raise IndexError(
                f"column {column} out of range for batch {self.batch_size}"
            )
        return SolverResult(
            coefficients=self.coefficients[:, column].copy(),
            iterations=int(self.iterations[column]),
            converged=bool(self.converged[column]),
            stop_reason=self.stop_reasons[column],
            residual_norm=float(self.residual_norms[column]),
        )


def batched_fista(
    a: LinearOperator | np.ndarray,
    ys: np.ndarray,
    lams: np.ndarray | float,
    max_iterations: int = 2000,
    tolerance: float = 1e-4,
    lipschitz: float | None = None,
    x0: np.ndarray | None = None,
    operator_t: np.ndarray | None = None,
    workspace: BatchWorkspace | None = None,
) -> BatchedSolverResult:
    """Solve ``min ||A alpha_b - y_b||^2 + lam_b ||alpha_b||_1`` for all b.

    Parameters
    ----------
    a:
        System operator; materialized dense for GEMM iterations.
    ys:
        Stacked measurements, shape ``(m, B)`` (one column per window).
    lams:
        Per-column l1 weights ``(B,)``, or a scalar shared by all.
    max_iterations, tolerance, lipschitz:
        As in :func:`~repro.solvers.fista.fista`; the Lipschitz constant
        is shared (same operator for every column).
    x0:
        Warm start, shape ``(n, B)`` — e.g. the previous chunk's
        coefficients when decoding a stream in consecutive batches.
    operator_t:
        Precomputed C-contiguous transpose of the operator (a reusable
        :class:`BatchedFista` caches it); computed here when omitted or
        when its dtype does not match the solve.
    workspace:
        Optional :class:`BatchWorkspace` providing the per-iteration
        scratch buffers; a reusable :class:`BatchedFista` passes its own
        so a stream of same-width solves allocates them once.
    """
    dense = _as_dense(a)
    ys = check_measurement_matrix(dense, ys)
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
    if tolerance <= 0:
        raise SolverError(f"tolerance must be positive, got {tolerance}")

    dtype = np.float32 if ys.dtype == np.float32 else np.float64
    ys = np.asarray(ys, dtype=dtype)
    n = dense.shape[1]
    batch = ys.shape[1]
    operator = np.asarray(dense, dtype=dtype)

    lams = np.broadcast_to(np.asarray(lams, dtype=np.float64), (batch,)).copy()
    if np.any(lams <= 0):
        raise SolverError(f"lams must be positive, got {lams.min()}")

    if lipschitz is None:
        lipschitz = lipschitz_constant(np.asarray(dense, dtype=np.float64))
    if lipschitz <= 0:
        raise SolverError(f"lipschitz must be positive, got {lipschitz}")
    step = dtype(1.0 / lipschitz)
    thresholds = (lams / lipschitz).astype(dtype)

    if x0 is None:
        alpha = np.zeros((n, batch), dtype=dtype)
    else:
        alpha = np.asarray(x0, dtype=dtype).copy()
        if alpha.shape != (n, batch):
            raise SolverError(
                f"x0 shape {alpha.shape} does not match ({n}, {batch})"
            )

    # Working-set layout: every per-iteration operation runs on whole
    # contiguous arrays (one GEMM pair, in-place elementwise math on
    # preallocated buffers) — never on fancy-indexed column subsets,
    # whose copies would eat the BLAS-3 advantage.  A column that
    # converges is snapshotted into the output immediately (freezing
    # its *result* at exactly the iterate the serial solver would
    # return) but keeps riding in the working arrays — its extra
    # iterations are wasted flops, not wrong answers.  When >= 1/8 of
    # the working set is frozen, the arrays are compacted down to the
    # live columns, bounding the waste.
    work_y = ys.copy()
    work_prev = alpha.copy()  # previous iterate (alpha_{k-1})
    work_mom = alpha.copy()
    work_thr = thresholds.copy()
    order = np.arange(batch)  # original column id of each working column
    live = np.ones(batch, dtype=bool)
    # cached per-column ||alpha_{k-1}||_2 for the stopping rule's scale
    prev_norms = np.sqrt(
        np.einsum("ij,ij->j", work_prev, work_prev)
    ).astype(np.float64)

    m = operator.shape[0]
    # contiguous transpose: BLAS runs measurably faster on it than on
    # the strided .T view at these small GEMM sizes
    if operator_t is None or operator_t.dtype != dtype:
        operator_t = np.ascontiguousarray(operator.T)
    if workspace is not None:
        buf_resid, buf_u, buf_alpha, buf_diff = workspace.buffers(
            m, n, batch, dtype
        )
    else:
        buf_resid = np.empty((m, batch), dtype=dtype)
        buf_u = np.empty((n, batch), dtype=dtype)
        buf_alpha = np.empty((n, batch), dtype=dtype)
        buf_diff = np.empty((n, batch), dtype=dtype)

    iterations = np.zeros(batch, dtype=np.int64)
    converged = np.zeros(batch, dtype=bool)
    t_k = 1.0
    total_iterations = 0
    # doubling is exact, so g*(2*step) rounds identically to (2*g)*step
    two_step = dtype(2.0) * step

    # repro-lint: hot
    for iteration in range(1, max_iterations + 1):
        total_iterations = iteration

        np.matmul(operator, work_mom, out=buf_resid)
        buf_resid -= work_y
        np.matmul(operator_t, buf_resid, out=buf_u)
        buf_u *= two_step
        np.subtract(work_mom, buf_u, out=buf_u)  # u = mom - step * grad
        # soft thresholding: alpha = sign(u) * max(|u| - thr_b, 0)
        np.sign(buf_u, out=buf_alpha)
        np.abs(buf_u, out=buf_u)
        buf_u -= work_thr
        np.maximum(buf_u, 0, out=buf_u)
        buf_alpha *= buf_u

        t_next = (1.0 + math.sqrt(1.0 + 4.0 * t_k * t_k)) / 2.0
        np.subtract(buf_alpha, work_prev, out=buf_diff)
        np.multiply(buf_diff, dtype((t_k - 1.0) / t_next), out=work_mom)
        work_mom += buf_alpha
        t_k = t_next

        # relative iterate change per column (serial stopping rule)
        change = np.sqrt(
            np.einsum("ij,ij->j", buf_diff, buf_diff)
        ).astype(np.float64)
        scale = np.maximum(prev_norms, 1.0)
        finished = live & ((change / scale) < tolerance)

        # the new iterate becomes next round's previous; the old
        # previous array is recycled as the next alpha buffer
        work_prev, buf_alpha = buf_alpha, work_prev
        prev_norms = np.sqrt(
            np.einsum("ij,ij->j", work_prev, work_prev)
        ).astype(np.float64)

        if finished.any():
            done = order[finished]
            alpha[:, done] = work_prev[:, finished]
            iterations[done] = iteration
            converged[done] = True
            live[finished] = False
            frozen = live.size - int(np.count_nonzero(live))
            if frozen == live.size:
                break
            if frozen >= (live.size + 7) // 8:  # repro-lint: disable=RL003 — compaction reallocates the working set at most log2(B) times per solve; amortized O(1) per window
                work_y = np.ascontiguousarray(work_y[:, live])
                work_prev = np.ascontiguousarray(work_prev[:, live])
                work_mom = np.ascontiguousarray(work_mom[:, live])
                work_thr = work_thr[live].copy()
                prev_norms = prev_norms[live].copy()
                order = order[live]
                live = np.ones(order.size, dtype=bool)
                width = order.size
                buf_resid = np.empty((m, width), dtype=dtype)
                buf_u = np.empty((n, width), dtype=dtype)
                buf_alpha = np.empty((n, width), dtype=dtype)
                buf_diff = np.empty((n, width), dtype=dtype)

    still_running = order[live]
    if still_running.size:
        alpha[:, still_running] = work_prev[:, live]
        iterations[still_running] = total_iterations

    residual_norms = np.linalg.norm(
        operator @ alpha - ys, axis=0
    ).astype(np.float64)
    stop_reasons = [
        "tolerance" if flag else "max_iterations" for flag in converged
    ]
    return BatchedSolverResult(
        coefficients=alpha,
        iterations=iterations,
        converged=converged,
        residual_norms=residual_norms,
        total_iterations=total_iterations,
        stop_reasons=stop_reasons,
    )


#: default hybrid-precision polish gate: a column whose relative
#: residual ``||y - Phi s|| / ||y||`` exceeds this after the float32
#: solve is re-solved in float64.  Calibrated against the fig-6
#: corridor: on the paper-point workload the float32 and float64
#: relative residuals agree to < 0.03% and sit around 0.01-0.02, an
#: order of magnitude below the gate — it fires only when reduced
#: precision actually broke a column (underflow, overflow, NaN), not
#: on ordinary hard windows both precisions struggle with equally.
DEFAULT_POLISH_CORRIDOR = 0.2


@dataclass
class HybridSolveResult:
    """Outcome of one structured (hybrid-precision) batched solve.

    Attributes
    ----------
    signals:
        ``(n_samples, B)`` float64 synthesized time-domain block (no dc
        offset) — the structured path owns synthesis, so callers never
        re-run the inverse transform.
    coefficients:
        ``(n, B)`` float64 wavelet coefficients (polished columns hold
        their float64 re-solve).
    iterations:
        ``(B,)`` total iterations per column: the fast-path count plus,
        for polished columns, the float64 re-solve's count.
    converged, residual_norms, total_iterations, stop_reasons:
        As in :class:`BatchedSolverResult`; ``residual_norms`` is the
        sparse-gate norm ``||Phi s_b - y_b||_2``.
    rel_residuals:
        ``(B,)`` the gate statistic ``||Phi s_b - y_b|| / ||y_b||``.
    polished:
        ``(B,)`` bool — which columns left the corridor after the fast
        solve and fell back to the float64 polish.
    """

    signals: np.ndarray
    coefficients: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    residual_norms: np.ndarray
    rel_residuals: np.ndarray
    polished: np.ndarray
    total_iterations: int
    stop_reasons: list[str] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        """Number of columns solved."""
        return int(self.coefficients.shape[1])

    def per_column(self, column: int) -> SolverResult:
        """Adapt one column to the serial :class:`SolverResult` shape."""
        if not 0 <= column < self.batch_size:
            raise IndexError(
                f"column {column} out of range for batch {self.batch_size}"
            )
        return SolverResult(
            coefficients=self.coefficients[:, column].copy(),
            iterations=int(self.iterations[column]),
            converged=bool(self.converged[column]),
            stop_reason=self.stop_reasons[column],
            residual_norm=float(self.residual_norms[column]),
        )


def structured_batched_fista(
    structure,
    ys: np.ndarray,
    fractions: np.ndarray | float,
    max_iterations: int = 2000,
    tolerance: float = 1e-4,
    iterate_dtype: np.dtype | type = np.float32,
    polish_corridor: float = DEFAULT_POLISH_CORRIDOR,
    workspace: BatchWorkspace | None = None,
) -> HybridSolveResult:
    """Solve a measurement block against a factored ``A = Phi Psi``.

    The structured pipeline, per batch:

    1. per-column lambdas from one float64 correlation GEMM (identical
       weights to the pure-float64 path, so the two backends optimize
       the same objective);
    2. the FISTA iteration in ``iterate_dtype`` — float32 is the fast
       path (the GEMM pair moves half the bytes), float64 is the
       structured reference used by the per-lever benches;
    3. synthesis as a dense ``Psi`` GEMM in the iterate precision (the
       ``Psi``-side ops stay dense — an orthonormal basis has no index
       structure to gather);
    4. the **sparse residual gate**: ``||y - Phi s||`` per column via
       the scatter/gather kernels of
       :class:`~repro.solvers.sparse_apply.SparsePhiApply` (``n*d``
       adds instead of an ``m*n`` GEMM — this is where the sparse
       binary structure pays on the hot path);
    5. columns whose relative residual leaves ``polish_corridor`` (or
       is non-finite) are re-solved in float64, warm-started from
       their float32 coefficients (non-finite warm starts reset to
       zero), then re-synthesized and re-gated.

    ``structure`` is a
    :class:`~repro.solvers.sparse_apply.StructuredOperator`.  All
    scratch comes from ``workspace`` arenas (both dtypes coexist);
    every array in the returned :class:`HybridSolveResult` is freshly
    allocated and safe to hold across subsequent solves.
    """
    iterate_dtype = np.dtype(iterate_dtype)
    if iterate_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise SolverError(
            f"iterate_dtype must be float32 or float64, got {iterate_dtype}"
        )
    if polish_corridor <= 0:
        raise SolverError(
            f"polish_corridor must be positive, got {polish_corridor}"
        )
    ys64 = np.asarray(
        check_measurement_matrix(structure.dense64, ys), dtype=np.float64
    )
    if workspace is None:
        workspace = BatchWorkspace()
    m, batch = ys64.shape
    samples = structure.n_samples

    lams = batched_lambda_from_fraction(structure.dense64, ys64, fractions)

    # the float32 leg may legitimately overflow to inf/NaN on a column
    # single precision cannot represent — that is exactly what the
    # residual gate below exists to catch, so numpy's overflow/invalid
    # warnings are noise here (the float64 leg keeps them)
    fast_errstate = (
        np.errstate(over="ignore", invalid="ignore")
        if iterate_dtype == np.float32
        else contextlib.nullcontext()
    )
    with fast_errstate:
        # repro-lint: f32
        if iterate_dtype == np.float32:
            ys_fast = workspace.arena("ys32", (m, batch), np.float32)
            np.copyto(ys_fast, ys64)
        else:
            ys_fast = ys64
        fast = batched_fista(
            structure.operator(iterate_dtype),
            ys_fast,
            lams,
            max_iterations=max_iterations,
            tolerance=tolerance,
            lipschitz=structure.lipschitz,
            operator_t=structure.operator_t(iterate_dtype),
            workspace=workspace,
        )

        coefficients = np.asarray(fast.coefficients, dtype=np.float64)
        # repro-lint: f32
        if iterate_dtype == np.float32:
            synth = workspace.arena("synth32", (samples, batch), np.float32)
            np.matmul(structure.psi32, fast.coefficients, out=synth)
            signals = synth.astype(np.float64)
        else:
            signals = structure.psi64 @ coefficients

    gate_gather = workspace.arena(
        "phi_gather", (structure.phi.nnz, batch), np.float64
    )
    gate_resid = workspace.arena("phi_resid", (m, batch), np.float64)
    structure.phi.residual(signals, ys64, out=gate_resid, gather=gate_gather)
    residual_norms = np.sqrt(np.einsum("ij,ij->j", gate_resid, gate_resid))
    y_floor = np.maximum(
        np.sqrt(np.einsum("ij,ij->j", ys64, ys64)),
        np.finfo(np.float64).tiny,
    )
    rel_residuals = residual_norms / y_floor
    # NaN/inf-safe: only a finite residual inside the corridor passes
    within = np.isfinite(rel_residuals) & (rel_residuals <= polish_corridor)

    iterations = fast.iterations.copy()
    converged = fast.converged.copy()
    polished = np.zeros(batch, dtype=bool)
    total_iterations = fast.total_iterations

    if iterate_dtype == np.float32 and not within.all():
        bad = np.flatnonzero(~within)
        ys_bad = np.ascontiguousarray(ys64[:, bad])
        x0 = coefficients[:, bad]  # fancy indexing: already a copy
        x0[~np.isfinite(x0)] = 0.0
        polish = batched_fista(
            structure.dense64,
            ys_bad,
            lams[bad],
            max_iterations=max_iterations,
            tolerance=tolerance,
            lipschitz=structure.lipschitz,
            x0=x0,
            operator_t=structure.dense64_t,
            workspace=workspace,
        )
        coefficients[:, bad] = polish.coefficients
        fixed = structure.psi64 @ polish.coefficients
        signals[:, bad] = fixed
        fixed_resid = structure.phi.residual(fixed, ys_bad)
        residual_norms[bad] = np.linalg.norm(fixed_resid, axis=0)
        rel_residuals[bad] = residual_norms[bad] / y_floor[bad]
        iterations[bad] += polish.iterations
        converged[bad] = polish.converged
        polished[bad] = True
        total_iterations += polish.total_iterations

    stop_reasons = [
        "tolerance" if flag else "max_iterations" for flag in converged
    ]
    return HybridSolveResult(
        signals=signals,
        coefficients=coefficients,
        iterations=iterations,
        converged=converged,
        residual_norms=residual_norms,
        rel_residuals=rel_residuals,
        polished=polished,
        total_iterations=total_iterations,
        stop_reasons=stop_reasons,
    )


class BatchedFista:
    """A reusable batched solver bound to one system operator.

    Materializes the dense operator and its Lipschitz constant once
    (both depend only on the fixed sensing matrix and wavelet basis,
    exactly like the serial decoder's precomputation) and then solves
    arbitrary ``(m, B)`` measurement blocks.

    Not reentrant: :meth:`solve` hands its instance-level
    :class:`BatchWorkspace` to every call, so one instance serves one
    caller at a time — concurrent solves on a shared instance would
    scribble over each other's scratch buffers.  The fleet executor
    respects this by sharding across *processes* (one solver per
    worker); threads must each own a solver (or call
    :func:`batched_fista` directly, which allocates private buffers).
    """

    def __init__(
        self,
        a: LinearOperator | np.ndarray,
        lipschitz: float | None = None,
        structure=None,
    ) -> None:
        self._dense = _as_dense(a)
        self._dense_t = np.ascontiguousarray(self._dense.T)
        self._workspace = BatchWorkspace()
        #: optional StructuredOperator enabling :meth:`solve_structured`
        self._structure = structure
        self._lipschitz = (
            lipschitz
            if lipschitz is not None
            else lipschitz_constant(np.asarray(self._dense, dtype=np.float64))
        )
        if self._lipschitz <= 0:
            raise SolverError(
                f"lipschitz must be positive, got {self._lipschitz}"
            )

    @property
    def operator(self) -> np.ndarray:
        """The dense system operator the batch iterates against."""
        return self._dense

    @property
    def lipschitz(self) -> float:
        """Shared Lipschitz constant of the data-fidelity gradient."""
        return self._lipschitz

    @property
    def structure(self):
        """The bound factored operator (``None`` on plain instances)."""
        return self._structure

    @property
    def workspace(self) -> BatchWorkspace:
        """The instance's arena workspace (benches inspect its reuse)."""
        return self._workspace

    def lambdas(self, ys: np.ndarray, fraction: float) -> np.ndarray:
        """Per-column weights for a measurement block (one GEMM)."""
        return batched_lambda_from_fraction(self._dense, ys, fraction)

    def solve_structured(
        self,
        ys: np.ndarray,
        fractions: np.ndarray | float,
        max_iterations: int = 2000,
        tolerance: float = 1e-4,
        iterate_dtype: np.dtype | type = np.float32,
        polish_corridor: float = DEFAULT_POLISH_CORRIDOR,
    ) -> HybridSolveResult:
        """Run the hybrid-precision structured pipeline on one block.

        Requires a :class:`~repro.solvers.sparse_apply.StructuredOperator`
        bound at construction; shares this instance's workspace arenas,
        so alternating float32 fast solves and float64 polish re-solves
        reuse their respective per-dtype buffers across batches.
        """
        if self._structure is None:
            raise SolverError(
                "solve_structured requires a StructuredOperator; "
                "construct BatchedFista(..., structure=...)"
            )
        return structured_batched_fista(
            self._structure,
            ys,
            fractions,
            max_iterations=max_iterations,
            tolerance=tolerance,
            iterate_dtype=iterate_dtype,
            polish_corridor=polish_corridor,
            workspace=self._workspace,
        )

    def solve(
        self,
        ys: np.ndarray,
        lams: np.ndarray | float,
        max_iterations: int = 2000,
        tolerance: float = 1e-4,
        x0: np.ndarray | None = None,
    ) -> BatchedSolverResult:
        """Run the masked batched iteration on one measurement block."""
        return batched_fista(
            self._dense,
            ys,
            lams,
            max_iterations=max_iterations,
            tolerance=tolerance,
            lipschitz=self._lipschitz,
            x0=x0,
            operator_t=self._dense_t,
            workspace=self._workspace,
        )
