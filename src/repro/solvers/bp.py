"""Basis pursuit by linear programming (Chen, Donoho & Saunders 1999).

The interior-point family the paper rules out for embedded use.  The
equality-constrained problem

    min ||alpha||_1   subject to   A alpha = y

is recast as the LP ``min 1^T t`` with ``-t <= alpha <= t`` and solved
with :func:`scipy.optimize.linprog` (HiGHS).  The solver-comparison
benchmark uses it to quantify exactly *why* interior-point methods are
"computationally expensive ... which prevents the real-time
implementation on embedded platforms" (Section I).
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements


def basis_pursuit(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    tolerance: float = 1e-9,
) -> SolverResult:
    """Solve ``min ||alpha||_1 s.t. A alpha = y`` as a linear program.

    Variables are stacked ``z = [alpha; t]``; the LP is

        min 0^T alpha + 1^T t
        s.t.  A alpha = y,   alpha - t <= 0,   -alpha - t <= 0.
    """
    operator = as_operator(a)
    y = np.asarray(check_measurements(operator, y), dtype=np.float64)
    dense = operator.to_dense()
    m, n = dense.shape

    cost = np.concatenate([np.zeros(n), np.ones(n)])
    equality_lhs = np.hstack([dense, np.zeros((m, n))])
    identity = np.eye(n)
    upper_lhs = np.hstack([identity, -identity])
    lower_lhs = np.hstack([-identity, -identity])
    inequality_lhs = np.vstack([upper_lhs, lower_lhs])
    inequality_rhs = np.zeros(2 * n)
    bounds = [(None, None)] * n + [(0, None)] * n

    outcome = scipy.optimize.linprog(
        cost,
        A_ub=inequality_lhs,
        b_ub=inequality_rhs,
        A_eq=equality_lhs,
        b_eq=y,
        bounds=bounds,
        method="highs",
        options={"presolve": True},
    )
    if not outcome.success:
        raise SolverError(f"basis pursuit LP failed: {outcome.message}")

    alpha = outcome.x[:n]
    residual = float(np.linalg.norm(dense @ alpha - y))
    converged = residual <= max(tolerance, 1e-6 * max(np.linalg.norm(y), 1.0))
    return SolverResult(
        coefficients=alpha,
        iterations=int(outcome.nit),
        converged=converged,
        stop_reason="lp_optimal",
        residual_norm=residual,
    )
