"""Least-squares debiasing of l1 solutions (a standard CS refinement).

The l1 penalty that finds the support also shrinks the surviving
coefficients toward zero.  Debiasing re-solves the *unpenalized*
least-squares problem restricted to the recovered support (GPSR's
optional final phase, Figueiredo et al. 2007).  The paper does not
debias — its λ is small enough that shrinkage bias is minor — but the
extension is included for completeness and measured by the solver
benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements


def debias(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    result: SolverResult,
    support_threshold: float = 0.0,
    max_support: int | None = None,
) -> SolverResult:
    """Refit ``alpha`` by least squares on its recovered support.

    Parameters
    ----------
    a, y:
        The original system and measurements.
    result:
        A prior solve whose nonzero pattern defines the support.
    support_threshold:
        Coefficients with ``|alpha_i| <= threshold`` are treated as zero.
    max_support:
        Optional cap; keeps only the largest-magnitude coefficients (a
        least-squares refit needs ``support <= m`` to be determined).
    """
    operator = as_operator(a)
    y = np.asarray(check_measurements(operator, y), dtype=np.float64)
    coefficients = np.asarray(result.coefficients, dtype=np.float64)
    if coefficients.shape != (operator.shape[1],):
        raise SolverError("result does not match the operator's column count")
    if support_threshold < 0:
        raise SolverError(
            f"support_threshold must be >= 0, got {support_threshold}"
        )

    support = np.flatnonzero(np.abs(coefficients) > support_threshold)
    if max_support is not None:
        if max_support < 1:
            raise SolverError(f"max_support must be >= 1, got {max_support}")
        if len(support) > max_support:
            order = np.argsort(np.abs(coefficients[support]))[::-1]
            support = support[order[:max_support]]
    if len(support) == 0:
        return SolverResult(
            coefficients=np.zeros_like(coefficients),
            iterations=result.iterations,
            converged=result.converged,
            stop_reason=result.stop_reason + "+debias(empty)",
            residual_norm=float(np.linalg.norm(y)),
        )
    if len(support) > operator.shape[0]:
        # under-determined refit would not improve anything; keep as is
        return result

    dense = operator.to_dense()[:, support]
    solution, *_ = np.linalg.lstsq(dense, y, rcond=None)
    debiased = np.zeros_like(coefficients)
    debiased[support] = solution
    residual = float(np.linalg.norm(dense @ solution - y))
    return SolverResult(
        coefficients=debiased,
        iterations=result.iterations,
        converged=result.converged,
        stop_reason=result.stop_reason + "+debias",
        residual_norm=residual,
        objective_history=list(result.objective_history),
    )
