"""FISTA — fast iterative shrinkage-thresholding (Beck & Teboulle 2009).

This is the paper's reconstruction algorithm (Section II-B), with the
exact constant-step schedule reproduced from the paper's listing:

    Input: L, a Lipschitz constant of grad f
    Step 0:  y_1 = alpha_0,  t_1 = 1
    Step k:  alpha_k  = prox_{1/L}(g)( y_k - (1/L) grad f(y_k) )
             t_{k+1}  = (1 + sqrt(1 + 4 t_k^2)) / 2
             y_{k+1}  = alpha_k + ((t_k - 1)/t_{k+1}) (alpha_k - alpha_{k-1})

with ``f(alpha) = ||A alpha - y||_2^2`` and ``g = lambda ||.||_1``, whose
prox is plain soft thresholding.  Convergence of the objective is
O(1/k^2) versus O(1/k) for ISTA.

The implementation preserves the working dtype: feeding float32 data
reproduces the iPhone's 32-bit arithmetic; float64 reproduces the Matlab
reference (Figure 6 compares the two).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements, relative_change
from .lipschitz import lipschitz_constant
from .prox import soft_threshold


def lambda_from_fraction(
    a: LinearOperator | np.ndarray, y: np.ndarray, fraction: float
) -> float:
    """Regularization weight as a fraction of ``||A^T y||_inf``.

    ``lambda >= 2 ||A^T y||_inf`` makes the zero vector optimal (for the
    ``||A alpha - y||^2`` fidelity), so meaningful fractions live well
    below 1; the system default is 0.05.
    """
    if fraction <= 0:
        raise SolverError(f"fraction must be positive, got {fraction}")
    operator = as_operator(a)
    correlation = float(np.max(np.abs(operator.rmatvec(np.asarray(y)))))
    if correlation == 0:
        return fraction  # all-zero measurements: any positive lambda works
    return fraction * correlation


def fista(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    lam: float,
    max_iterations: int = 2000,
    tolerance: float = 1e-4,
    lipschitz: float | None = None,
    x0: np.ndarray | None = None,
    track_objective: bool = False,
) -> SolverResult:
    """Solve ``min_alpha ||A alpha - y||_2^2 + lam ||alpha||_1`` by FISTA.

    Parameters
    ----------
    a:
        System operator (dense array or matrix-free operator).
    y:
        Measurement vector.
    lam:
        l1 weight ``lambda`` (absolute; see :func:`lambda_from_fraction`).
    max_iterations:
        Iteration cap — the decoder's real-time budget (2000 for the
        optimized iPhone build, 800 without NEON optimizations).
    tolerance:
        Stop when the relative iterate change falls below this value.
    lipschitz:
        ``L``; estimated by power iteration when omitted.
    x0:
        Warm start (the previous packet's solution in streaming use).
    track_objective:
        Record the objective value per iteration (costs one extra
        matvec per iteration; off in production).
    """
    operator = as_operator(a)
    y = check_measurements(operator, y)
    if lam <= 0:
        raise SolverError(f"lam must be positive, got {lam}")
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
    if tolerance <= 0:
        raise SolverError(f"tolerance must be positive, got {tolerance}")

    dtype = np.float32 if np.asarray(y).dtype == np.float32 else np.float64
    if isinstance(a, np.ndarray) and a.dtype != dtype:
        # a dense operator left at the wrong precision would run every
        # matvec of the iteration at float64 and silently promote the
        # residual (the batched path casts identically)
        operator = as_operator(np.asarray(a, dtype=dtype))
    y = np.asarray(y, dtype=dtype)
    n = operator.shape[1]

    if lipschitz is None:
        lipschitz = lipschitz_constant(operator)
    if lipschitz <= 0:
        raise SolverError(f"lipschitz must be positive, got {lipschitz}")
    step = dtype(1.0 / lipschitz)
    threshold = dtype(lam / lipschitz)

    if x0 is None:
        alpha_prev = np.zeros(n, dtype=dtype)
    else:
        alpha_prev = np.asarray(x0, dtype=dtype).copy()
        if alpha_prev.shape != (n,):
            raise SolverError(
                f"x0 shape {alpha_prev.shape} does not match operator columns {n}"
            )
    momentum = alpha_prev.copy()
    t_k = 1.0

    history: list[float] = []
    iterations = 0
    converged = False
    stop_reason = "max_iterations"
    alpha = alpha_prev

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        residual = np.asarray(operator.matvec(momentum), dtype=dtype) - y
        # matrix-free operators may still compute in float64; asarray is
        # a no-op for the (now dtype-matched) dense path
        gradient = 2.0 * np.asarray(operator.rmatvec(residual), dtype=dtype)
        alpha = soft_threshold(momentum - step * gradient, threshold)

        t_next = (1.0 + math.sqrt(1.0 + 4.0 * t_k * t_k)) / 2.0
        momentum = alpha + dtype((t_k - 1.0) / t_next) * (alpha - alpha_prev)
        t_k = t_next

        if track_objective:
            fit = operator.matvec(alpha) - y
            history.append(
                float(np.dot(fit, fit) + lam * np.sum(np.abs(alpha)))
            )

        if relative_change(alpha, alpha_prev) < tolerance:
            converged = True
            stop_reason = "tolerance"
            alpha_prev = alpha
            break
        alpha_prev = alpha

    final_residual = float(np.linalg.norm(operator.matvec(alpha) - y))
    return SolverResult(
        coefficients=alpha,
        iterations=iterations,
        converged=converged,
        stop_reason=stop_reason,
        residual_norm=final_residual,
        objective_history=history,
    )
