"""GPSR — gradient projection for sparse reconstruction.

Figueiredo, Nowak & Wright (2007), the gradient-projection family cited
in the paper's introduction.  The l1 problem is split into positive and
negative parts ``alpha = u - v`` with ``u, v >= 0``:

    min_{u,v>=0}  0.5 ||y - A(u - v)||^2 + tau 1^T u + tau 1^T v

and solved by projected gradient with a Barzilai–Borwein step and a
monotone backtracking safeguard (the "GPSR-BB monotone" variant).
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements, relative_change


def gpsr(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    lam: float,
    max_iterations: int = 2000,
    tolerance: float = 1e-4,
    step_min: float = 1e-30,
    step_max: float = 1e30,
    x0: np.ndarray | None = None,
    track_objective: bool = False,
) -> SolverResult:
    """Solve ``min 0.5||A alpha - y||^2 + lam ||alpha||_1`` by GPSR-BB.

    Note the 0.5 factor in the fidelity (GPSR's native convention); the
    equivalent FISTA problem uses ``lam_fista = 2 * lam``.
    """
    operator = as_operator(a)
    y = np.asarray(check_measurements(operator, y), dtype=np.float64)
    if lam <= 0:
        raise SolverError(f"lam must be positive, got {lam}")
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")

    n = operator.shape[1]
    if x0 is None:
        x = np.zeros(n)
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        if x.shape != (n,):
            raise SolverError(
                f"x0 shape {x.shape} does not match operator columns {n}"
            )

    u = np.maximum(x, 0.0)
    v = np.maximum(-x, 0.0)

    def objective(u_: np.ndarray, v_: np.ndarray) -> float:
        r = operator.matvec(u_ - v_) - y
        return 0.5 * float(np.dot(r, r)) + lam * float(np.sum(u_) + np.sum(v_))

    residual = operator.matvec(u - v) - y
    gradient_x = operator.rmatvec(residual)
    grad_u = gradient_x + lam
    grad_v = -gradient_x + lam

    step = 1.0
    history: list[float] = []
    iterations = 0
    converged = False
    stop_reason = "max_iterations"
    current_objective = objective(u, v)

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        x_old = u - v

        # Projected gradient candidate with BB step and backtracking.
        backtrack = step
        for _ in range(50):
            u_new = np.maximum(u - backtrack * grad_u, 0.0)
            v_new = np.maximum(v - backtrack * grad_v, 0.0)
            new_objective = objective(u_new, v_new)
            if new_objective <= current_objective + 1e-12:
                break
            backtrack *= 0.5
        else:
            stop_reason = "line_search_failed"
            break

        delta_u = u_new - u
        delta_v = v_new - v
        u, v = u_new, v_new
        current_objective = new_objective

        residual = operator.matvec(u - v) - y
        gradient_x = operator.rmatvec(residual)
        grad_u = gradient_x + lam
        grad_v = -gradient_x + lam

        # Barzilai–Borwein step for the next iteration:
        # step = (delta^T delta) / (delta^T B delta),  B delta computed
        # through one operator application on (delta_u - delta_v).
        delta_sq = float(np.dot(delta_u, delta_u) + np.dot(delta_v, delta_v))
        a_delta = operator.matvec(delta_u - delta_v)
        curvature = float(np.dot(a_delta, a_delta))
        if curvature > 0:
            step = min(max(delta_sq / curvature, step_min), step_max)
        else:
            step = step_max

        if track_objective:
            history.append(current_objective)

        if relative_change(u - v, x_old) < tolerance:
            converged = True
            stop_reason = "tolerance"
            break

    x = u - v
    final_residual = float(np.linalg.norm(operator.matvec(x) - y))
    return SolverResult(
        coefficients=x,
        iterations=iterations,
        converged=converged,
        stop_reason=stop_reason,
        residual_norm=final_residual,
        objective_history=history,
    )
