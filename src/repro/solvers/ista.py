"""ISTA — plain iterative shrinkage-thresholding (Daubechies et al. 2004).

The paper's baseline: identical per-iteration cost to FISTA (one forward
and one adjoint operator application plus a soft threshold) but O(1/k)
objective convergence, which the solver-comparison benchmark shows as
"notoriously slow" exactly like Section II-B says.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements, relative_change
from .lipschitz import lipschitz_constant
from .prox import soft_threshold


def ista(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    lam: float,
    max_iterations: int = 2000,
    tolerance: float = 1e-4,
    lipschitz: float | None = None,
    x0: np.ndarray | None = None,
    track_objective: bool = False,
) -> SolverResult:
    """Solve ``min ||A alpha - y||_2^2 + lam ||alpha||_1`` by ISTA."""
    operator = as_operator(a)
    y = check_measurements(operator, y)
    if lam <= 0:
        raise SolverError(f"lam must be positive, got {lam}")
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")
    if tolerance <= 0:
        raise SolverError(f"tolerance must be positive, got {tolerance}")

    dtype = np.float32 if np.asarray(y).dtype == np.float32 else np.float64
    y = np.asarray(y, dtype=dtype)
    n = operator.shape[1]

    if lipschitz is None:
        lipschitz = lipschitz_constant(operator)
    if lipschitz <= 0:
        raise SolverError(f"lipschitz must be positive, got {lipschitz}")
    step = dtype(1.0 / lipschitz)
    threshold = dtype(lam / lipschitz)

    if x0 is None:
        alpha = np.zeros(n, dtype=dtype)
    else:
        alpha = np.asarray(x0, dtype=dtype).copy()
        if alpha.shape != (n,):
            raise SolverError(
                f"x0 shape {alpha.shape} does not match operator columns {n}"
            )

    history: list[float] = []
    iterations = 0
    converged = False
    stop_reason = "max_iterations"

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        residual = operator.matvec(alpha) - y
        gradient = 2.0 * operator.rmatvec(residual)
        new_alpha = soft_threshold(alpha - step * gradient.astype(dtype), threshold)

        if track_objective:
            fit = operator.matvec(new_alpha) - y
            history.append(
                float(np.dot(fit, fit) + lam * np.sum(np.abs(new_alpha)))
            )

        if relative_change(new_alpha, alpha) < tolerance:
            alpha = new_alpha
            converged = True
            stop_reason = "tolerance"
            break
        alpha = new_alpha

    final_residual = float(np.linalg.norm(operator.matvec(alpha) - y))
    return SolverResult(
        coefficients=alpha,
        iterations=iterations,
        converged=converged,
        stop_reason=stop_reason,
        residual_norm=final_residual,
        objective_history=history,
    )
