"""Lipschitz-constant estimation for the data-fidelity gradient.

FISTA's constant step size is ``1/L`` with ``L`` a Lipschitz constant of
``grad f``.  For ``f(alpha) = ||A alpha - y||_2^2`` (the paper's choice,
without the 1/2 factor), ``L = 2 * sigma_max(A)^2``.  The spectral norm
is estimated matrix-free by power iteration on ``A^T A``, the same
routine an embedded decoder runs once at start-up.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..utils import rng_from
from ..wavelet.operator import LinearOperator
from .base import as_operator


def power_iteration_norm(
    a: LinearOperator | np.ndarray,
    iterations: int = 100,
    tolerance: float = 1e-7,
    seed: int = 7,
) -> float:
    """Estimate ``sigma_max(A)`` by power iteration on ``A^T A``."""
    operator = as_operator(a)
    if iterations < 1:
        raise SolverError(f"iterations must be >= 1, got {iterations}")
    n = operator.shape[1]
    v = rng_from(seed, "power-iteration", n).standard_normal(n)
    norm_v = np.linalg.norm(v)
    if norm_v == 0:
        raise SolverError("degenerate start vector")
    v /= norm_v
    previous = 0.0
    estimate = 0.0
    for _ in range(iterations):
        w = operator.rmatvec(operator.matvec(v))
        norm_w = float(np.linalg.norm(w))
        if norm_w == 0:
            return 0.0
        v = w / norm_w
        estimate = np.sqrt(norm_w)
        if abs(estimate - previous) <= tolerance * max(estimate, 1.0):
            break
        previous = estimate
    return float(estimate)


def lipschitz_constant(
    a: LinearOperator | np.ndarray,
    iterations: int = 100,
    tolerance: float = 1e-7,
    safety: float = 1.02,
) -> float:
    """Lipschitz constant of ``grad ||A x - y||^2``, with a safety margin.

    Power iteration under-estimates the spectral norm from below, so a
    small multiplicative ``safety`` keeps the FISTA step valid.
    """
    if safety < 1.0:
        raise SolverError(f"safety must be >= 1, got {safety}")
    sigma = power_iteration_norm(a, iterations=iterations, tolerance=tolerance)
    return 2.0 * safety * sigma**2
