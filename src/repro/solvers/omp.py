"""Orthogonal matching pursuit (Tropp 2004) — the greedy baseline.

Selects the column most correlated with the residual, re-solves least
squares on the active support, and repeats until the residual is small
or the sparsity budget is exhausted.  Per-iteration cost grows with the
support (a dense least-squares solve), which is why the paper dismisses
greedy approaches for the embedded decoder.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements


def omp(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    sparsity: int | None = None,
    residual_tolerance: float = 1e-6,
    max_iterations: int | None = None,
) -> SolverResult:
    """Greedy solve of ``y ~ A alpha`` with at most ``sparsity`` nonzeros.

    Parameters
    ----------
    a:
        System operator; materialized densely (OMP needs column access).
    y:
        Measurement vector.
    sparsity:
        Maximum support size; defaults to ``m // 4``.
    residual_tolerance:
        Stop when ``||r|| <= residual_tolerance * ||y||``.
    max_iterations:
        Alias cap on greedy steps (defaults to ``sparsity``).
    """
    operator = as_operator(a)
    y = np.asarray(check_measurements(operator, y), dtype=np.float64)
    m, n = operator.shape
    if sparsity is None:
        sparsity = max(1, m // 4)
    if not 0 < sparsity <= m:
        raise SolverError(f"sparsity must be in (0, {m}], got {sparsity}")
    if max_iterations is None:
        max_iterations = sparsity

    dense = operator.to_dense()
    norms = np.linalg.norm(dense, axis=0)
    norms = np.where(norms == 0, 1.0, norms)

    support: list[int] = []
    residual = y.copy()
    y_norm = float(np.linalg.norm(y))
    coefficients = np.zeros(n)
    solution: np.ndarray = np.zeros(0)
    iterations = 0
    stop_reason = "max_iterations"
    converged = False

    if y_norm == 0:
        return SolverResult(
            coefficients=coefficients,
            iterations=0,
            converged=True,
            stop_reason="residual",
            residual_norm=0.0,
        )

    for _ in range(min(max_iterations, sparsity)):
        iterations += 1
        correlation = np.abs(dense.T @ residual) / norms
        correlation[support] = -np.inf
        best = int(np.argmax(correlation))
        support.append(best)
        submatrix = dense[:, support]
        solution, *_ = np.linalg.lstsq(submatrix, y, rcond=None)
        residual = y - submatrix @ solution
        if float(np.linalg.norm(residual)) <= residual_tolerance * y_norm:
            converged = True
            stop_reason = "residual"
            break

    if support:
        coefficients[support] = solution
    return SolverResult(
        coefficients=coefficients,
        iterations=iterations,
        converged=converged,
        stop_reason=stop_reason,
        residual_norm=float(np.linalg.norm(residual)),
    )
