"""Soft-thresholding proximal operator, in three equivalent forms.

``prox_{t ||.||_1}(u) = sign(u) * max(|u| - t, 0)``

The three implementations mirror the code evolution in the paper's
Section IV-B:

- :func:`soft_threshold` — the production vectorized form;
- :func:`soft_threshold_branchy` — the original C loop with an ``if``
  statement per element (the "before" of Figure 4), kept as an exact
  reference for the SIMD ablation;
- :func:`soft_threshold_if_converted` — the if-converted form that uses
  comparison results as multiplicative masks (the "after" of Figure 4),
  which is what NEON executes.

All three produce bit-identical results on finite inputs.
"""

from __future__ import annotations

import numpy as np


def soft_threshold(u: np.ndarray, threshold: float) -> np.ndarray:
    """Vectorized ``sign(u) * max(|u| - threshold, 0)``."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    u = np.asarray(u)
    magnitude = np.abs(u) - np.asarray(threshold, dtype=u.dtype)
    np.maximum(magnitude, 0, out=magnitude)
    return np.sign(u) * magnitude


def soft_threshold_branchy(u: np.ndarray, threshold: float) -> np.ndarray:
    """Element-by-element loop with branches (pre-optimization reference).

    Mirrors the original decoder code shown in the paper:

    .. code-block:: c

        y[i] = fabs(u[i]) - T;
        y[i] = y[i] * (y[i] > 0.0f);
        if (u[i] > 0)      y[i] =  y[i];
        else if (u[i] < 0) y[i] = -y[i];
        else               y[i] = 0;
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    u = np.asarray(u)
    out = np.empty_like(u)
    for i in range(u.shape[0]):
        value = abs(u[i]) - threshold
        value = value * (value > 0.0)
        if u[i] > 0:
            out[i] = value
        elif u[i] < 0:
            out[i] = -value
        else:
            out[i] = 0
    return out


def soft_threshold_if_converted(u: np.ndarray, threshold: float) -> np.ndarray:
    """Branch-free form using comparison masks (Figure 4's NEON trick).

    The sign is computed as ``(u > 0) - (u < 0)`` and applied by
    multiplication, exactly how the vectorized NEON code replaces the
    ``if`` cascade with two comparison vectors.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    u = np.asarray(u)
    magnitude = np.abs(u) - np.asarray(threshold, dtype=u.dtype)
    magnitude = magnitude * (magnitude > 0)
    sign = (u > 0).astype(u.dtype) - (u < 0).astype(u.dtype)
    return sign * magnitude
