"""Scatter/gather application of the sparse binary sensing matrix.

The paper's ``Phi`` has exactly ``d`` nonzeros per column, all equal to
``1/sqrt(d)`` — applying it (or its transpose) is an index gather plus a
segmented sum, not a GEMM.  This module turns the CSR structure already
living in :class:`~repro.sensing.sparse_binary.SparseBinaryMatrix` into
two allocation-free batched kernels:

- ``apply``: ``Phi @ S`` for an ``(n, B)`` signal block via one
  ``np.take`` gather and one ``np.add.reduceat`` segmented reduction
  over the CSR row segments;
- ``apply_transpose``: ``Phi^T @ R`` for an ``(m, B)`` residual block
  via the fixed-degree layout — every transpose row has exactly ``d``
  entries (``rows_per_column``), so a ``d``-step gather/accumulate loop
  with ``out=`` buffers does it without any indptr bookkeeping.

Both kernels sum the *unscaled* 0/1 pattern first and multiply by the
common ``1/sqrt(d)`` once at the end.  That ordering is a numerical
contract the equivalence harness relies on: for integer-valued inputs
the pattern sums are exact in any association order, so the gather path
is bit-identical to a dense pattern GEMM followed by the same single
scale multiply — regardless of how BLAS associates its partial sums.
For general float inputs the two paths agree to a few ulps (each value
is touched by exactly ``d`` additions).

Where this pays on the decode hot path: the system operator
``A = Phi Psi`` is dense (``Psi`` is a dense orthonormal synthesis
basis), so the FISTA *iteration* keeps its fused dense GEMM pair — but
every place that applies ``Phi`` alone (the hybrid-precision residual
gate checking ``||y - Phi s||`` on synthesized signals, measurement
re-checks, diagnostics) costs ``n*d`` adds instead of an ``m*n`` GEMM,
about 20x less work at the paper point.

:class:`StructuredOperator` packages the factored view for the solver:
the sparse ``Phi`` kernels, the dense ``Psi`` in both precisions, and
the fused dense ``A``/``A^T`` pair in both precisions, sharing one
float64 Lipschitz constant.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .lipschitz import lipschitz_constant


class SparsePhiApply:
    """Batched ``Phi``/``Phi^T`` products from the CSR index structure.

    All kernels accept preallocated ``out``/``gather`` buffers (see
    :meth:`~repro.solvers.batched.BatchWorkspace.arena`) so steady-state
    callers allocate nothing per batch; buffers are allocated on the
    fly when omitted (convenience paths, tests).
    """

    def __init__(self, matrix) -> None:
        csr = matrix.sparse()
        self.m, self.n = csr.shape
        self.d = int(matrix.d)
        self.nnz = int(csr.nnz)
        #: the common nonzero value ``1/sqrt(d)``, applied as one final
        #: multiply after the exact pattern sum (the bit-identity
        #: contract of the module docstring)
        self.scale = float(matrix.scale)
        # forward CSR: row segments of column indices into the signal
        indptr = np.asarray(csr.indptr, dtype=np.intp)
        self.gather_index = np.ascontiguousarray(csr.indices, dtype=np.intp)
        # reduceat over possibly-empty segments: a mid-array empty row
        # makes reduceat *repeat* a neighbour's element (zeroed after
        # the reduction), but a *trailing* empty run starts at nnz —
        # out of bounds, and clamping it would truncate the preceding
        # row's segment end.  Instead reduceat covers only the rows
        # before the trailing run (the last one sums to the end of the
        # gather buffer) and the tail is zeroed with the other empties.
        self.reduce_rows = int(
            np.searchsorted(indptr[:-1], self.nnz, side="left")
        )
        self.segment_starts = np.ascontiguousarray(
            indptr[: self.reduce_rows], dtype=np.intp
        )
        self.empty_rows = np.flatnonzero(indptr[:-1] == indptr[1:])
        # transpose layout: row j of Phi^T has exactly the d entries
        # rows_per_column[j]; one contiguous (n, d) gather table
        self.transpose_index = np.ascontiguousarray(
            matrix.rows_per_column, dtype=np.intp
        )

    # ------------------------------------------------------------------
    def _check(self, block: np.ndarray, rows: int, label: str) -> np.ndarray:
        block = np.asarray(block)
        if block.ndim != 2 or block.shape[0] != rows:
            raise SolverError(
                f"{label} must have shape ({rows}, B), got {block.shape}"
            )
        return block

    def apply(
        self,
        signals: np.ndarray,
        out: np.ndarray | None = None,
        gather: np.ndarray | None = None,
    ) -> np.ndarray:
        """``Phi @ signals`` for an ``(n, B)`` block -> ``(m, B)``."""
        signals = self._check(signals, self.n, "signals")
        width = signals.shape[1]
        if gather is None:
            gather = np.empty((self.nnz, width), dtype=signals.dtype)
        if out is None:
            out = np.empty((self.m, width), dtype=signals.dtype)
        np.take(signals, self.gather_index, axis=0, out=gather)
        if self.reduce_rows:
            np.add.reduceat(
                gather,
                self.segment_starts,
                axis=0,
                out=out[: self.reduce_rows],
            )
        if self.reduce_rows < self.m:
            out[self.reduce_rows :] = 0
        if self.empty_rows.size:
            out[self.empty_rows] = 0
        out *= signals.dtype.type(self.scale)
        return out

    def apply_transpose(
        self,
        resid: np.ndarray,
        out: np.ndarray | None = None,
        gather: np.ndarray | None = None,
    ) -> np.ndarray:
        """``Phi^T @ resid`` for an ``(m, B)`` block -> ``(n, B)``."""
        resid = self._check(resid, self.m, "resid")
        width = resid.shape[1]
        if out is None:
            out = np.empty((self.n, width), dtype=resid.dtype)
        if gather is None:
            gather = np.empty((self.n, width), dtype=resid.dtype)
        else:
            gather = gather.reshape(-1)[: self.n * width].reshape(
                self.n, width
            )
        # fixed-degree accumulation: d gathers, each adding one of the
        # d pattern entries of every transpose row at once
        # repro-lint: hot
        for k in range(self.d):
            np.take(resid, self.transpose_index[:, k], axis=0, out=gather)
            if k == 0:
                out[...] = gather
            else:
                out += gather
        out *= resid.dtype.type(self.scale)
        return out

    def residual(
        self,
        signals: np.ndarray,
        ys: np.ndarray,
        out: np.ndarray | None = None,
        gather: np.ndarray | None = None,
    ) -> np.ndarray:
        """``Phi @ signals - ys`` -> ``(m, B)`` (the polish gate's input)."""
        out = self.apply(signals, out=out, gather=gather)
        out -= ys
        return out


class StructuredOperator:
    """The factored system operator ``A = Phi Psi``, both precisions.

    Bundles everything the hybrid-precision solve path needs:

    - ``phi``: the :class:`SparsePhiApply` gather kernels;
    - ``psi64``/``psi32``: the dense synthesis basis (``Psi``-side ops
      stay dense GEMM — ``Psi`` is a dense orthonormal matrix, so there
      is no structure to gather);
    - ``dense64``/``dense32`` (+ contiguous transposes): the fused
      ``A`` the FISTA iteration runs its GEMM pair against;
    - ``lipschitz``: one float64 constant shared by both precisions
      (the step size is a float64 scalar either way).
    """

    def __init__(
        self,
        matrix,
        synthesis: np.ndarray,
        dense: np.ndarray | None = None,
        lipschitz: float | None = None,
    ) -> None:
        self.phi = SparsePhiApply(matrix)
        self.psi64 = np.ascontiguousarray(synthesis, dtype=np.float64)
        if self.psi64.shape[0] != self.phi.n:
            raise SolverError(
                f"synthesis rows {self.psi64.shape[0]} do not match "
                f"Phi columns {self.phi.n}"
            )
        self.psi32 = self.psi64.astype(np.float32)
        if dense is None:
            dense = matrix.sparse() @ self.psi64
        self.dense64 = np.ascontiguousarray(dense, dtype=np.float64)
        self.dense64_t = np.ascontiguousarray(self.dense64.T)
        self.dense32 = self.dense64.astype(np.float32)
        self.dense32_t = np.ascontiguousarray(self.dense32.T)
        self.lipschitz = (
            lipschitz
            if lipschitz is not None
            else lipschitz_constant(self.dense64)
        )
        if self.lipschitz <= 0:
            raise SolverError(
                f"lipschitz must be positive, got {self.lipschitz}"
            )

    @property
    def m(self) -> int:
        """Measurement dimension (rows of ``Phi``)."""
        return self.phi.m

    @property
    def n_coefficients(self) -> int:
        """Wavelet-domain dimension (columns of ``A``)."""
        return self.dense64.shape[1]

    @property
    def n_samples(self) -> int:
        """Time-domain dimension (rows of ``Psi``)."""
        return self.psi64.shape[0]

    def operator(self, dtype: np.dtype | type) -> np.ndarray:
        """The fused dense ``A`` in the requested precision."""
        return self.dense32 if np.dtype(dtype) == np.float32 else self.dense64

    def operator_t(self, dtype: np.dtype | type) -> np.ndarray:
        """Contiguous ``A^T`` in the requested precision."""
        return (
            self.dense32_t
            if np.dtype(dtype) == np.float32
            else self.dense64_t
        )

    def synthesis(self, dtype: np.dtype | type) -> np.ndarray:
        """Dense ``Psi`` in the requested precision."""
        return self.psi32 if np.dtype(dtype) == np.float32 else self.psi64
