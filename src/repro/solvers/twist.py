"""TwIST — two-step iterative shrinkage/thresholding.

Bioucas-Dias & Figueiredo (2007), cited by the paper as one of the ISTA
accelerations.  Each step combines the previous two iterates:

    x_{t+1} = (1 - alpha) x_{t-1} + (alpha - beta) x_t
              + beta * S_lam( x_t + A^T (y - A x_t) )

with ``A`` rescaled to unit spectral norm.  The (alpha, beta) pair comes
from the standard rule driven by ``lam1``, a lower bound on the squared
singular-value spread; the default matches the reference implementation
for severely ill-posed problems.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SolverError
from ..wavelet.operator import LinearOperator
from .base import SolverResult, as_operator, check_measurements, relative_change
from .lipschitz import power_iteration_norm
from .prox import soft_threshold


def twist_parameters(lam1: float) -> tuple[float, float]:
    """The canonical TwIST (alpha, beta) for an eigenvalue lower bound."""
    if not 0 < lam1 <= 1:
        raise SolverError(f"lam1 must be in (0, 1], got {lam1}")
    rho = (1.0 - lam1) / (1.0 + lam1)
    alpha = 2.0 / (1.0 + math.sqrt(1.0 - rho * rho))
    beta = alpha * 2.0 / (1.0 + lam1)
    return alpha, beta


def twist(
    a: LinearOperator | np.ndarray,
    y: np.ndarray,
    lam: float,
    max_iterations: int = 2000,
    tolerance: float = 1e-4,
    lam1: float = 1e-4,
    x0: np.ndarray | None = None,
    track_objective: bool = False,
) -> SolverResult:
    """Solve ``min ||A alpha - y||_2^2 + lam ||alpha||_1`` by TwIST."""
    operator = as_operator(a)
    y = check_measurements(operator, y)
    if lam <= 0:
        raise SolverError(f"lam must be positive, got {lam}")
    if max_iterations < 1:
        raise SolverError(f"max_iterations must be >= 1, got {max_iterations}")

    dtype = np.float32 if np.asarray(y).dtype == np.float32 else np.float64
    n = operator.shape[1]

    # Rescale the problem so ||A|| = 1 (TwIST's convergence assumption).
    sigma = power_iteration_norm(operator)
    if sigma <= 0:
        raise SolverError("operator has zero spectral norm")
    scale = 1.0 / sigma
    y_scaled = np.asarray(y, dtype=np.float64) * scale
    lam_scaled = lam * scale * scale

    alpha_step, beta_step = twist_parameters(lam1)

    if x0 is None:
        x_prev = np.zeros(n)
    else:
        x_prev = np.asarray(x0, dtype=np.float64).copy()
        if x_prev.shape != (n,):
            raise SolverError(
                f"x0 shape {x_prev.shape} does not match operator columns {n}"
            )
    x_curr = x_prev.copy()

    def matvec(v: np.ndarray) -> np.ndarray:
        return operator.matvec(v) * scale

    def rmatvec(v: np.ndarray) -> np.ndarray:
        return operator.rmatvec(v) * scale

    def objective(v: np.ndarray) -> float:
        fit = operator.matvec(v) - np.asarray(y, dtype=np.float64)
        return float(np.dot(fit, fit) + lam * np.sum(np.abs(v)))

    history: list[float] = []
    iterations = 0
    converged = False
    stop_reason = "max_iterations"
    current_objective = objective(x_curr)

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        residual = y_scaled - matvec(x_curr)
        shrunk = soft_threshold(x_curr + rmatvec(residual), lam_scaled / 2.0)
        if iteration == 1:
            x_next = shrunk  # first step is plain IST
        else:
            x_next = (
                (1.0 - alpha_step) * x_prev
                + (alpha_step - beta_step) * x_curr
                + beta_step * shrunk
            )
            # monotone safeguard (the "MTwIST" rule): if the two-step
            # extrapolation increases the objective, fall back to IST
            if objective(x_next) > current_objective:
                x_next = shrunk

        current_objective = objective(x_next)
        if track_objective:
            history.append(current_objective)

        if relative_change(x_next, x_curr) < tolerance:
            x_prev, x_curr = x_curr, x_next
            converged = True
            stop_reason = "tolerance"
            break
        x_prev, x_curr = x_curr, x_next

    final_residual = float(np.linalg.norm(operator.matvec(x_curr) - np.asarray(y)))
    return SolverResult(
        coefficients=x_curr.astype(dtype),
        iterations=iterations,
        converged=converged,
        stop_reason=stop_reason,
        residual_norm=final_residual,
        objective_history=history,
    )
