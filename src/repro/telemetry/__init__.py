"""The unified telemetry plane of the decode stack.

One process-wide metrics core (:mod:`~repro.telemetry.core`) replaces
the five accounting islands that grew up around the pipeline — gateway
stats, per-stream ingest results, lossy-link/loss accounting, fleet
scheduler counters and the realtime processor ledger — with labeled
counters, gauges and percentile-capable histograms whose snapshots
merge associatively across process-pool workers.

Two persistent sinks (:mod:`~repro.telemetry.sinks`) give a
long-running ``serve`` memory beyond stdout: a bounded JSONL ring file
that replays to the final snapshot after a crash, and the Prometheus
text exposition served over HTTP by
:class:`~repro.telemetry.exposition.MetricsServer`.  The shared table
views (:mod:`~repro.telemetry.views`) render any snapshot — and any
CLI result table — with ``n/a`` handling in exactly one place.

The adaptive batch controller
(:class:`~repro.ingest.adaptive.AdaptiveBatchController`) closes the
loop: it reads the plane's solve-latency percentiles and queue depths
and steers the gateway's effective batch width and flush deadline
against the paper's 2-second real-time budget.
"""

from importlib import import_module

#: public name -> defining submodule, resolved lazily (PEP 562).
#: repro-lint's RL004 imports :mod:`repro.telemetry.catalog` (pure
#: stdlib) from CI's dependency-free lint job; an eager package root
#: would drag numpy in through :mod:`.views` -> repro.experiments.
_LAZY_EXPORTS = {
    "CATALOG": "catalog",
    "COUNTER": "catalog",
    "GAUGE": "catalog",
    "HISTOGRAM": "catalog",
    "LABEL_NAMES": "catalog",
    "MetricSpec": "catalog",
    "spec_for": "catalog",
    "DEFAULT_LATENCY_BUCKETS": "core",
    "DEFAULT_SIZE_BUCKETS": "core",
    "NULL_METER": "core",
    "HistogramSnapshot": "core",
    "Meter": "core",
    "MetricsRegistry": "core",
    "MetricsSnapshot": "core",
    "label_key": "core",
    "MetricsServer": "exposition",
    "scrape_local": "exposition",
    "RING_SCHEMA": "sinks",
    "JsonlRingSink": "sinks",
    "exposition_matches_snapshot": "sinks",
    "iter_ring_records": "sinks",
    "parse_prometheus": "sinks",
    "render_prometheus": "sinks",
    "replay_ring": "sinks",
    "na": "views",
    "render_result_table": "views",
    "render_snapshot_table": "views",
    "snapshot_rows": "views",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
