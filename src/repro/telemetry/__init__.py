"""The unified telemetry plane of the decode stack.

One process-wide metrics core (:mod:`~repro.telemetry.core`) replaces
the five accounting islands that grew up around the pipeline — gateway
stats, per-stream ingest results, lossy-link/loss accounting, fleet
scheduler counters and the realtime processor ledger — with labeled
counters, gauges and percentile-capable histograms whose snapshots
merge associatively across process-pool workers.

Two persistent sinks (:mod:`~repro.telemetry.sinks`) give a
long-running ``serve`` memory beyond stdout: a bounded JSONL ring file
that replays to the final snapshot after a crash, and the Prometheus
text exposition served over HTTP by
:class:`~repro.telemetry.exposition.MetricsServer`.  The shared table
views (:mod:`~repro.telemetry.views`) render any snapshot — and any
CLI result table — with ``n/a`` handling in exactly one place.

The adaptive batch controller
(:class:`~repro.ingest.adaptive.AdaptiveBatchController`) closes the
loop: it reads the plane's solve-latency percentiles and queue depths
and steers the gateway's effective batch width and flush deadline
against the paper's 2-second real-time budget.
"""

from .catalog import (
    CATALOG,
    COUNTER,
    GAUGE,
    HISTOGRAM,
    LABEL_NAMES,
    MetricSpec,
    spec_for,
)
from .core import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_METER,
    HistogramSnapshot,
    Meter,
    MetricsRegistry,
    MetricsSnapshot,
    label_key,
)
from .exposition import MetricsServer, scrape_local
from .sinks import (
    RING_SCHEMA,
    JsonlRingSink,
    exposition_matches_snapshot,
    iter_ring_records,
    parse_prometheus,
    render_prometheus,
    replay_ring,
)
from .views import (
    na,
    render_result_table,
    render_snapshot_table,
    snapshot_rows,
)

__all__ = [
    "CATALOG",
    "COUNTER",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "GAUGE",
    "HISTOGRAM",
    "HistogramSnapshot",
    "JsonlRingSink",
    "LABEL_NAMES",
    "Meter",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsServer",
    "MetricsSnapshot",
    "NULL_METER",
    "RING_SCHEMA",
    "exposition_matches_snapshot",
    "iter_ring_records",
    "label_key",
    "na",
    "parse_prometheus",
    "render_prometheus",
    "render_result_table",
    "render_snapshot_table",
    "replay_ring",
    "scrape_local",
    "snapshot_rows",
    "spec_for",
]
