"""The metric catalog: single source of truth for every metric name.

Every counter, gauge and histogram the decode stack publishes is
declared here — name, instrument kind, allowed label names, and a
human description.  Two consumers keep the catalog honest:

- **repro-lint RL004** statically checks every ``.inc(...)`` /
  ``.set_gauge(...)`` / ``.observe(...)`` call site against this
  module: an undeclared metric name, a kind mismatch (``inc`` on a
  gauge), or a label outside the declared set fails the lint — and a
  catalog entry no call site references is flagged as dead, so the
  catalog cannot rot in either direction;
- the Prometheus exposition
  (:func:`~repro.telemetry.sinks.render_prometheus`) emits each
  declared metric's description as its ``# HELP`` line.

Adding a metric is therefore a two-line change: declare it here, then
use it — the lint tells you if you forgot either half.
"""

from __future__ import annotations

from dataclasses import dataclass, field

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str  #: one of COUNTER / GAUGE / HISTOGRAM
    description: str
    #: every label name any series of this metric may carry (call
    #: sites and bound meters may use a subset)
    labels: frozenset[str] = field(default_factory=frozenset)


def _spec(
    name: str, kind: str, description: str, *labels: str
) -> MetricSpec:
    return MetricSpec(
        name=name,
        kind=kind,
        description=description,
        labels=frozenset(labels),
    )


#: every metric the stack publishes, keyed by name
CATALOG: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # -- ingest gateway (repro.ingest.gateway) ---------------------
        _spec(
            "ingest_sessions_opened", COUNTER,
            "node links accepted after a valid handshake", "stream",
        ),
        _spec(
            "ingest_sessions_completed", COUNTER,
            "sessions that ended without an error", "stream",
        ),
        _spec(
            "ingest_sessions_errored", COUNTER,
            "sessions ended by a protocol/decode error "
            "(unlabeled when the handshake never completed)", "stream",
        ),
        _spec(
            "ingest_windows_decoded", COUNTER,
            "windows reconstructed and acked to their node", "stream",
        ),
        _spec(
            "ingest_flushes", COUNTER,
            "batch flushes by trigger (full/deadline/drain/pressure)",
            "reason",
        ),
        _spec(
            "ingest_cross_stream_batches", COUNTER,
            "flushed batches pooling windows of >= 2 streams",
        ),
        _spec(
            "ingest_queue_depth", GAUGE,
            "pending measurement columns of one operator group",
            "group",
        ),
        _spec(
            "ingest_flush_width", HISTOGRAM,
            "distribution of flushed batch widths",
        ),
        _spec(
            "ingest_solve_seconds", HISTOGRAM,
            "wall time of one pooled batch solve",
        ),
        _spec(
            "ingest_window_latency_seconds", HISTOGRAM,
            "frame arrival to reconstruction, per window",
        ),
        # -- lossy-channel accounting (repro.ingest.channel) -----------
        _spec(
            "ingest_windows_lost", COUNTER,
            "windows that never arrived (sequence gaps incl. the "
            "BYE-declared tail gap)", "stream",
        ),
        _spec(
            "ingest_windows_resynced", COUNTER,
            "difference windows discarded while awaiting a keyframe",
            "stream",
        ),
        _spec(
            "ingest_frames_corrupt", COUNTER,
            "frames failing the on-air CRC", "stream",
        ),
        _spec(
            "ingest_frames_duplicate", COUNTER,
            "duplicate/stale frames dropped idempotently", "stream",
        ),
        # -- two-tier recovery (FEC parity epochs + NACK retransmit) ---
        _spec(
            "ingest_windows_recovered_parity", COUNTER,
            "windows reconstructed locally from an epoch PARITY frame",
            "stream",
        ),
        _spec(
            "ingest_windows_recovered_retransmit", COUNTER,
            "windows filled by a NACKed (or late-reordered) copy while "
            "recovery held the gap open", "stream",
        ),
        _spec(
            "ingest_frames_late_retransmit", COUNTER,
            "retransmitted frames arriving after recovery gave up on "
            "their window (dropped, but not silently)", "stream",
        ),
        _spec(
            "ingest_nacks_sent", COUNTER,
            "sequences NACKed for retransmission (tier-2 budget spend)",
            "stream",
        ),
        _spec(
            "ingest_parity_frames", COUNTER,
            "PARITY frames received by the recovery layer", "stream",
        ),
        _spec(
            "link_frames", COUNTER,
            "simulated radio-link frame fates (seen/dropped/corrupted/"
            "duplicated/reordered/delivered, plus parity_seen/"
            "parity_dropped/parity_delivered)", "fate", "stream",
        ),
        # -- adaptive batch controller (repro.ingest.adaptive) ---------
        _spec(
            "ingest_controller_widen", COUNTER,
            "AIMD widen steps taken by the batch controller",
        ),
        _spec(
            "ingest_controller_shed", COUNTER,
            "AIMD multiplicative-decrease steps (budget threatened)",
        ),
        _spec(
            "ingest_effective_batch", GAUGE,
            "controller's current effective batch width",
        ),
        _spec(
            "ingest_effective_flush_ms", GAUGE,
            "controller's current flush-on-idle deadline (ms)",
        ),
        # -- fleet decode engine (repro.fleet.engine) ------------------
        _spec(
            "fleet_runs", COUNTER,
            "fleet decode runs by shard mode "
            "(in-process/groups/columns)", "mode",
        ),
        _spec(
            "fleet_windows_decoded", COUNTER,
            "windows decoded across all streams of a run",
        ),
        _spec(
            "fleet_groups", GAUGE,
            "operator groups in the latest run's schedule",
        ),
        _spec(
            "fleet_effective_workers", GAUGE,
            "worker processes the latest run actually used",
        ),
        _spec(
            "fleet_group_windows", COUNTER,
            "windows pooled per operator group", "group",
        ),
        _spec(
            "fleet_worker_tasks", COUNTER,
            "shard tasks completed per worker process", "worker",
        ),
        _spec(
            "fleet_worker_windows", COUNTER,
            "windows decoded per worker process", "worker",
        ),
        _spec(
            "fleet_worker_task_seconds", HISTOGRAM,
            "wall time of one worker shard task", "worker",
        ),
        _spec(
            "fleet_solve_seconds", HISTOGRAM,
            "wall time of one batched solve inside a shard",
        ),
        _spec(
            "fleet_solve_width", HISTOGRAM,
            "columns per batched solve inside a shard",
        ),
        _spec(
            "fleet_hybrid_windows", COUNTER,
            "windows solved on the hybrid float32 fast path",
        ),
        _spec(
            "fleet_polish_windows", COUNTER,
            "hybrid windows re-solved in float64 after leaving the "
            "residual corridor",
        ),
        # -- federation front door (repro.ingest.federation) -----------
        _spec(
            "federation_gateways", GAUGE,
            "gateway worker processes currently alive behind the "
            "front door",
        ),
        _spec(
            "federation_reroutes", COUNTER,
            "live node links cut by a gateway death and remapped to "
            "the ring's new segment owner", "gateway",
        ),
        _spec(
            "federation_streams", COUNTER,
            "node connections routed by operator key", "gateway",
        ),
        # -- realtime pipeline simulator (repro.realtime) --------------
        _spec(
            "realtime_jobs", COUNTER,
            "jobs submitted to a simulated processor", "processor",
        ),
        _spec(
            "realtime_busy_seconds", COUNTER,
            "busy time accumulated by a simulated processor",
            "processor",
        ),
        _spec(
            "realtime_utilization_percent", GAUGE,
            "busy percentage of a simulated processor over the run",
            "processor",
        ),
        _spec(
            "realtime_deadline_misses", GAUGE,
            "windows that missed the display deadline in the run",
        ),
        _spec(
            "realtime_end_to_end_latency_seconds", HISTOGRAM,
            "sample-acquired to displayed latency in the simulator",
        ),
    )
}

#: the label vocabulary: every label name any metric may use — bound
#: meters (``registry.meter(...)`` / ``meter.child(...)``) must draw
#: from this set
LABEL_NAMES: frozenset[str] = frozenset(
    name for spec in CATALOG.values() for name in spec.labels
)

#: method-name -> declared kind, for the RL004 kind check
KIND_BY_METHOD = {
    "inc": COUNTER,
    "set_gauge": GAUGE,
    "observe": HISTOGRAM,
}


def spec_for(name: str) -> MetricSpec | None:
    """The declaration of one metric name (None when undeclared)."""
    return CATALOG.get(name)


__all__ = [
    "CATALOG",
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "KIND_BY_METHOD",
    "LABEL_NAMES",
    "MetricSpec",
    "spec_for",
]
