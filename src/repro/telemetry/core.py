"""Process-wide metrics core: counters, gauges, histograms, snapshots.

Before this module, every layer of the decode stack kept its own
ad-hoc accounting (``GatewayStats``, ``LinkStats``, fleet counters,
the realtime ``Processor`` ledger) with no shared vocabulary, no
persistence, and no way to aggregate across the process-pool workers a
sharded decode spans.  The telemetry plane replaces those islands with
one registry of three primitive instruments:

- :class:`Counter` — monotonically increasing totals (windows decoded,
  frames dropped, flushes per reason);
- :class:`Gauge` — last-written level signals (queue depth, effective
  batch width), carrying an update *version* so merges are
  order-independent;
- :class:`Histogram` — fixed-bucket latency/size distributions with
  percentile queries that survive merging exactly (bucket counts add).

Every instrument is labeled (``stream="100:0"``, ``group="g0"``,
``worker="1234"``), so one metric name covers a fleet of series and a
reconnecting stream lands back in *its own* series instead of forking
a new one.

Snapshots are the unit of transport: :meth:`MetricsRegistry.snapshot`
captures the registry as an immutable :class:`MetricsSnapshot` which
can be merged (associatively and commutatively — the algebra
process-pool fan-in needs), serialized to plain dicts for the JSONL
ring sink or a pickle boundary, and queried.  A worker records into
its own throwaway registry and ships the snapshot home; the parent
:meth:`~MetricsRegistry.absorb`\\ s it, so cross-process aggregation is
one merge per completed task with no shared memory.
"""

from __future__ import annotations

import bisect
import math
import threading
from dataclasses import dataclass, field

from ..errors import TelemetryError

#: default histogram upper bounds (seconds): log-ish spacing from 1 ms
#: to 30 s, sized for decode/solve latencies against the paper's
#: 2-second real-time budget.  The last implicit bucket is +inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0,
)

#: default bounds for small-count distributions (batch widths, queue
#: depths): powers of two up to 1024.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

LabelKey = tuple[tuple[str, str], ...]
MetricKey = tuple[str, LabelKey]


def label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True, eq=False)
class HistogramSnapshot:
    """Immutable view of one histogram series.

    ``counts`` has ``len(bounds) + 1`` entries: one per upper bound
    plus the overflow bucket.  Merging adds counts bucket-wise, which
    is why percentile queries are *exact* under merge: the merged
    snapshot is indistinguishable from a histogram that observed the
    concatenated samples.  The running ``sum`` is the one field float
    addition cannot make order-independent, so equality treats it to
    within rounding (everything percentiles are computed from —
    counts, total, min, max — compares exactly).
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramSnapshot):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and math.isclose(
                self.sum, other.sum, rel_tol=1e-9, abs_tol=1e-12
            )
        )

    def __hash__(self) -> int:
        return hash((self.bounds, self.counts, self.total))

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise combination of two series of the same shape."""
        if self.bounds != other.bounds:
            raise TelemetryError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        lows = [v for v in (self.min, other.min) if v is not None]
        highs = [v for v in (self.max, other.max) if v is not None]
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts)
            ),
            total=self.total + other.total,
            sum=self.sum + other.sum,
            min=min(lows) if lows else None,
            max=max(highs) if highs else None,
        )

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observed values (None when empty)."""
        return self.sum / self.total if self.total else None

    def percentile(self, q: float) -> float | None:
        """Approximate q-th percentile (``q`` in [0, 100]).

        Linear interpolation inside the containing bucket, clamped to
        the observed ``min``/``max`` so a single-sample histogram
        reports that sample, not a bucket midpoint.  ``None`` when
        nothing was observed.  Deterministic in the bucket counts, so
        the answer is identical whether samples were observed by one
        registry or merged from many.
        """
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile q must be in [0, 100], got {q}")
        if self.total == 0:
            return None
        rank = q / 100.0 * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            lower = self.bounds[index - 1] if index > 0 else 0.0
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else (self.max if self.max is not None else lower)
            )
            if cumulative + count >= rank:
                inside = max(rank - cumulative, 0.0) / count
                value = lower + (upper - lower) * inside
                break
            cumulative += count
        else:  # pragma: no cover - rank <= total always lands above
            value = self.max if self.max is not None else 0.0
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSnapshot":
        try:
            return cls(
                bounds=tuple(float(b) for b in data["bounds"]),
                counts=tuple(int(c) for c in data["counts"]),
                total=int(data["total"]),
                sum=float(data["sum"]),
                min=None if data.get("min") is None else float(data["min"]),
                max=None if data.get("max") is None else float(data["max"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed histogram record: {exc}") from exc


class _Histogram:
    """Mutable histogram series inside a registry."""

    __slots__ = ("bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram bounds must be strictly increasing: {bounds}"
            )
        if not bounds:
            raise TelemetryError("histogram needs at least one bound")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise TelemetryError("cannot observe NaN")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self.counts),
            total=self.total,
            sum=self.sum,
            min=self.min,
            max=self.max,
        )

    def absorb(self, snap: HistogramSnapshot) -> None:
        if snap.bounds != self.bounds:
            raise TelemetryError(
                f"cannot absorb histogram with different buckets: "
                f"{snap.bounds} vs {self.bounds}"
            )
        for index, count in enumerate(snap.counts):
            self.counts[index] += count
        self.total += snap.total
        self.sum += snap.sum
        if snap.min is not None:
            self.min = snap.min if self.min is None else min(self.min, snap.min)
        if snap.max is not None:
            self.max = snap.max if self.max is None else max(self.max, snap.max)


def _merge_gauge(
    a: tuple[int, float], b: tuple[int, float]
) -> tuple[int, float]:
    """Order-independent gauge combination.

    Gauges are last-write-wins; "last" across processes is decided by
    the per-series update version, ties by value.  ``max`` over the
    (version, value) pair is associative and commutative, which is
    what keeps snapshot merging order-independent.
    """
    return max(a, b)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, mergeable, serializable capture of a registry.

    The merge algebra is a commutative monoid: ``empty()`` is the
    identity, counters add, gauges combine by update version and
    histograms add bucket-wise — so any merge tree over worker
    snapshots yields the same aggregate, whatever the completion
    order of the workers.
    """

    counters: dict[MetricKey, float] = field(default_factory=dict)
    gauges: dict[MetricKey, tuple[int, float]] = field(default_factory=dict)
    histograms: dict[MetricKey, HistogramSnapshot] = field(
        default_factory=dict
    )

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity."""
        return cls()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0.0) + value
        gauges = dict(self.gauges)
        for key, pair in other.gauges.items():
            gauges[key] = (
                _merge_gauge(gauges[key], pair) if key in gauges else pair
            )
        histograms = dict(self.histograms)
        for key, snap in other.histograms.items():
            histograms[key] = (
                histograms[key].merge(snap) if key in histograms else snap
            )
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def delta_since(self, previous: "MetricsSnapshot") -> "MetricsSnapshot":
        """The increment between ``previous`` and this snapshot.

        :meth:`MetricsRegistry.absorb` requires *deltas*: absorbing the
        same cumulative capture twice double-counts.  A long-lived
        worker that ships stats periodically therefore keeps the last
        snapshot it shipped and sends ``current.delta_since(shipped)``
        — the federation control-pipe roll-up does exactly this.

        Counters and histogram buckets subtract exactly (``previous``
        must be an earlier capture of the *same* registry, so every
        count is >= its predecessor).  Gauges pass through at their
        current ``(version, value)`` pair: the version-max merge makes
        re-absorbing a repeated gauge reading idempotent, so no
        subtraction is needed.  Histogram ``min``/``max`` also pass
        through current values — both are monotone over a registry's
        lifetime, so the coordinator's running extrema stay exact.
        Series with no change since ``previous`` are omitted.
        """
        counters: dict[MetricKey, float] = {}
        for key, value in self.counters.items():
            change = value - previous.counters.get(key, 0.0)
            if change < 0:
                raise TelemetryError(
                    f"counter {key[0]} went backwards "
                    f"({previous.counters[key]} -> {value}); delta_since "
                    "needs an earlier snapshot of the same registry"
                )
            if change > 0:
                counters[key] = change
        gauges = {
            key: pair
            for key, pair in self.gauges.items()
            if previous.gauges.get(key) != pair
        }
        histograms: dict[MetricKey, HistogramSnapshot] = {}
        for key, snap in self.histograms.items():
            prior = previous.histograms.get(key)
            if prior is None:
                if snap.total:
                    histograms[key] = snap
                continue
            if prior.bounds != snap.bounds or prior.total > snap.total:
                raise TelemetryError(
                    f"histogram {key[0]} shrank or changed buckets; "
                    "delta_since needs an earlier snapshot of the "
                    "same registry"
                )
            if prior.total == snap.total:
                continue
            histograms[key] = HistogramSnapshot(
                bounds=snap.bounds,
                counts=tuple(
                    now - before
                    for now, before in zip(snap.counts, prior.counts)
                ),
                total=snap.total - prior.total,
                sum=snap.sum - prior.sum,
                min=snap.min,
                max=snap.max,
            )
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    # -- queries -------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """One labeled counter series (0.0 when never incremented)."""
        return self.counters.get((name, label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of every series of a counter across all label sets."""
        return sum(
            value for (metric, _), value in self.counters.items()
            if metric == name
        )

    def label_values(self, name: str, label: str) -> set[str]:
        """Distinct values one label takes across a metric's series."""
        found: set[str] = set()
        for metric, labels in (
            *self.counters, *self.gauges, *self.histograms
        ):
            if metric == name:
                for key, value in labels:
                    if key == label:
                        found.add(value)
        return found

    def gauge_value(self, name: str, **labels: object) -> float | None:
        pair = self.gauges.get((name, label_key(labels)))
        return None if pair is None else pair[1]

    def histogram(
        self, name: str, **labels: object
    ) -> HistogramSnapshot | None:
        return self.histograms.get((name, label_key(labels)))

    def histogram_total(self, name: str) -> HistogramSnapshot | None:
        """Merge of every series of one histogram metric."""
        merged: HistogramSnapshot | None = None
        for (metric, _), snap in self.histograms.items():
            if metric == name:
                merged = snap if merged is None else merged.merge(snap)
        return merged

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON- and pickle-friendly)."""
        def encode(key: MetricKey) -> dict:
            return {"name": key[0], "labels": dict(key[1])}

        return {
            "counters": [
                {**encode(key), "value": value}
                for key, value in sorted(self.counters.items())
            ],
            "gauges": [
                {**encode(key), "version": pair[0], "value": pair[1]}
                for key, pair in sorted(self.gauges.items())
            ],
            "histograms": [
                {**encode(key), **snap.to_dict()}
                for key, snap in sorted(self.histograms.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        try:
            counters = {
                (entry["name"], label_key(entry["labels"])): float(
                    entry["value"]
                )
                for entry in data.get("counters", ())
            }
            gauges = {
                (entry["name"], label_key(entry["labels"])): (
                    int(entry["version"]),
                    float(entry["value"]),
                )
                for entry in data.get("gauges", ())
            }
            histograms = {
                (
                    entry["name"],
                    label_key(entry["labels"]),
                ): HistogramSnapshot.from_dict(entry)
                for entry in data.get("histograms", ())
            }
        except (KeyError, TypeError, AttributeError) as exc:
            raise TelemetryError(f"malformed snapshot record: {exc}") from exc
        return cls(counters=counters, gauges=gauges, histograms=histograms)


class MetricsRegistry:
    """The live, thread-safe home of every metric in one process.

    One registry serves a whole process (the gateway's event loop, the
    solve threads it dispatches, the realtime simulator): a single lock
    guards the three instrument maps, which is plenty at the event
    rates involved (per flush / per window, not per FISTA iteration).
    Worker processes use private registries and ship snapshots back —
    see :meth:`absorb`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, tuple[int, float]] = {}
        self._histograms: dict[MetricKey, _Histogram] = {}

    # -- instruments ---------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` to a labeled counter series."""
        if amount < 0:
            raise TelemetryError(
                f"counters are monotonic; cannot add {amount} to {name}"
            )
        key = (name, label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a labeled gauge series to ``value``."""
        key = (name, label_key(labels))
        with self._lock:
            version = self._gauges.get(key, (0, 0.0))[0] + 1
            self._gauges[key] = (version, float(value))

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> None:
        """Record one observation into a labeled histogram series.

        ``buckets`` fixes the bounds on first use; later calls must
        agree (or omit them).
        """
        key = (name, label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = _Histogram(
                    buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
                )
                self._histograms[key] = histogram
            elif buckets is not None and tuple(buckets) != histogram.bounds:
                raise TelemetryError(
                    f"histogram {name} already registered with buckets "
                    f"{histogram.bounds}, got {tuple(buckets)}"
                )
            histogram.observe(value)

    # -- aggregation ---------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Immutable capture of everything recorded so far."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: histogram.snapshot()
                    for key, histogram in self._histograms.items()
                },
            )

    def absorb(self, snapshot: MetricsSnapshot | dict) -> None:
        """Merge a (worker's) snapshot into the live registry.

        The snapshot must be a *delta* — the metrics of one unit of
        work, recorded into a registry created for that unit — not a
        cumulative capture, or repeated absorption double-counts.
        :func:`~repro.fleet.engine.solve_measurement_block` follows
        this contract: every call records into a fresh registry and
        returns its snapshot.
        """
        if isinstance(snapshot, dict):
            snapshot = MetricsSnapshot.from_dict(snapshot)
        with self._lock:
            for key, value in snapshot.counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, pair in snapshot.gauges.items():
                if key in self._gauges:
                    self._gauges[key] = _merge_gauge(self._gauges[key], pair)
                else:
                    self._gauges[key] = pair
            for key, snap in snapshot.histograms.items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = _Histogram(snap.bounds)
                    self._histograms[key] = histogram
                histogram.absorb(snap)

    # -- convenience reads (used by thin stat views) -------------------
    def counter_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get((name, label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        with self._lock:
            return sum(
                value for (metric, _), value in self._counters.items()
                if metric == name
            )

    def meter(self, **labels: object) -> "Meter":
        """A :class:`Meter` binding this registry to static labels."""
        return Meter(self, dict(labels))


class Meter:
    """A registry handle with static labels baked in.

    Instrumented code holds a meter instead of a (registry, labels)
    pair, and the null meter (:data:`NULL_METER`) lets call sites emit
    unconditionally — a component constructed without telemetry simply
    meters into the void instead of branching at every event.
    """

    __slots__ = ("registry", "labels")

    def __init__(
        self, registry: MetricsRegistry | None, labels: dict | None = None
    ) -> None:
        self.registry = registry
        self.labels = dict(labels or {})

    @property
    def active(self) -> bool:
        """Whether events reach a real registry."""
        return self.registry is not None

    def child(self, **labels: object) -> "Meter":
        """A meter with additional static labels."""
        return Meter(self.registry, {**self.labels, **labels})

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        if self.registry is not None:
            self.registry.inc(name, amount, **{**self.labels, **labels})

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        if self.registry is not None:
            self.registry.set_gauge(name, value, **{**self.labels, **labels})

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> None:
        if self.registry is not None:
            self.registry.observe(
                name, value, buckets=buckets, **{**self.labels, **labels}
            )


#: the do-nothing meter: safe default for instrumented components
NULL_METER = Meter(None)
