"""Minimal asyncio HTTP endpoint serving the Prometheus exposition.

``repro-ecg serve --metrics-port N`` binds this next to the ingest
gateway: any HTTP GET (conventionally ``/metrics``) receives the
current registry rendered by
:func:`~repro.telemetry.sinks.render_prometheus`.  It is deliberately
tiny — one response per connection, no routing, no keep-alive — which
is all a scrape loop (or ``curl``) needs, and keeps the dependency
surface at zero.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from .core import MetricsRegistry, MetricsSnapshot
from .sinks import render_prometheus


class MetricsServer:
    """One TCP listener answering every request with the exposition."""

    def __init__(
        self, source: MetricsRegistry | Callable[[], MetricsSnapshot]
    ) -> None:
        self._source = source
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    def _snapshot(self) -> MetricsSnapshot:
        if isinstance(self._source, MetricsRegistry):
            return self._source.snapshot()
        return self._source()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the listener; returns the actual port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        # swap before awaiting: a concurrent start() while wait_closed()
        # is suspended must not have its fresh listener nulled out
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        try:
            # consume the request head; the content is irrelevant —
            # every path serves the exposition
            try:
                await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
            ):
                return
            body = render_prometheus(self._snapshot()).encode("utf-8")
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n".encode()
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # scraper went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass


async def scrape_local(port: int, host: str = "127.0.0.1") -> str:
    """Fetch one exposition over HTTP (test/bench helper, no deps)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    if not head.startswith(b"HTTP/1.1 200"):
        raise ConnectionError(
            f"metrics endpoint answered {head.splitlines()[0]!r}"
        )
    return body.decode("utf-8")


__all__ = ["MetricsServer", "scrape_local"]
