"""Persistent sinks for telemetry snapshots: JSONL ring + Prometheus.

A long-running ``repro-ecg serve`` needs its counters to outlive the
process's stdout: this module provides the two standard shapes —

- :class:`JsonlRingSink` — an append-only JSONL file with a bounded
  record count.  Each appended line is a timestamped *cumulative*
  snapshot; once the file exceeds twice its bound it is compacted to
  the newest ``max_records`` lines (atomic replace), so the file holds
  a sliding history window at a bounded size.  :func:`replay_ring`
  restores the newest intact snapshot — a torn final line (the process
  died mid-write) falls back to the previous record instead of
  failing, which is the crash-recovery property a persistent results
  sink owes its operator.

- :func:`render_prometheus` / :func:`parse_prometheus` — the text
  exposition format scraped over HTTP (see
  :mod:`~repro.telemetry.exposition`) and its inverse.  The parser
  exists so tests and the adaptive-batching benchmark can assert the
  scrape round-trips: every counter, gauge and histogram bucket
  published is recovered exactly from the rendered text.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..errors import TelemetryError
from .catalog import spec_for
from .core import HistogramSnapshot, MetricsSnapshot, label_key

#: schema version of one ring-file record
RING_SCHEMA = 1


class JsonlRingSink:
    """Bounded JSONL file of timestamped cumulative snapshots."""

    def __init__(self, path: str | os.PathLike, max_records: int = 256) -> None:
        if max_records < 1:
            raise TelemetryError(
                f"max_records must be >= 1, got {max_records}"
            )
        self.path = Path(path)
        self.max_records = max_records
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._count = self._existing_count()

    def _existing_count(self) -> int:
        if not self.path.exists():
            return 0
        with self.path.open("rb") as handle:
            return sum(1 for _ in handle)

    def append(
        self, snapshot: MetricsSnapshot, timestamp: float | None = None
    ) -> None:
        """Persist one snapshot; compacts when the ring overflows."""
        record = {
            "schema": RING_SCHEMA,
            "unix_time": time.time() if timestamp is None else timestamp,
            "snapshot": snapshot.to_dict(),
        }
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._count += 1
        if self._count > 2 * self.max_records:
            self._compact()

    def _compact(self) -> None:
        """Keep the newest ``max_records`` lines (atomic replace)."""
        lines = self.path.read_text(encoding="utf-8").splitlines(True)
        keep = lines[-self.max_records:]
        swap = self.path.with_suffix(self.path.suffix + ".compact")
        swap.write_text("".join(keep), encoding="utf-8")
        os.replace(swap, self.path)
        self._count = len(keep)


def iter_ring_records(path: str | os.PathLike) -> list[dict]:
    """Every intact record of a ring file, oldest first.

    A torn final line (crash mid-append) is skipped silently; a torn
    or malformed line anywhere *else* raises, because that means the
    file is damaged rather than merely truncated.
    """
    path = Path(path)
    records: list[dict] = []
    if not path.exists():
        return records
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # torn tail from a crash mid-write: recoverable
            raise TelemetryError(
                f"corrupt ring record at line {index + 1} of {path}: {exc}"
            ) from exc
        if record.get("schema") != RING_SCHEMA:
            raise TelemetryError(
                f"unsupported ring schema {record.get('schema')!r} "
                f"in {path} (expected {RING_SCHEMA})"
            )
        records.append(record)
    return records


def replay_ring(path: str | os.PathLike) -> MetricsSnapshot:
    """Restore the newest intact snapshot of a ring file.

    Returns the empty snapshot for a missing or empty file, so a
    restarting server can unconditionally replay its ring.
    """
    records = iter_ring_records(path)
    if not records:
        return MetricsSnapshot.empty()
    return MetricsSnapshot.from_dict(records[-1]["snapshot"])


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges render one sample per labeled series;
    histograms render cumulative ``_bucket{le=...}`` samples plus
    ``_sum`` and ``_count``, exactly as a Prometheus scraper expects.
    Series are sorted, so the output is deterministic.
    """
    lines: list[str] = []
    by_name: dict[str, list[str]] = {}

    def emit(name: str, kind: str, sample_lines: list[str]) -> None:
        if name not in by_name:
            header = []
            spec = spec_for(name)
            if spec is not None:
                header.append(f"# HELP {name} {spec.description}")
            header.append(f"# TYPE {name} {kind}")
            by_name[name] = header
        by_name[name].extend(sample_lines)

    for (name, labels), value in sorted(snapshot.counters.items()):
        emit(
            name,
            "counter",
            [f"{name}{_format_labels(labels)} {_format_value(value)}"],
        )
    for (name, labels), (_, value) in sorted(snapshot.gauges.items()):
        emit(
            name,
            "gauge",
            [f"{name}{_format_labels(labels)} {_format_value(value)}"],
        )
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        samples = []
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            bucket_labels = labels + (("le", _format_value(bound)),)
            samples.append(
                f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
            )
        bucket_labels = labels + (("le", "+Inf"),)
        samples.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {hist.total}"
        )
        samples.append(
            f"{name}_sum{_format_labels(labels)} {repr(hist.sum)}"
        )
        samples.append(f"{name}_count{_format_labels(labels)} {hist.total}")
        emit(name, "histogram", samples)

    for name in sorted(by_name):
        lines.extend(by_name[name])
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    if not text:
        return ()
    pairs = []
    rest = text
    while rest:
        key, _, rest = rest.partition('="')
        value_chars: list[str] = []
        index = 0
        while index < len(rest):
            char = rest[index]
            if char == "\\" and index + 1 < len(rest):
                value_chars.append(rest[index:index + 2])
                index += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            index += 1
        else:
            raise TelemetryError(f"unterminated label value in {text!r}")
        pairs.append((key, _unescape_label("".join(value_chars))))
        rest = rest[index + 1:]
        if rest.startswith(","):
            rest = rest[1:]
    return tuple(pairs)


def parse_prometheus(text: str) -> dict[tuple[str, tuple], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Histogram series come back as their constituent samples
    (``name_bucket`` with the ``le`` label, ``name_sum``,
    ``name_count``) — enough for an exact round-trip check against the
    snapshot that was rendered.
    """
    samples: dict[tuple[str, tuple], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            raise TelemetryError(f"malformed exposition line: {line!r}")
        if "{" in head:
            name, _, label_text = head.partition("{")
            if not label_text.endswith("}"):
                raise TelemetryError(f"malformed labels in: {line!r}")
            labels = _parse_labels(label_text[:-1])
        else:
            name, labels = head, ()
        samples[(name, label_key(dict(labels)))] = float(value_text)
    return samples


def exposition_matches_snapshot(
    text: str, snapshot: MetricsSnapshot
) -> bool:
    """Whether scraped text recovers every sample of ``snapshot``.

    The round-trip contract asserted by tests and the adaptive
    benchmark: each counter and gauge value, every histogram's
    cumulative bucket counts, sum and count parse back exactly.
    """
    samples = parse_prometheus(text)
    for (name, labels), value in snapshot.counters.items():
        if samples.get((name, labels)) != float(value):
            return False
    for (name, labels), (_, value) in snapshot.gauges.items():
        if samples.get((name, labels)) != float(value):
            return False
    for (name, labels), hist in snapshot.histograms.items():
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            key = (
                f"{name}_bucket",
                label_key({**dict(labels), "le": _format_value(bound)}),
            )
            if samples.get(key) != float(cumulative):
                return False
        inf_key = (
            f"{name}_bucket", label_key({**dict(labels), "le": "+Inf"})
        )
        if samples.get(inf_key) != float(hist.total):
            return False
        if samples.get((f"{name}_sum", labels)) != hist.sum:
            return False
        if samples.get((f"{name}_count", labels)) != float(hist.total):
            return False
    return True


__all__ = [
    "JsonlRingSink",
    "RING_SCHEMA",
    "HistogramSnapshot",
    "exposition_matches_snapshot",
    "iter_ring_records",
    "parse_prometheus",
    "render_prometheus",
    "replay_ring",
]
