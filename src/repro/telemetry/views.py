"""Human-facing views of telemetry: tables with uniform n/a handling.

The CLI used to hand-roll each subcommand's result table (``fleet``
and ``serve --simulate`` each built their own aligned rows, each with
its own idea of how to print a missing latency).  These helpers are
the one shared path:

- :func:`na` / :func:`render_result_table` — dict-rows in,
  aligned text out, with ``None`` rendered as ``n/a`` in exactly one
  place ("no data" must never masquerade as a perfect 0.0);
- :func:`snapshot_rows` / :func:`render_snapshot_table` — render *any*
  :class:`~repro.telemetry.core.MetricsSnapshot` as a table, so every
  telemetry-backed surface gets a uniform printout for free.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..experiments.reporting import render_table
from .core import MetricsSnapshot


def na(value: object) -> object:
    """Render-missing marker: ``None`` becomes ``"n/a"``.

    The single place "no data" turns into text — a latency column with
    no decoded window must read as no-data, never as 0.0 ms.
    """
    return "n/a" if value is None else value


def render_result_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Aligned text table of dict rows with uniform ``n/a`` cells."""
    cleaned = [
        {key: na(value) for key, value in row.items()} for row in rows
    ]
    return render_table(
        cleaned, columns=columns, title=title, precision=precision
    )


def snapshot_rows(
    snapshot: MetricsSnapshot, prefix: str | None = None
) -> list[dict[str, object]]:
    """Flatten a snapshot into printable metric rows.

    Counters and gauges render their value; histograms render count,
    p50/p95 and max.  ``prefix`` filters by metric-name prefix so a
    surface can print just its own plane slice.
    """
    def keep(name: str) -> bool:
        return prefix is None or name.startswith(prefix)

    def label_text(labels: tuple[tuple[str, str], ...]) -> str:
        return ",".join(f"{k}={v}" for k, v in labels) if labels else "-"

    rows: list[dict[str, object]] = []
    for (name, labels), value in sorted(snapshot.counters.items()):
        if keep(name):
            rows.append(
                {
                    "metric": name,
                    "labels": label_text(labels),
                    "kind": "counter",
                    "value": value,
                    "p50": None,
                    "p95": None,
                    "max": None,
                }
            )
    for (name, labels), (_, value) in sorted(snapshot.gauges.items()):
        if keep(name):
            rows.append(
                {
                    "metric": name,
                    "labels": label_text(labels),
                    "kind": "gauge",
                    "value": value,
                    "p50": None,
                    "p95": None,
                    "max": None,
                }
            )
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        if keep(name):
            rows.append(
                {
                    "metric": name,
                    "labels": label_text(labels),
                    "kind": "histogram",
                    "value": hist.total,
                    "p50": hist.percentile(50),
                    "p95": hist.percentile(95),
                    "max": hist.max,
                }
            )
    return rows


def render_snapshot_table(
    snapshot: MetricsSnapshot,
    title: str | None = None,
    prefix: str | None = None,
    precision: int = 4,
) -> str:
    """One aligned table of every (filtered) series in a snapshot."""
    rows = snapshot_rows(snapshot, prefix=prefix)
    if not rows:
        return (title + "\n" if title else "") + "(no telemetry recorded)"
    return render_result_table(rows, title=title, precision=precision)


__all__ = [
    "na",
    "render_result_table",
    "render_snapshot_table",
    "snapshot_rows",
]
