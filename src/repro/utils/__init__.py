"""Small shared helpers: validation, seeding, consistent hashing."""

from .validation import (
    check_1d,
    check_integer_array,
    check_positive,
    check_probability,
    check_same_length,
)
from .hashring import HashRing
from .seeding import derive_seed, rng_from

__all__ = [
    "HashRing",
    "check_1d",
    "check_integer_array",
    "check_positive",
    "check_probability",
    "check_same_length",
    "derive_seed",
    "rng_from",
]
