"""Small shared helpers: argument validation and deterministic seeding."""

from .validation import (
    check_1d,
    check_integer_array,
    check_positive,
    check_probability,
    check_same_length,
)
from .seeding import derive_seed, rng_from

__all__ = [
    "check_1d",
    "check_integer_array",
    "check_positive",
    "check_probability",
    "check_same_length",
    "derive_seed",
    "rng_from",
]
