"""Seeded consistent-hash ring for operator-keyed gateway routing.

The federation front door must send every stream of one operator
group (same ``operator_key`` — same sensing matrix, wavelet basis and
precision) to the *same* gateway process, so the group's dense
``A = Phi Psi^-1`` precompute exists once in the fleet and
cross-stream batching stays intact.  A consistent-hash ring gives
that mapping two properties a modulo table cannot:

* **Stable under membership change.**  Removing a gateway remaps only
  the keys that ring segment owned; every other group keeps its
  gateway (and its warm operator cache, Lipschitz estimate and
  iteration workspace).  ``tests/utils/test_hashring.py`` pins this.
* **Deterministic across processes.**  Points are placed with
  BLAKE2b over a caller-supplied seed, never Python's builtin
  ``hash`` — which is salted per process (PYTHONHASHSEED) and would
  scatter the same key to different gateways in the front door and
  in any offline tooling that wants to predict placement.

Keys are arbitrary printable values (the fleet scheduler's operator
key is a tuple of ints and strings); they are canonicalized through
``repr``, which is stable for such tuples.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

_POINT_BYTES = 8


class HashRing:
    """Consistent-hash ring mapping keys to named nodes.

    Parameters
    ----------
    nodes:
        Initial node names.
    replicas:
        Virtual points per node.  More points smooth the segment
        sizes (balance improves roughly with ``1/sqrt(replicas)``).
    seed:
        Mixed into every point hash; two rings with the same nodes
        and seed are identical in any process.
    """

    def __init__(
        self,
        nodes: tuple[str, ...] | list[str] = (),
        *,
        replicas: int = 64,
        seed: int = 2011,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self.seed = int(seed)
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- hashing -----------------------------------------------------

    def _hash(self, data: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}:{data}".encode(), digest_size=_POINT_BYTES
        ).digest()
        return int.from_bytes(digest, "big")

    # -- membership --------------------------------------------------

    def add(self, node: str) -> None:
        """Add ``node``; remaps only the segments its points claim."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = self._hash(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # Point collisions between distinct nodes would make
            # ownership order-dependent; with 64-bit points they do
            # not happen in practice, but break ties by name so the
            # ring stays deterministic even then.
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < node
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Drop ``node``; only keys it owned move to other nodes."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on ring")
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- lookup ------------------------------------------------------

    def lookup(self, key: object) -> str:
        """Return the node owning ``key`` (first point clockwise)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        point = self._hash(repr(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    # -- introspection -----------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def segment_share(self) -> dict[str, float]:
        """Fraction of the key space each node owns (sums to 1.0)."""
        if not self._points:
            return {}
        span = 1 << (_POINT_BYTES * 8)
        share: dict[str, float] = {node: 0.0 for node in self._nodes}
        previous = self._points[-1] - span
        for point, owner in zip(self._points, self._owners):
            share[owner] += (point - previous) / span
            previous = point
        return share
