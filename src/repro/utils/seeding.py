"""Deterministic seed derivation.

Every stochastic component of the library (sensing-matrix construction,
synthetic ECG records, noise generators) must be reproducible from a
single integer seed.  :func:`derive_seed` maps a ``(seed, *labels)`` tuple
to a child seed through a stable hash, so independent components never
share a stream by accident and results are identical across runs and
platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a label path.

    The derivation uses BLAKE2b over the decimal representations, so it
    does not depend on Python's per-process hash randomization.
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(seed)).encode("ascii"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big") & (2**63 - 1)


def rng_from(seed: int, *labels: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(seed, *labels))
