"""Argument-validation helpers shared across the library.

These helpers raise :class:`ValueError`/:class:`TypeError` with uniform,
descriptive messages so every public entry point reports bad input the
same way.
"""

from __future__ import annotations

import numpy as np


def check_1d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a contiguous 1-D float64 view, or raise."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def check_integer_array(
    array: np.ndarray,
    name: str = "array",
    low: int | None = None,
    high: int | None = None,
) -> np.ndarray:
    """Validate an integer-typed array with optional inclusive bounds."""
    arr = np.asarray(array)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must have an integer dtype, got {arr.dtype}")
    if low is not None and arr.size and int(arr.min()) < low:
        raise ValueError(f"{name} has values below {low} (min={int(arr.min())})")
    if high is not None and arr.size and int(arr.max()) > high:
        raise ValueError(f"{name} has values above {high} (max={int(arr.max())})")
    return arr


def check_positive(value: float, name: str = "value") -> float:
    """Require a strictly positive scalar."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return float(value)


def check_probability(value: float, name: str = "value") -> float:
    """Require a scalar in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_same_length(a: np.ndarray, b: np.ndarray, names: str = "arrays") -> None:
    """Require two arrays of identical length."""
    if len(a) != len(b):
        raise ValueError(
            f"{names} must have the same length, got {len(a)} and {len(b)}"
        )
