"""Orthonormal wavelet substrate.

The paper's sparsifying basis ``Psi`` is an orthonormal wavelet basis.
This package provides:

- :mod:`repro.wavelet.filters` — orthonormal scaling/wavelet filter
  construction (Haar, Daubechies extremal-phase, symlets) by spectral
  factorization of the Daubechies half-band polynomial;
- :mod:`repro.wavelet.dwt` — multi-level periodized discrete wavelet
  transform and its exact inverse, vectorized, matrix-free;
- :mod:`repro.wavelet.operator` — linear-operator wrappers (``Psi``,
  ``Psi^T`` and the composed CS system operator ``A = Phi Psi``).
"""

from .filters import WaveletFilter, get_wavelet, available_wavelets
from .dwt import WaveletTransform
from .operator import (
    LinearOperator,
    DenseOperator,
    WaveletSynthesisOperator,
    ComposedOperator,
)

__all__ = [
    "WaveletFilter",
    "get_wavelet",
    "available_wavelets",
    "WaveletTransform",
    "LinearOperator",
    "DenseOperator",
    "WaveletSynthesisOperator",
    "ComposedOperator",
]
