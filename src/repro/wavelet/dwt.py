"""Multi-level periodized orthonormal discrete wavelet transform.

One analysis level maps a length-``n`` signal to ``n/2`` approximation
and ``n/2`` detail coefficients:

    a[k] = sum_m h[m] x[(2k + m) mod n]
    d[k] = sum_m g[m] x[(2k + m) mod n]

which is an orthonormal map when ``h`` satisfies double-shift
orthogonality and ``g`` is its quadrature mirror.  The synthesis step is
the exact transpose, so forward/inverse are exact inverses of each other
(to floating-point rounding).  Coefficients are laid out in the standard
``[a_J | d_J | d_{J-1} | ... | d_1]`` order.

All levels precompute their gather index tables once, so repeated
transforms (the inner loop of FISTA) are pure vectorized numpy.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ConfigurationError
from .filters import WaveletFilter, get_wavelet


class WaveletTransform:
    """Periodized orthonormal DWT of fixed size and depth.

    Parameters
    ----------
    n:
        Signal length; must be divisible by ``2**levels``.
    wavelet:
        Wavelet name or a :class:`WaveletFilter`.
    levels:
        Decomposition depth.  ``None`` selects the maximum depth such
        that every level keeps at least ``filter length`` samples.
    """

    def __init__(
        self,
        n: int,
        wavelet: str | WaveletFilter = "db4",
        levels: int | None = None,
    ) -> None:
        if isinstance(wavelet, str):
            wavelet = get_wavelet(wavelet)
        self.wavelet = wavelet
        self.n = int(n)
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {n}")

        if levels is None:
            levels = 0
            length = self.n
            while length % 2 == 0 and length >= 2 * wavelet.length:
                length //= 2
                levels += 1
            levels = max(levels, 1)
        self.levels = int(levels)
        if self.levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        if self.n % (1 << self.levels) != 0:
            raise ConfigurationError(
                f"n={self.n} is not divisible by 2**levels={1 << self.levels}"
            )

        self._h = wavelet.lowpass()
        self._g = wavelet.highpass()
        self._gather: list[np.ndarray] = []
        length = self.n
        for _ in range(self.levels):
            half = length // 2
            k = np.arange(half)[:, None]
            m = np.arange(len(self._h))[None, :]
            self._gather.append((2 * k + m) % length)
            length //= 2

    # ------------------------------------------------------------------
    @property
    def coefficient_length(self) -> int:
        """Length of the coefficient vector (equals ``n``)."""
        return self.n

    def band_slices(self) -> dict[str, slice]:
        """Coefficient layout: approximation band then details, coarse first."""
        slices: dict[str, slice] = {}
        coarse = self.n >> self.levels
        slices["a"] = slice(0, coarse)
        start = coarse
        for level in range(self.levels, 0, -1):
            width = self.n >> level
            slices[f"d{level}"] = slice(start, start + width)
            start += width
        return slices

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Analysis transform: signal -> wavelet coefficients (``Psi^T x``)."""
        x = np.asarray(x)
        if x.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {x.shape}")
        dtype = np.float32 if x.dtype == np.float32 else np.float64
        h = self._h.astype(dtype)
        g = self._g.astype(dtype)
        approx = x.astype(dtype, copy=False)
        details: list[np.ndarray] = []
        for gather in self._gather:
            windows = approx[gather]
            details.append(windows @ g)
            approx = windows @ h
        out = np.empty(self.n, dtype=dtype)
        out[: len(approx)] = approx
        position = len(approx)
        for detail in reversed(details):
            out[position : position + len(detail)] = detail
            position += len(detail)
        return out

    def inverse(self, coefficients: np.ndarray) -> np.ndarray:
        """Synthesis transform: coefficients -> signal (``Psi alpha``)."""
        c = np.asarray(coefficients)
        if c.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {c.shape}")
        dtype = np.float32 if c.dtype == np.float32 else np.float64
        h = self._h.astype(dtype)
        g = self._g.astype(dtype)

        coarse = self.n >> self.levels
        approx = c[:coarse].astype(dtype, copy=True)
        position = coarse
        for level in range(self.levels - 1, -1, -1):
            width = len(approx)
            detail = c[position : position + width].astype(dtype, copy=False)
            position += width
            gather = self._gather[level]
            signal = np.zeros(2 * width, dtype=dtype)
            contributions = approx[:, None] * h[None, :] + detail[:, None] * g[None, :]
            np.add.at(signal, gather.ravel(), contributions.ravel())
            approx = signal
        return approx

    # ------------------------------------------------------------------
    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Analysis of many signals at once: ``(n, B) -> (n, B)``.

        Column ``b`` matches ``forward(x[:, b])`` to floating-point
        rounding (the contraction over the filter axis may associate
        differently than the serial matmul).
        """
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.n:
            raise ValueError(f"expected shape ({self.n}, B), got {x.shape}")
        dtype = np.float32 if x.dtype == np.float32 else np.float64
        h = self._h.astype(dtype)
        g = self._g.astype(dtype)
        approx = x.astype(dtype, copy=False)
        details: list[np.ndarray] = []
        for gather in self._gather:
            # (half, filter, B) windows contracted over the filter axis
            windows = approx[gather]
            details.append(np.einsum("kfb,f->kb", windows, g, optimize=True))
            approx = np.einsum("kfb,f->kb", windows, h, optimize=True)
        out = np.empty((self.n, x.shape[1]), dtype=dtype)
        out[: approx.shape[0]] = approx
        position = approx.shape[0]
        for detail in reversed(details):
            out[position : position + detail.shape[0]] = detail
            position += detail.shape[0]
        return out

    def inverse_batch(self, coefficients: np.ndarray) -> np.ndarray:
        """Synthesis of many coefficient vectors: ``(n, B) -> (n, B)``.

        The scatter-add runs over the same gather indices in the same
        order as :meth:`inverse`, so column ``b`` is bit-identical to
        ``inverse(coefficients[:, b])``.
        """
        c = np.asarray(coefficients)
        if c.ndim != 2 or c.shape[0] != self.n:
            raise ValueError(f"expected shape ({self.n}, B), got {c.shape}")
        dtype = np.float32 if c.dtype == np.float32 else np.float64
        h = self._h.astype(dtype)
        g = self._g.astype(dtype)
        batch = c.shape[1]

        coarse = self.n >> self.levels
        approx = c[:coarse].astype(dtype, copy=True)
        position = coarse
        for level in range(self.levels - 1, -1, -1):
            width = approx.shape[0]
            detail = c[position : position + width].astype(dtype, copy=False)
            position += width
            gather = self._gather[level]
            signal = np.zeros((2 * width, batch), dtype=dtype)
            contributions = (
                approx[:, None, :] * h[None, :, None]
                + detail[:, None, :] * g[None, :, None]
            )
            np.add.at(
                signal,
                gather.ravel(),
                contributions.reshape(-1, batch),
            )
            approx = signal
        return approx

    # ------------------------------------------------------------------
    def synthesis_matrix(self) -> np.ndarray:
        """Dense ``Psi`` (columns are basis vectors); for tests and fast paths."""
        return _dense_synthesis(self.n, self.wavelet.name, self.levels)

    def sparsity_profile(self, x: np.ndarray, keep: int) -> float:
        """Energy fraction captured by the ``keep`` largest coefficients."""
        if keep <= 0:
            return 0.0
        coefficients = self.forward(np.asarray(x, dtype=np.float64))
        energy = np.sum(coefficients**2)
        if energy == 0:
            return 1.0
        magnitude = np.sort(np.abs(coefficients))[::-1]
        return float(np.sum(magnitude[:keep] ** 2) / energy)


@lru_cache(maxsize=16)
def _dense_synthesis(n: int, wavelet_name: str, levels: int) -> np.ndarray:
    """Cached dense synthesis matrix built column-by-column."""
    transform = WaveletTransform(n, wavelet_name, levels)
    psi = np.empty((n, n), dtype=np.float64)
    basis = np.zeros(n, dtype=np.float64)
    for j in range(n):
        basis[j] = 1.0
        psi[:, j] = transform.inverse(basis)
        basis[j] = 0.0
    psi.setflags(write=False)
    return psi
