"""Orthonormal wavelet filter construction.

Rather than hard-coding coefficient tables, Daubechies filters are built
by spectral factorization of the Daubechies half-band polynomial
(Daubechies 1988; Strang & Nguyen 1996):

1. form ``P(y) = sum_k C(N-1+k, k) y^k`` for ``N`` vanishing moments;
2. substitute ``y -> -(z-1)^2 / (4 z)`` and clear denominators to get the
   degree ``2(N-1)`` polynomial ``Q(z)``;
3. pick one root from each reciprocal pair of ``Q`` (inside the unit
   circle for the extremal-phase "db" family; the most linear-phase
   conjugate-closed selection for the "sym" family);
4. the scaling filter is ``c (1+z)^N prod_k (z - r_k)`` normalized to
   ``sum h = sqrt(2)``.

The construction is verified by the test suite against the defining
properties (double-shift orthonormality, vanishing moments) and against
published db2/db4 coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import comb

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WaveletFilter:
    """An orthonormal wavelet: scaling filter ``h`` and wavelet filter ``g``.

    ``g`` is the standard quadrature-mirror counterpart
    ``g[n] = (-1)^n h[L-1-n]``.
    """

    name: str
    h: tuple[float, ...]

    @property
    def length(self) -> int:
        """Filter length ``L`` (``2N`` for ``N`` vanishing moments)."""
        return len(self.h)

    @property
    def vanishing_moments(self) -> int:
        """Number of vanishing moments of the wavelet."""
        return len(self.h) // 2

    def lowpass(self) -> np.ndarray:
        """Scaling (low-pass) filter as a float64 array."""
        return np.asarray(self.h, dtype=np.float64)

    def highpass(self) -> np.ndarray:
        """Wavelet (high-pass) filter ``g[n] = (-1)^n h[L-1-n]``."""
        h = self.lowpass()
        length = len(h)
        signs = np.where(np.arange(length) % 2 == 0, 1.0, -1.0)
        return signs * h[::-1]


def _daubechies_q_polynomial(moments: int) -> np.ndarray:
    """Coefficients (highest degree first) of ``Q(z) = z^{N-1} P(y(z))``.

    ``P(y) = sum_{k<N} C(N-1+k, k) y^k`` and ``z y(z) = -(z-1)^2/4``.
    """
    n = moments
    q = np.zeros(1)
    base = np.array([-0.25, 0.5, -0.25])  # -(z-1)^2/4, highest power first
    for k in range(n):
        coefficient = comb(n - 1 + k, k)
        term = np.array([float(coefficient)])
        for _ in range(k):
            term = np.convolve(term, base)
        # multiply by z^{N-1-k}
        term = np.concatenate([term, np.zeros(n - 1 - k)])
        width = max(len(q), len(term))
        q = np.concatenate([np.zeros(width - len(q)), q])
        term = np.concatenate([np.zeros(width - len(term)), term])
        q = q + term
    return q


def _group_reciprocal_roots(roots: np.ndarray) -> list[list[complex]]:
    """Group roots into reciprocal-pair selection units.

    Each unit is a conjugate-closed set of roots strictly inside the unit
    circle; the alternative selection is the reciprocal set outside.
    Real reciprocal pairs give one-element units; complex quadruples give
    two-element (conjugate pair) units.
    """
    inside = [complex(r) for r in roots if abs(r) < 1.0]
    units: list[list[complex]] = []
    used = [False] * len(inside)
    for i, root in enumerate(inside):
        if used[i]:
            continue
        used[i] = True
        if abs(root.imag) < 1e-10:
            units.append([complex(root.real, 0.0)])
            continue
        # find its conjugate among the inside roots
        partner = None
        for j in range(i + 1, len(inside)):
            if not used[j] and abs(inside[j] - root.conjugate()) < 1e-7:
                partner = j
                break
        if partner is None:
            raise ConfigurationError(
                "root grouping failed: missing conjugate partner"
            )
        used[partner] = True
        units.append([root, inside[partner]])
    return units


def _filter_from_roots(moments: int, roots: list[complex]) -> np.ndarray:
    """Build the normalized scaling filter from selected spectral roots."""
    all_roots = [-1.0 + 0.0j] * moments + list(roots)
    coefficients = np.poly(np.array(all_roots))
    h = np.real(coefficients)
    h = h * (np.sqrt(2.0) / np.sum(h))
    return h


def _phase_nonlinearity(h: np.ndarray, num_freqs: int = 256) -> float:
    """Deviation of the filter's phase from linear (symlet criterion)."""
    omega = np.linspace(1e-3, np.pi - 1e-3, num_freqs)
    response = np.array(
        [np.sum(h * np.exp(-1j * w * np.arange(len(h)))) for w in omega]
    )
    phase = np.unwrap(np.angle(response))
    # least-squares linear fit; nonlinearity = residual energy
    design = np.vstack([omega, np.ones_like(omega)]).T
    residual = phase - design @ np.linalg.lstsq(design, phase, rcond=None)[0]
    return float(np.sum(residual**2))


@lru_cache(maxsize=None)
def _daubechies_filter(moments: int) -> tuple[float, ...]:
    """Extremal-phase Daubechies scaling filter with ``moments`` moments."""
    if moments == 1:
        inv_sqrt2 = 1.0 / np.sqrt(2.0)
        return (inv_sqrt2, inv_sqrt2)
    q = _daubechies_q_polynomial(moments)
    roots = np.roots(q)
    inside = [complex(r) for r in roots if abs(r) < 1.0]
    if len(inside) != moments - 1:
        raise ConfigurationError(
            f"spectral factorization failed for db{moments}: "
            f"{len(inside)} interior roots, expected {moments - 1}"
        )
    h = _filter_from_roots(moments, inside)
    # Canonical db filters lead with their largest coefficients; flip if
    # the energy sits at the tail so published tables are matched.
    half = len(h) // 2
    if np.sum(h[:half] ** 2) < np.sum(h[half:] ** 2):
        h = h[::-1]
    return tuple(float(x) for x in h)


@lru_cache(maxsize=None)
def _symlet_filter(moments: int) -> tuple[float, ...]:
    """Least-asymmetric (symlet) scaling filter with ``moments`` moments."""
    if moments < 2:
        raise ConfigurationError("symlets require at least 2 vanishing moments")
    q = _daubechies_q_polynomial(moments)
    roots = np.roots(q)
    units = _group_reciprocal_roots(roots)

    best_h: np.ndarray | None = None
    best_score = np.inf
    for mask in range(1 << len(units)):
        selection: list[complex] = []
        for bit, unit in enumerate(units):
            if mask & (1 << bit):
                selection.extend(1.0 / r.conjugate() for r in unit)
            else:
                selection.extend(unit)
        h = _filter_from_roots(moments, selection)
        score = _phase_nonlinearity(h)
        if score < best_score - 1e-12:
            best_score = score
            best_h = h
    assert best_h is not None
    return tuple(float(x) for x in best_h)


_SUPPORTED_DB = tuple(range(1, 11))
_SUPPORTED_SYM = tuple(range(2, 9))


def available_wavelets() -> list[str]:
    """Names accepted by :func:`get_wavelet`."""
    names = ["haar"]
    names.extend(f"db{n}" for n in _SUPPORTED_DB)
    names.extend(f"sym{n}" for n in _SUPPORTED_SYM)
    return names


@lru_cache(maxsize=None)
def get_wavelet(name: str) -> WaveletFilter:
    """Look up an orthonormal wavelet by name (``haar``, ``dbN``, ``symN``)."""
    key = name.strip().lower()
    if key == "haar":
        return WaveletFilter(name="haar", h=_daubechies_filter(1))
    if key.startswith("db"):
        try:
            moments = int(key[2:])
        except ValueError as exc:
            raise ConfigurationError(f"unknown wavelet {name!r}") from exc
        if moments not in _SUPPORTED_DB:
            raise ConfigurationError(
                f"db order {moments} unsupported (1..{_SUPPORTED_DB[-1]})"
            )
        return WaveletFilter(name=key, h=_daubechies_filter(moments))
    if key.startswith("sym"):
        try:
            moments = int(key[3:])
        except ValueError as exc:
            raise ConfigurationError(f"unknown wavelet {name!r}") from exc
        if moments not in _SUPPORTED_SYM:
            raise ConfigurationError(
                f"sym order {moments} unsupported (2..{_SUPPORTED_SYM[-1]})"
            )
        return WaveletFilter(name=key, h=_symlet_filter(moments))
    raise ConfigurationError(f"unknown wavelet {name!r}")
