"""Matrix-free linear operators for the CS reconstruction problem.

FISTA only needs two primitives from the system operator ``A = Phi Psi``:
``matvec`` (``alpha -> Phi(Psi alpha)``) and ``rmatvec``
(``r -> Psi^T(Phi^T r)``).  Implementing them as composed fast transforms
is the paper's contribution (1): no large dense matrix is ever formed on
either the encoder or the decoder.

For laptop-scale numerical sweeps a cached dense materialization
(:meth:`LinearOperator.to_dense`) is often faster than Python-level
transform composition; solvers accept either representation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp

from .dwt import WaveletTransform


class LinearOperator(ABC):
    """Minimal linear-operator interface used by the solvers."""

    shape: tuple[int, int]

    @abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator: ``y = A x``."""

    @abstractmethod
    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Apply the adjoint: ``x = A^T y``."""

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense matrix (column-by-column by default)."""
        rows, cols = self.shape
        dense = np.empty((rows, cols), dtype=np.float64)
        basis = np.zeros(cols, dtype=np.float64)
        for j in range(cols):
            basis[j] = 1.0
            dense[:, j] = self.matvec(basis)
            basis[j] = 0.0
        return dense

    def __matmul__(self, other: "LinearOperator") -> "ComposedOperator":
        return ComposedOperator(self, other)


class DenseOperator(LinearOperator):
    """Wrap a dense or scipy-sparse matrix as a :class:`LinearOperator`."""

    def __init__(self, matrix: np.ndarray | sp.spmatrix) -> None:
        if sp.issparse(matrix):
            self._matrix = matrix.tocsr()
        else:
            self._matrix = np.asarray(matrix, dtype=np.float64)
        self.shape = (int(self._matrix.shape[0]), int(self._matrix.shape[1]))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ x

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self._matrix.T @ y

    def to_dense(self) -> np.ndarray:
        if sp.issparse(self._matrix):
            return np.asarray(self._matrix.todense(), dtype=np.float64)
        return np.asarray(self._matrix, dtype=np.float64)


class WaveletSynthesisOperator(LinearOperator):
    """``Psi``: wavelet coefficients to time-domain signal (orthonormal)."""

    def __init__(self, transform: WaveletTransform) -> None:
        self.transform = transform
        self.shape = (transform.n, transform.n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.transform.inverse(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.transform.forward(y)

    def to_dense(self) -> np.ndarray:
        return self.transform.synthesis_matrix()


class ComposedOperator(LinearOperator):
    """Composition ``A = left @ right`` applied factor by factor."""

    def __init__(self, left: LinearOperator, right: LinearOperator) -> None:
        if left.shape[1] != right.shape[0]:
            raise ValueError(
                f"cannot compose shapes {left.shape} and {right.shape}"
            )
        self.left = left
        self.right = right
        self.shape = (left.shape[0], right.shape[1])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.left.matvec(self.right.matvec(x))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.right.rmatvec(self.left.rmatvec(y))

    def to_dense(self) -> np.ndarray:
        return self.left.to_dense() @ self.right.to_dense()
