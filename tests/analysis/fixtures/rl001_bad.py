# repro-lint test fixture: RL001 positives.  Parsed only, never run.
import time

from repro.solvers.batched import batched_fista  # noqa: F401


async def sleepy_coroutine():
    time.sleep(0.5)  # line 8: blocking sleep on the event loop


async def reads_file():
    with open("data.bin", "rb") as fh:  # line 12: blocking file IO
        return fh.read()


async def solves_inline(task, solver, operator, y):
    out = batched_fista(operator, y)  # line 17: module-level solver
    result = solver.solve(y)  # line 18: BatchedFista.solve by method
    return out, result
