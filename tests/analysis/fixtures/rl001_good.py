# repro-lint test fixture: RL001 negatives.  Parsed only, never run.
import asyncio
import time

from repro.solvers.batched import batched_fista


async def dispatches_off_loop(task):
    loop = asyncio.get_running_loop()
    # solver passed by reference: no call node, naturally clean
    out = await loop.run_in_executor(None, batched_fista, task)
    # a lambda is an executor thunk, not loop-side code
    more = await loop.run_in_executor(None, lambda: time.sleep(0.01))
    await asyncio.sleep(0.1)  # asyncio.sleep yields, never blocks
    return out, more


def synchronous_caller(task):
    # blocking calls in plain functions are fine — no loop to block
    time.sleep(0.01)
    return batched_fista(task, task)


async def nested_scope_is_separate():
    def helper():
        # nested def is its own execution context (runs off-loop when
        # dispatched); the async body itself stays clean
        time.sleep(0.01)

    return helper
