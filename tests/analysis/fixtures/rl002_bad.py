# repro-lint test fixture: RL002 positives.  Parsed only, never run.
import threading


class LeakyRegistry:
    """Writes self._counters both under and outside its lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}  # init writes are exempt

    def inc(self, name):
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    def reset(self):
        self._counters = {}  # line 17: unguarded write -> finding

    def merge(self, other):
        self._counters.update(other)  # reads/method calls: not flagged
        with self._lock:
            self._counters["merged"] = 1
