# repro-lint test fixture: RL002 negatives.  Parsed only, never run.
import threading


class DisciplinedRegistry:
    """Every post-init write of guarded state happens under the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._epoch = 0

    def inc(self, name):
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + 1
            self._epoch += 1

    def snapshot(self):
        with self._lock:
            return dict(self._counters)


class Lockless:
    """No lock owned: single-threaded state is out of scope."""

    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1
