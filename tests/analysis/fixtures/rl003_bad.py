# repro-lint test fixture: RL003 positives.  Parsed only, never run.
import numpy as np


def iterate(operator, y, steps):
    out = np.zeros(operator.shape[1])  # outside the loop: fine
    # repro-lint: hot
    for _ in range(steps):
        scratch = np.zeros(y.shape)  # line 9: allocator in hot loop
        snapshot = out.copy()  # line 10: method copy in hot loop
        out += scratch + snapshot
    return out


# repro-lint: hot
def hot_function(blocks):
    total = 0.0
    for block in blocks:  # whole function marked: loop is hot
        merged = np.concatenate(block)  # line 19: allocator
        total += merged.sum()
    return total
