# repro-lint test fixture: RL003 negatives.  Parsed only, never run.
import numpy as np


def iterate(operator, y, steps):
    buf = np.zeros(y.shape)  # preallocated arena, outside the loop
    out = np.zeros(operator.shape[1])
    # repro-lint: hot
    for _ in range(steps):
        np.matmul(operator, out, out=buf)  # in-place: no allocation
        buf -= y
        out -= 0.1 * (operator.T @ buf)
    return out


def unmarked(y, steps):
    # loops without a hot marker may allocate freely
    for _ in range(steps):
        y = np.zeros(y.shape) + y.copy()
    return y
