# repro-lint test fixture: RL004 positives.  Parsed only, never run.


def instrument(meter, registry):
    meter.inc("totally_invented_metric")  # line 5: undeclared name
    meter.set_gauge("ingest_windows_decoded", 1)  # line 6: kind mismatch
    meter.inc("ingest_flushes", stream="s0")  # line 7: undeclared label
    bound = registry.meter(shoe_size=42)  # line 8: unknown binding label
    return bound
