# repro-lint test fixture: RL004 negatives.  Parsed only, never run.


def instrument(meter, registry, name):
    meter.inc("ingest_windows_decoded")  # declared counter
    meter.inc("ingest_flushes", reason="deadline")  # declared label
    meter.observe("ingest_solve_seconds", 0.2)  # declared histogram
    registry.set_gauge("ingest_queue_depth", 3, group="g0")
    bound = registry.meter(stream="s1").child(group="g0")
    meter.inc(name)  # dynamic name: out of static reach, skipped
    return bound
