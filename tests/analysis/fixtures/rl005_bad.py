# repro-lint test fixture: RL005 positives.  Parsed only, never run.
from repro.errors import ProtocolError, TelemetryError  # noqa: F401


def broad_handlers(work):
    try:
        work()
    except:  # line 8: bare except
        return None
    try:
        work()
    except Exception:  # line 12: broad except
        return None
    try:
        work()
    except (ValueError, BaseException):  # line 16: broad inside tuple
        return None


def silent_swallows(frame, sink):
    try:
        frame.decode()
    except ProtocolError:  # line 23: load-bearing error swallowed
        pass
    try:
        sink.flush()
    except TelemetryError:  # line 27: swallowed with bare ellipsis
        ...
