# repro-lint test fixture: RL005 negatives.  Parsed only, never run.
import warnings

from repro.errors import ProtocolError, TelemetryError  # noqa: F401


def narrow_handlers(work):
    try:
        work()
    except (ValueError, KeyError):  # narrow types: fine
        return None


def handled_load_bearing(frame, sink, stats):
    try:
        frame.decode()
    except ProtocolError as exc:  # counted and logged: not a swallow
        stats.protocol_errors += 1
        warnings.warn(f"bad frame: {exc}", RuntimeWarning)
    try:
        sink.flush()
    except TelemetryError:  # re-raised: not a swallow
        raise
