# repro-lint test fixture: RL007 positives.  Parsed only, never run.
import numpy as np


# repro-lint: f32
def fast_leg(psi):
    iterate = np.asarray(psi, dtype=np.float32)
    weights = np.zeros(iterate.shape)  # line 8: allocator without dtype
    bias = np.ones(4)  # line 9: allocator without dtype
    gain = iterate * np.float64(0.5)  # line 10: f32 x f64 binop
    table = np.float64(1.0)
    mixed = np.add(iterate, table)  # line 12: binary ufunc promotion
    return gain + mixed + weights + bias


def hot_leg(block, steps):
    block32 = np.asarray(block, dtype=np.float32)
    scale = np.float64(2.0)
    total = np.zeros_like(block32)
    # repro-lint: hot
    for _ in range(steps):
        total += block32 * scale  # line 22: promotion in a hot loop
    return total
