# repro-lint test fixture: RL007 negatives.  Parsed only, never run.
import numpy as np


# repro-lint: f32
def fast_leg(psi):
    iterate = np.asarray(psi, dtype=np.float32)
    weights = np.zeros(iterate.shape, dtype=np.float32)
    bias = np.ones(4, np.float32)  # positional dtype counts too
    gain = iterate * np.float32(0.5)  # f32 scalar: no promotion
    out = np.empty(iterate.shape, dtype=iterate.dtype)
    np.multiply(iterate, weights, out=out)
    return gain + out + bias


def polish_exit(block, steps):
    block32 = np.asarray(block, dtype=np.float32)
    scale = np.float64(2.0)
    # repro-lint: hot
    for _ in range(steps):
        block32 = block32 * block32  # stays f32
    # deliberate f64 exit *outside* the marked region is free
    return block32.astype(np.float64) * scale


def unmarked(block):
    # no hot/f32 marker: mixed precision is not RL007's business
    return np.asarray(block, dtype=np.float32) * np.float64(3.0)
