# repro-lint test fixture: RL008 positives.  Parsed only, never run.
import asyncio
import threading

_lock = threading.Lock()


class Gateway:
    async def dispatch(self, task):
        if self._pool is None:
            self._pool = make_pool()
        await self._sem.acquire()
        return self._pool.submit(task)  # line 13: stale-guard use

    async def shutdown(self):
        if self._queue:
            await drain(self._queue)
        self._queue = None  # line 18: stale-guard write

    async def locked(self):
        with _lock:
            await asyncio.sleep(0.1)  # line 22: lock held across await
