# repro-lint test fixture: RL008 negatives.  Parsed only, never run.
import asyncio


class Gateway:
    async def dispatch(self, task):
        if self._pool is None:
            self._pool = make_pool()
        await self._sem.acquire()
        if self._pool is None:  # re-validated after the await: fine
            self._sem.release()
            return None
        return self._pool.submit(task)

    async def close(self):
        # swap-then-await: the post-await state is task-private
        server, self._server = self._server, None
        if server is not None:
            await server.wait_closed()

    async def wait_all(self):
        while self._pending:  # loop header re-tests every iteration
            await asyncio.sleep(0)

    async def async_locked(self):
        async with self._solve_lock:  # asyncio lock: non-blocking hold
            await asyncio.sleep(0)
