# repro-lint test fixture: RL009 positives.  Parsed only, never run.
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def ship_matrix(block):
    dense = np.asarray(block, dtype=np.float64)
    pool = ProcessPoolExecutor(max_workers=2)
    return pool.submit(solve, dense)  # line 11: f64-array payload


def ship_operator(matrix, synthesis):
    operator = StructuredOperator(matrix, synthesis)
    pool = multiprocessing.Pool(2)
    return pool.apply(solve, operator)  # line 17: operator payload


def ship_lambda(tasks):
    executor = ProcessPoolExecutor()
    return executor.submit(lambda t: t, tasks)  # line 22: closure


def ship_nested(tasks):
    def worker(task):
        return task

    pool = multiprocessing.Pool()
    return pool.map(worker, tasks)  # line 30: nested def


async def ship_via_executor(loop, shape):
    block = np.zeros(shape)
    return await loop.run_in_executor(
        process_pool, solve, block  # line 36: ndarray into executor
    )
