# repro-lint test fixture: RL009 negatives.  Parsed only, never run.
import dataclasses
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def ship_rebuild_material(group, packets, seed):
    task = {
        "config": dataclasses.asdict(group.config),
        "codebook": group.codebook,
        "seed": seed,
        "wire": [packet.to_bytes() for packet in packets],
    }
    pool = ProcessPoolExecutor(max_workers=2)
    return pool.submit(solve, task)  # config/seed material: fine


async def thread_executor_exempt(loop, block64):
    workers = ThreadPoolExecutor()
    # thread executors share memory: no pickling, no finding
    return await loop.run_in_executor(workers, solve, block64)


async def default_executor_exempt(loop, block64):
    return await loop.run_in_executor(None, solve, block64)


def module_level_fn(tasks):
    pool = ProcessPoolExecutor()
    return pool.map(solve, tasks)  # module-level callable, opaque args
