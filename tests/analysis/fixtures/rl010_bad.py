# repro-lint test fixture: RL010 positives.  Parsed only, never run.
import enum


class FrameKind(enum.Enum):
    HELLO = "hello"
    PACKET = "packet"
    BYE = "bye"


def dispatch(kind, body):  # line 11; chain misses BYE, no else
    if kind is FrameKind.HELLO:
        return greet(body)
    elif kind is FrameKind.PACKET:
        return ingest(body)


def match_dispatch(kind):  # match misses BYE, no case _
    match kind:
        case FrameKind.HELLO:
            return 1
        case FrameKind.PACKET:
            return 2
