# repro-lint test fixture: RL010 negatives.  Parsed only, never run.
import enum


class FrameKind(enum.Enum):
    HELLO = "hello"
    PACKET = "packet"
    BYE = "bye"


def dispatch_all(kind, body):
    if kind is FrameKind.HELLO:
        return greet(body)
    elif kind in (FrameKind.PACKET, FrameKind.BYE):
        return ingest(body)


def dispatch_default(kind, body):
    if kind is FrameKind.HELLO:
        return greet(body)
    elif kind is FrameKind.PACKET:
        return ingest(body)
    else:
        raise ValueError(kind)


def lone_guard(kind):
    if kind is FrameKind.BYE:  # a single if is a guard, not a dispatch
        return None
    return kind


def negative_guard(kind):
    if kind is not FrameKind.PACKET:  # raise-on-wrong-kind guard
        raise ValueError(kind)
    return kind


def match_default(kind):
    match kind:
        case FrameKind.HELLO:
            return 1
        case _:
            return 0
