# repro-lint test fixture: suppression semantics.  Parsed only.
import time


async def justified_line():
    time.sleep(0.01)  # repro-lint: disable=RL001 — fixture: startup barrier runs before the loop serves traffic


async def unjustified_line():
    time.sleep(0.01)  # repro-lint: disable=RL001


async def block_scope(work):
    if work:  # repro-lint: disable=RL001 — fixture: whole branch is justified
        time.sleep(0.01)
        time.sleep(0.02)
    time.sleep(0.03)  # line 17: outside the block span -> reported


async def wrong_rule():
    time.sleep(0.01)  # repro-lint: disable=RL003 — fixture: names the wrong rule, RL001 still fires


async def unknown_rule():
    time.sleep(0.01)  # repro-lint: disable=RL001,RL999 — fixture: RL999 does not exist
