"""Unit tests for the dataflow tier's engine: the CFG builder,
reaching definitions, and the value-kind lattice/transfer functions.

The rule-level behavior (RL007-RL010) is covered by the fixture tests
in ``test_lint_rules.py``; this file pins the engine semantics those
rules stand on — join points, loop back-edges, exception edges, and
the lattice algebra — so a rule regression can be localized."""

import ast

import pytest

from repro.analysis.cfg import (
    bound_names,
    build_cfg,
    header_exprs,
    reaching_definitions,
)
from repro.analysis.dataflow import (
    CONFIG,
    F32,
    F64,
    NDARRAY,
    OPERATOR,
    OTHER,
    SCALAR,
    KindAnalysis,
    analyze_functions,
    annotation_kind,
    join,
    module_return_kinds,
    promote,
)


def first_function(source: str) -> ast.FunctionDef:
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise AssertionError("no function in source")


def kinds_of(source: str) -> dict[str, str]:
    """Kinds at the function's final ``use(...)`` call, by arg name."""
    func = first_function(source)
    analysis = KindAnalysis(func).run()
    use = next(
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "use"
    )
    out: dict[str, str] = {}
    for arg in use.args:
        assert isinstance(arg, ast.Name)
        kind = analysis.kind_of(arg)
        assert isinstance(kind, str)
        out[arg.id] = kind
    return out


class TestCfgShape:
    def test_branch_join(self):
        func = first_function(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        cfg = build_cfg(func)
        # entry -> (then | else) -> join -> exit: the return statement's
        # block must have two predecessors
        return_block = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.Return) for s in b.stmts)
        )
        assert len(return_block.preds) == 2

    def test_loop_back_edge(self):
        func = first_function(
            "def f(n):\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n"
        )
        cfg = build_cfg(func)
        header = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.For) for s in b.stmts)
        )
        # the body block loops back to the header
        assert header.id in {
            succ
            for b in cfg.blocks.values()
            for succ in b.succs
            if b.id != header.id and header.id in b.succs
        }
        body = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.AugAssign) for s in b.stmts)
        )
        assert header.id in body.succs

    def test_try_except_edges(self):
        func = first_function(
            "def f():\n"
            "    x = 1\n"
            "    try:\n"
            "        x = risky()\n"
            "    except ValueError:\n"
            "        x = 2\n"
            "    return x\n"
        )
        cfg = build_cfg(func)
        handler = next(
            b
            for b in cfg.blocks.values()
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.value, ast.Constant)
                and s.value.value == 2
                for s in b.stmts
            )
        )
        # conservatively reachable both before and after the try body
        assert len(handler.preds) >= 2

    def test_return_terminates_path(self):
        func = first_function(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        )
        cfg = build_cfg(func)
        return_blocks = [
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.Return) for s in b.stmts)
        ]
        for block in return_blocks:
            assert block.succs == [cfg.exit.id]

    def test_rpo_starts_at_entry_and_covers_all(self):
        func = first_function(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"
        )
        cfg = build_cfg(func)
        order = cfg.rpo()
        assert order[0] is cfg.entry
        assert {block.id for block in order} == set(cfg.blocks)


class TestCfgHelpers:
    def test_header_exprs_surface_tests_not_bodies(self):
        stmt = ast.parse("if a > b:\n    c = 1\n").body[0]
        exprs = header_exprs(stmt)
        assert len(exprs) == 1
        assert isinstance(exprs[0], ast.Compare)

    @pytest.mark.parametrize(
        "source, names",
        [
            ("x = 1", {"x"}),
            ("x, y = pair", {"x", "y"}),
            ("for i in items:\n    pass", {"i"}),
            ("with open(p) as fh:\n    pass", {"fh"}),
            ("import numpy as np", {"np"}),
        ],
    )
    def test_bound_names(self, source, names):
        stmt = ast.parse(source).body[0]
        assert set(bound_names(stmt)) == names

    def test_reaching_definitions_at_join(self):
        func = first_function(
            "def f(c):\n"
            "    x = 1\n"
            "    if c:\n"
            "        x = 2\n"
            "    return x\n"
        )
        cfg = build_cfg(func)
        reaching = reaching_definitions(cfg)
        return_block = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.Return) for s in b.stmts)
        )
        lines = {
            line for name, line in reaching[return_block.id] if name == "x"
        }
        assert lines == {2, 4}  # both definitions reach the join


class TestLattice:
    def test_join_identity_and_mix(self):
        assert join(F32, F32) == F32
        assert join(F32, F64) == NDARRAY  # some array, precision unknown
        assert join(SCALAR, SCALAR) == SCALAR

    def test_dangerous_kinds_survive_join_with_other(self):
        # may-analysis: "possibly an ndarray" must stay visible through
        # a zero-iteration loop join
        for kind in (F32, F64, NDARRAY, OPERATOR, CONFIG):
            assert join(kind, OTHER) == kind
            assert join(OTHER, kind) == kind
        assert join(SCALAR, OTHER) == OTHER

    def test_promote_models_numpy(self):
        assert promote(F32, F64) == F64
        assert promote(F32, SCALAR) == F32  # weak python scalar
        # f64 with an unknown-precision array is f64 either way
        assert promote(F64, NDARRAY) == F64

    @pytest.mark.parametrize(
        "annotation, expected",
        [
            ("np.ndarray", NDARRAY),
            ("float", SCALAR),
            ("MonitorConfig", CONFIG),
            ("StructuredOperator", OPERATOR),
            ("np.ndarray | None", NDARRAY),
        ],
    )
    def test_annotation_kinds(self, annotation, expected):
        node = ast.parse(annotation, mode="eval").body
        assert annotation_kind(node) == expected


class TestKindAnalysis:
    def test_dtype_tracking_through_assignments(self):
        kinds = kinds_of(
            "import numpy as np\n"
            "def f(x):\n"
            "    a = np.zeros((4,), dtype=np.float32)\n"
            "    b = np.zeros((4,))\n"
            "    c = a.astype(np.float64)\n"
            "    d = np.asarray(x, dtype='float32')\n"
            "    use(a, b, c, d)\n"
        )
        assert kinds["a"] == F32
        assert kinds["b"] == F64  # numpy's default dtype
        assert kinds["c"] == F64
        assert kinds["d"] == F32

    def test_branch_join_widens_precision(self):
        kinds = kinds_of(
            "import numpy as np\n"
            "def f(c):\n"
            "    if c:\n"
            "        x = np.zeros(4, dtype=np.float32)\n"
            "    else:\n"
            "        x = np.zeros(4, dtype=np.float64)\n"
            "    use(x)\n"
        )
        assert kinds["x"] == NDARRAY

    def test_loop_zero_iteration_join_keeps_taint(self):
        kinds = kinds_of(
            "import numpy as np\n"
            "def f(items):\n"
            "    tasks = []\n"
            "    for item in items:\n"
            "        tasks.append(np.zeros((4, 4)))\n"
            "    use(tasks)\n"
        )
        assert kinds["tasks"] == F64

    def test_binop_promotion_recorded(self):
        kinds = kinds_of(
            "import numpy as np\n"
            "def f(x):\n"
            "    a = np.asarray(x, dtype=np.float32)\n"
            "    b = a * np.float64(2.0)\n"
            "    use(b)\n"
        )
        assert kinds["b"] == F64

    def test_attribute_suffix_heuristic(self):
        kinds = kinds_of(
            "def f(structure):\n"
            "    a = structure.psi32\n"
            "    b = structure.dense64\n"
            "    c = structure.dense64_t\n"
            "    d = structure.int64\n"
            "    use(a, b, c, d)\n"
        )
        assert kinds["a"] == F32
        assert kinds["b"] == F64
        assert kinds["c"] == F64  # transpose suffix stripped
        assert kinds["d"] == OTHER  # integer arrays are not float kinds

    def test_param_annotations_seed_env(self):
        kinds = kinds_of(
            "import numpy as np\n"
            "def f(block: np.ndarray, config: MonitorConfig, seed):\n"
            "    use(block, config, seed)\n"
        )
        assert kinds["block"] == NDARRAY
        assert kinds["config"] == CONFIG
        assert kinds["seed"] == CONFIG  # name fragment

    def test_tuple_unpack_distributes_kinds(self):
        kinds = kinds_of(
            "import numpy as np\n"
            "def f(x):\n"
            "    a, b = np.zeros(4, dtype=np.float32), np.zeros(4)\n"
            "    use(a, b)\n"
        )
        assert kinds["a"] == F32
        assert kinds["b"] == F64

    def test_module_return_annotations_resolve_calls(self):
        tree = ast.parse(
            "import numpy as np\n"
            "def make() -> np.ndarray: ...\n"
            "def f():\n"
            "    block = make()\n"
            "    use(block)\n"
        )
        returns = module_return_kinds(tree)
        assert returns["make"] == NDARRAY
        func = tree.body[2]
        analysis = KindAnalysis(func, returns).run()
        name = next(
            n
            for n in ast.walk(func)
            if isinstance(n, ast.Name) and n.id == "block"
            and isinstance(n.ctx, ast.Load)
        )
        assert analysis.kind_of(name) == NDARRAY

    def test_analyze_functions_yields_every_def(self):
        tree = ast.parse(
            "def a(): ...\n"
            "class C:\n"
            "    def b(self): ...\n"
            "async def c(): ...\n"
        )
        names = {func.name for func, _ in analyze_functions(tree)}
        assert names == {"a", "b", "c"}
