"""Baseline mechanics: round-trip, count semantics, malformed input."""

import json

import pytest

from repro.analysis import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import Finding
from repro.errors import ConfigurationError


def _finding(rule="RL005", path="src/a.py", line=10, key="broad-except"):
    return Finding(rule=rule, path=path, line=line, message="m", key=key)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [_finding(), _finding(line=20), _finding(path="src/b.py")]
        write_baseline(path, findings)
        counts = load_baseline(path)
        assert counts[("RL005", "src/a.py", "broad-except")] == 2
        assert counts[("RL005", "src/b.py", "broad-except")] == 1

    def test_file_is_sorted_and_deterministic(self, tmp_path):
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        findings = [_finding(path="src/z.py"), _finding(path="src/a.py")]
        write_baseline(path_a, findings)
        write_baseline(path_b, list(reversed(findings)))
        assert path_a.read_text() == path_b.read_text()
        data = json.loads(path_a.read_text())
        assert data["schema"] == 1
        files = [entry["file"] for entry in data["entries"]]
        assert files == sorted(files)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


class TestApply:
    def test_absorbs_up_to_count_then_reports(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(line=10)])
        baseline = load_baseline(path)
        # same fingerprint at a different line still absorbs; the
        # second occurrence exceeds the recorded count and is reported
        reported, absorbed = apply_baseline(
            [_finding(line=99), _finding(line=120)], baseline
        )
        assert absorbed == 1
        assert [f.line for f in reported] == [120]

    def test_unrelated_finding_not_absorbed(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding()])
        reported, absorbed = apply_baseline(
            [_finding(rule="RL001", key="time.sleep")],
            load_baseline(path),
        )
        assert absorbed == 0
        assert len(reported) == 1


class TestMalformed:
    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="malformed"):
            load_baseline(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ConfigurationError, match="schema"):
            load_baseline(path)

    def test_entry_missing_field_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"schema": 1, "entries": [{"rule": "RL005"}]})
        )
        with pytest.raises(ConfigurationError, match="entry"):
            load_baseline(path)
