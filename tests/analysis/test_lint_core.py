"""Framework mechanics: directives, suppressions, hot regions, RL000."""

from pathlib import Path

import pytest

from repro.analysis.core import (
    FRAMEWORK_RULE,
    Finding,
    SourceModule,
    dotted_name,
)


def _module(text: str) -> SourceModule:
    return SourceModule(Path("mem.py"), "mem.py", text)


def _finding(rule: str, line: int) -> Finding:
    return Finding(rule=rule, path="mem.py", line=line, message="x", key="k")


class TestDirectiveScanning:
    def test_line_suppression_with_reason(self):
        module = _module(
            "import time\n"
            "time.sleep(1)  # repro-lint: disable=RL001 — boot barrier\n"
        )
        (supp,) = module.suppressions
        assert supp.rules == ("RL001",)
        assert supp.reason == "boot barrier"
        assert (supp.start, supp.end) == (2, 2)

    def test_multiple_rules_one_comment(self):
        module = _module(
            "x = 1  # repro-lint: disable=RL001,RL005 — both justified\n"
        )
        (supp,) = module.suppressions
        assert supp.rules == ("RL001", "RL005")

    def test_directive_inside_string_is_ignored(self):
        module = _module(
            'text = "# repro-lint: disable=RL001 — not a directive"\n'
        )
        assert module.suppressions == []

    def test_hot_marker_collected(self):
        module = _module(
            "# repro-lint: hot\n"
            "for i in range(3):\n"
            "    pass\n"
        )
        assert module.hot_marks == {1}


class TestSuppressionCoverage:
    def test_covers_matching_rule_and_line(self):
        module = _module(
            "time.sleep(1)  # repro-lint: disable=RL001 — justified\n"
        )
        assert module.suppressed(_finding("RL001", 1))
        assert not module.suppressed(_finding("RL005", 1))
        assert not module.suppressed(_finding("RL001", 2))

    def test_block_scope_covers_statement_span(self):
        module = _module(
            "if True:  # repro-lint: disable=RL003 — whole branch\n"
            "    a = 1\n"
            "    b = 2\n"
            "c = 3\n"
        )
        assert module.suppressed(_finding("RL003", 2))
        assert module.suppressed(_finding("RL003", 3))
        assert not module.suppressed(_finding("RL003", 4))

    def test_framework_rule_never_suppressible(self):
        module = _module(
            "x = 1  # repro-lint: disable=RL000 — nice try\n"
        )
        assert not module.suppressed(_finding(FRAMEWORK_RULE, 1))


class TestFrameworkFindings:
    def test_unjustified_suppression_reported(self):
        module = _module("x = 1  # repro-lint: disable=RL001\n")
        (finding,) = module.framework_findings()
        assert finding.rule == FRAMEWORK_RULE
        assert finding.key == "unjustified-suppression"
        assert finding.line == 1

    def test_unknown_rule_reported(self):
        module = _module(
            "x = 1  # repro-lint: disable=RL999 — bogus id\n"
        )
        (finding,) = module.framework_findings()
        assert finding.key == "unknown-rule:RL999"

    def test_parse_error_reported(self):
        module = _module("def broken(:\n")
        (finding,) = module.framework_findings()
        assert finding.key == "parse-error"
        assert "syntax error" in finding.message

    def test_clean_module_has_no_findings(self):
        module = _module(
            "x = 1  # repro-lint: disable=RL001 — justified\n"
        )
        assert module.framework_findings() == []


class TestHotSpans:
    def test_marker_above_loop(self):
        module = _module(
            "# repro-lint: hot\n"
            "for i in range(3):\n"
            "    work()\n"
            "after()\n"
        )
        assert module.hot_spans() == [(2, 3)]
        # a for header (iterator evaluated once) is excluded
        assert not module.in_hot_span(2)
        assert module.in_hot_span(3)
        assert not module.in_hot_span(4)

    def test_while_header_is_hot(self):
        # a while condition re-runs every iteration, so its header
        # line is inside the hot span (unlike a for header)
        module = _module(
            "# repro-lint: hot\n"
            "while pending():\n"
            "    drain()\n"
            "after()\n"
        )
        assert module.hot_spans() == [(2, 3)]
        assert module.in_hot_span(2)
        assert module.in_hot_span(3)
        assert not module.in_hot_span(4)

    def test_marker_on_def_covers_every_loop(self):
        module = _module(
            "# repro-lint: hot\n"
            "def solver():\n"
            "    for i in range(3):\n"
            "        work()\n"
            "    while True:\n"
            "        more()\n"
        )
        assert sorted(module.hot_spans()) == [(3, 4), (5, 6)]

    def test_unmarked_loops_are_cold(self):
        module = _module("for i in range(3):\n    work()\n")
        assert module.hot_spans() == []
        assert not module.in_hot_span(2)


class TestHelpers:
    @pytest.mark.parametrize(
        ("source", "expected"),
        [
            ("np.zeros", "np.zeros"),
            ("a.b.c", "a.b.c"),
            ("name", "name"),
            ("f().copy", ".copy"),
        ],
    )
    def test_dotted_name(self, source, expected):
        import ast

        node = ast.parse(source, mode="eval").body
        assert dotted_name(node) == expected

    def test_finding_render(self):
        finding = _finding("RL001", 12)
        assert finding.render() == "mem.py:12: RL001 x"
