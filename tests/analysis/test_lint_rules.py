"""Fixture-driven rule tests: one bad/good snippet pair per rule.

The fixtures under ``fixtures/`` are parsed by the linter, never
imported — they deliberately contain the violations the rules exist
to catch.
"""

from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.rules_docs import cli_surface, readme_drift

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, rule_id: str):
    """Findings of one rule over one fixture file (suppressions and
    framework diagnostics still apply; no baseline)."""
    findings, _, suppressed = run_lint(
        FIXTURES.parent, [str(FIXTURES / name)], {rule_id}
    )
    return findings, suppressed


def lint_source(tmp_path: Path, source: str, rule_id: str):
    """Findings of one rule over one inline module."""
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    findings, _, _ = run_lint(tmp_path, [str(path)], {rule_id})
    return findings


class TestRL001AsyncBlocking:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl001_bad.py", "RL001")
        assert [f.line for f in findings] == [8, 12, 17, 18]
        assert {f.rule for f in findings} == {"RL001"}
        keys = {f.key for f in findings}
        assert "time.sleep" in keys
        assert "open" in keys
        assert "batched_fista" in keys
        assert "solver.solve" in keys

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl001_good.py", "RL001")
        assert findings == []

    def test_message_names_function_and_remedy(self):
        findings, _ = lint_fixture("rl001_bad.py", "RL001")
        sleep = next(f for f in findings if f.key == "time.sleep")
        assert "sleepy_coroutine" in sleep.message
        assert "run_in_executor" in sleep.message


class TestRL002LockDiscipline:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl002_bad.py", "RL002")
        (finding,) = findings
        assert finding.line == 17
        assert finding.key == "LeakyRegistry._counters"
        assert "_counters" in finding.message

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl002_good.py", "RL002")
        assert findings == []

    def test_nested_def_under_lock_is_unguarded(self, tmp_path):
        # a closure defined inside `with self._lock:` may be stored
        # and called later without the lock: its writes must count as
        # unguarded, not inherit the definition site's held state
        findings = lint_source(
            tmp_path,
            "import threading\n"
            "\n"
            "\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = {}\n"
            "\n"
            "    def set(self, key, value):\n"
            "        with self._lock:\n"
            "            self._state[key] = value\n"
            "\n"
            "            def deferred():\n"
            "                self._state[key] = None\n"
            "\n"
            "            self._callback = deferred\n",
            "RL002",
        )
        (finding,) = findings
        assert finding.line == 14
        assert finding.key == "Registry._state"

    def test_match_case_bodies_are_walked(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import threading\n"
            "\n"
            "\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._mode = 0\n"
            "\n"
            "    def set_mode(self, mode):\n"
            "        with self._lock:\n"
            "            self._mode = mode\n"
            "\n"
            "    def on_message(self, message):\n"
            "        match message:\n"
            "            case 'reset':\n"
            "                self._mode = 0\n",
            "RL002",
        )
        (finding,) = findings
        assert finding.line == 16
        assert finding.key == "Registry._mode"


class TestRL003HotLoopAlloc:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl003_bad.py", "RL003")
        assert [f.line for f in findings] == [9, 10, 19]
        keys = [f.key for f in findings]
        assert keys == ["np.zeros", "out.copy", "np.concatenate"]

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl003_good.py", "RL003")
        assert findings == []

    def test_while_header_allocation_flagged(self, tmp_path):
        # the while condition re-runs every iteration: an allocation
        # in the header is a per-iteration cost, unlike a for iterable
        findings = lint_source(
            tmp_path,
            "import numpy as np\n"
            "\n"
            "\n"
            "def drain(residual, threshold):\n"
            "    # repro-lint: hot\n"
            "    while np.any(residual.copy() > threshold):\n"
            "        residual *= 0.5\n",
            "RL003",
        )
        (finding,) = findings
        assert finding.line == 6
        assert finding.key == "residual.copy"


class TestRL004TelemetryCatalog:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl004_bad.py", "RL004")
        keys = {f.key for f in findings}
        assert keys == {
            "totally_invented_metric",
            "ingest_windows_decoded:kind",
            "ingest_flushes:stream",
            "binding:shoe_size",
        }

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl004_good.py", "RL004")
        assert findings == []

    def test_dead_entry_check_skipped_without_catalog_in_scope(self):
        # fixture runs cover one file: the cross-module dead-entry
        # check must not fire (the catalog module is out of scope)
        findings, _ = lint_fixture("rl004_good.py", "RL004")
        assert all(not f.key.startswith("dead:") for f in findings)


class TestRL005ExceptionHygiene:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl005_bad.py", "RL005")
        assert [f.line for f in findings] == [8, 12, 16, 23, 27]
        broad = [f for f in findings if f.key == "broad-except"]
        assert len(broad) == 3
        swallows = sorted(
            f.key for f in findings if f.key.startswith("swallow:")
        )
        assert swallows == [
            "swallow:ProtocolError",
            "swallow:TelemetryError",
        ]

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl005_good.py", "RL005")
        assert findings == []


class TestSuppressionFixture:
    def test_justified_suppressions_absorb_findings(self):
        findings, suppressed = lint_fixture("suppressions.py", "RL001")
        # justified line + block (2 sites) + wrong-line leak + the
        # unjustified one is suppressed for RL001 but flagged by RL000
        lines = [f.line for f in findings if f.rule == "RL001"]
        assert lines == [17, 21]  # outside block span; wrong rule named
        assert suppressed == 5

    def test_unjustified_and_unknown_rule_surface_rl000(self):
        findings, _ = lint_fixture("suppressions.py", "RL001")
        rl000 = {
            f.key for f in findings if f.rule == "RL000"
        }
        assert "unjustified-suppression" in rl000
        assert "unknown-rule:RL999" in rl000


class TestRL006DocsDrift:
    def test_missing_subcommand_reported(self):
        gaps = readme_drift(
            "docs mention `repro-ecg serve` only",
            ["serve", "lint"],
            [],
        )
        assert gaps == [("subcommand", "lint")]

    def test_missing_flag_reported(self):
        gaps = readme_drift("flags: --loss --reorder", [], ["--loss", "--adaptive"])
        assert gaps == [("flag", "--adaptive")]

    def test_clean_readme(self):
        text = "`repro-ecg serve` with --loss"
        assert readme_drift(text, ["serve"], ["--loss"]) == []

    def test_rule_skipped_outside_repo_root(self, tmp_path):
        # lint rooted at a tree with no README/cli: RL006 must not fire
        target = tmp_path / "src" / "pkg"
        target.mkdir(parents=True)
        (target / "mod.py").write_text("x = 1\n")
        findings, _, _ = run_lint(tmp_path, None, {"RL006"})
        assert findings == []

    def test_cli_surface_parsed_from_file(self, tmp_path):
        cli = tmp_path / "cli.py"
        cli.write_text(
            "CHANNEL_FLAGS = ('--loss', '--reorder')\n"
            "TELEMETRY_FLAGS = ('--adaptive',)\n"
            "\n"
            "\n"
            "def _build_parser():\n"
            "    sub = parser.add_subparsers()\n"
            "    sub.add_parser('serve', help='run the gateway')\n"
            "    ghost = sub.add_parser(\n"
            "        'ghost', help='multi-line call form'\n"
            "    )\n",
            encoding="utf-8",
        )
        subcommands, flags = cli_surface(cli)
        assert subcommands == ["serve", "ghost"]
        assert flags == ["--loss", "--reorder", "--adaptive"]

    def test_surface_comes_from_lint_root_not_interpreter(self, tmp_path):
        # a checkout linted via --root is checked against *its own*
        # cli.py: 'ghost' exists only in this tree, never in the
        # installed repro.cli, and must still be reported
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "cli.py").write_text(
            "CHANNEL_FLAGS = ('--spooky',)\n"
            "\n"
            "\n"
            "def _build_parser():\n"
            "    sub.add_parser('ghost', help='only in this tree')\n",
            encoding="utf-8",
        )
        (tmp_path / "README.md").write_text("no CLI reference here\n")
        findings, _, _ = run_lint(tmp_path, None, {"RL006"})
        assert {f.key for f in findings} == {
            "subcommand:ghost",
            "flag:--spooky",
        }


class TestRL007PrecisionFlow:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl007_bad.py", "RL007")
        assert [f.line for f in findings] == [8, 9, 10, 12, 22]
        assert {f.rule for f in findings} == {"RL007"}
        keys = {f.key for f in findings}
        assert "alloc-no-dtype:fast_leg:np.zeros" in keys
        assert "alloc-no-dtype:fast_leg:np.ones" in keys
        assert "promotion:fast_leg:f32-arrayxf64-array" in keys
        assert "promotion:hot_leg:f32-arrayxf64-array" in keys

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl007_good.py", "RL007")
        assert findings == []

    def test_silent_without_markers(self, tmp_path):
        # mixed precision outside hot/f32 regions is not RL007's call
        findings = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def mix(x):\n"
            "    a = np.asarray(x, dtype=np.float32)\n"
            "    return a * np.float64(2.0)\n",
            "RL007",
        )
        assert findings == []

    def test_message_names_the_promotion(self):
        findings, _ = lint_fixture("rl007_bad.py", "RL007")
        promo = next(f for f in findings if f.line == 10)
        assert "float64 promotion" in promo.message
        alloc = next(f for f in findings if f.line == 8)
        assert "dtype" in alloc.message


class TestRL008AwaitAtomicity:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl008_bad.py", "RL008")
        assert [f.line for f in findings] == [13, 18, 22]
        keys = {f.key for f in findings}
        assert "stale-guard:dispatch:self._pool:used" in keys
        assert "stale-guard:shutdown:self._queue:written" in keys
        assert "lock-across-await:locked:_lock" in keys

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl008_good.py", "RL008")
        assert findings == []

    def test_augassign_is_self_validating(self, tmp_path):
        # read-modify-write reads the value at the write site
        findings = lint_source(
            tmp_path,
            "class C:\n"
            "    async def count(self, frames):\n"
            "        if self.acked:\n"
            "            await drain()\n"
            "        self.acked += 1\n",
            "RL008",
        )
        assert findings == []

    def test_message_explains_the_race(self):
        findings, _ = lint_fixture("rl008_bad.py", "RL008")
        use = next(f for f in findings if f.line == 13)
        assert "re-validation" in use.message
        assert "dispatch" in use.message
        lock = next(f for f in findings if f.line == 22)
        assert "asyncio.Lock" in lock.message


class TestRL009ProcessBoundary:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl009_bad.py", "RL009")
        assert [f.line for f in findings] == [11, 17, 22, 30, 36]
        keys = {f.key for f in findings}
        assert "payload:ship_matrix:dense:f64-array" in keys
        assert "payload:ship_operator:operator:operator" in keys
        assert "closure:ship_lambda" in keys
        assert "closure:ship_nested:worker" in keys
        assert "payload:ship_via_executor:block:f64-array" in keys

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl009_good.py", "RL009")
        assert findings == []

    def test_pool_built_in_loop_carries_payload_kind(self, tmp_path):
        # tasks appended in a loop taint the list (the fleet's
        # column-sharded layout), surviving the zero-iteration join
        findings = lint_source(
            tmp_path,
            "import numpy as np\n"
            "import multiprocessing\n"
            "def shard(blocks):\n"
            "    tasks = []\n"
            "    for block in blocks:\n"
            "        tasks.append({'block': np.zeros((4, 4))})\n"
            "    pool = multiprocessing.Pool()\n"
            "    return pool.map(solve, tasks)\n",
            "RL009",
        )
        assert [f.key for f in findings] == [
            "payload:shard:tasks:f64-array"
        ]

    def test_message_names_rebuild_material(self):
        findings, _ = lint_fixture("rl009_bad.py", "RL009")
        payload = next(f for f in findings if f.line == 11)
        assert "rebuild from" in payload.message
        assert "seeds" in payload.message


class TestRL010FrameDispatch:
    def test_bad_fixture_positives(self):
        findings, _ = lint_fixture("rl010_bad.py", "RL010")
        assert [f.line for f in findings] == [12, 19]
        for finding in findings:
            assert "BYE" in finding.message
            assert finding.key.endswith(":BYE")

    def test_good_fixture_clean(self):
        findings, _ = lint_fixture("rl010_good.py", "RL010")
        assert findings == []

    def test_silent_without_enum_definition(self, tmp_path):
        # no FrameKind class in the linted tree: stay silent rather
        # than guess the member set
        findings = lint_source(
            tmp_path,
            "def dispatch(kind):\n"
            "    if kind is FrameKind.HELLO:\n"
            "        return 1\n"
            "    elif kind is FrameKind.PACKET:\n"
            "        return 2\n",
            "RL010",
        )
        assert findings == []

    def test_members_resolve_across_modules(self, tmp_path):
        (tmp_path / "proto.py").write_text(
            "import enum\n"
            "class FrameKind(enum.Enum):\n"
            "    A = 1\n"
            "    B = 2\n"
            "    C = 3\n",
            encoding="utf-8",
        )
        (tmp_path / "client.py").write_text(
            "def dispatch(kind):\n"
            "    if kind is FrameKind.A:\n"
            "        return 1\n"
            "    elif kind is FrameKind.B:\n"
            "        return 2\n",
            encoding="utf-8",
        )
        findings, _, _ = run_lint(
            tmp_path,
            [str(tmp_path / "proto.py"), str(tmp_path / "client.py")],
            {"RL010"},
        )
        (finding,) = findings
        assert finding.path.endswith("client.py")
        assert "C" in finding.message
