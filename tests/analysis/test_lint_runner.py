"""Runner end-to-end: exit codes, reports, baseline flow, the repo."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.runner import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _tree(tmp_path: Path, source: str) -> Path:
    """A minimal lintable tree with one module."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source, encoding="utf-8")
    return tmp_path


BAD_ASYNC = "import time\n\n\nasync def handler():\n    time.sleep(1)\n"


class TestExitCodes:
    def test_repo_is_clean(self, capsys):
        """The acceptance gate: repro-lint exits 0 on today's tree."""
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one_with_file_line_and_rule(
        self, tmp_path, capsys
    ):
        root = _tree(tmp_path, BAD_ASYNC)
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "src/pkg/mod.py:5: RL001" in out

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        root = _tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "--select", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_root_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["--root", str(missing)]) == 2

    def test_bad_path_is_usage_error(self, tmp_path, capsys):
        root = _tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "no/such/file.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        root = _tree(tmp_path, BAD_ASYNC)
        assert main(["--root", str(root), "--select", "RL002"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in out


class TestReports:
    def test_json_report_written(self, tmp_path, capsys):
        root = _tree(tmp_path, BAD_ASYNC)
        report_path = tmp_path / "out" / "report.json"
        assert (
            main(["--root", str(root), "--report", str(report_path)]) == 1
        )
        report = json.loads(report_path.read_text())
        assert report["schema"] == 1
        assert report["counts"] == {"RL001": 1}
        (finding,) = report["findings"]
        assert finding["rule"] == "RL001"
        assert finding["path"] == "src/pkg/mod.py"
        assert finding["line"] == 5

    def test_json_stdout_format(self, tmp_path, capsys):
        root = _tree(tmp_path, BAD_ASYNC)
        assert main(["--root", str(root), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"] == {"RL001": 1}


class TestSelectFrameworkDiagnostics:
    def test_rl000_is_a_legal_selection(self, tmp_path):
        root = _tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "--select", "RL000"]) == 0

    def test_rl000_reported_even_when_selection_excludes_it(
        self, tmp_path, capsys
    ):
        """Framework diagnostics (unparseable files, malformed
        suppressions) must always surface: narrowing the run to RL002
        cannot silence the syntax error."""
        root = _tree(tmp_path, "def broken(:\n")
        assert main(["--root", str(root), "--select", "RL002"]) == 1
        assert "RL000" in capsys.readouterr().out


class TestChangedFiles:
    def _git(self, root, *argv):
        subprocess.run(
            ["git", *argv],
            cwd=root,
            check=True,
            capture_output=True,
            env=dict(
                os.environ,
                GIT_AUTHOR_NAME="t",
                GIT_AUTHOR_EMAIL="t@t",
                GIT_COMMITTER_NAME="t",
                GIT_COMMITTER_EMAIL="t@t",
            ),
        )

    def test_changed_limits_lint_to_diffed_and_untracked(
        self, tmp_path, capsys
    ):
        root = _tree(tmp_path, BAD_ASYNC)
        clean = root / "src" / "pkg" / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        self._git(root, "init", "-q")
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "seed")
        # mod.py is committed clean, then clean.py gains a violation:
        # --changed must lint only clean.py and miss mod.py's RL001
        clean.write_text(BAD_ASYNC, encoding="utf-8")
        untracked = root / "src" / "pkg" / "fresh.py"
        untracked.write_text(BAD_ASYNC, encoding="utf-8")
        assert main(["--root", str(root), "--changed", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "clean.py" in out
        assert "fresh.py" in out  # untracked files count as changed
        assert "mod.py" not in out

    def test_changed_falls_back_to_full_tree_without_git(
        self, tmp_path, capsys
    ):
        root = _tree(tmp_path, BAD_ASYNC)
        env_path = os.environ.get("PATH", "")
        os.environ["PATH"] = str(tmp_path / "empty-bin")
        try:
            assert main(["--root", str(root), "--changed", "HEAD"]) == 1
        finally:
            os.environ["PATH"] = env_path
        captured = capsys.readouterr()
        assert "falling back to the full tree" in captured.err
        assert "mod.py:5: RL001" in captured.out


class TestGithubFormat:
    def test_workflow_annotations_emitted(self, tmp_path, capsys):
        root = _tree(tmp_path, BAD_ASYNC)
        assert main(["--root", str(root), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=src/pkg/mod.py,line=5,title=RL001 " in out
        assert "1 finding(s)" in out  # summary line still present

    def test_clean_tree_emits_no_annotations(self, tmp_path, capsys):
        root = _tree(tmp_path, "x = 1\n")
        assert main(["--root", str(root), "--format", "github"]) == 0
        assert "::error" not in capsys.readouterr().out


class TestBaselineFlow:
    def test_write_then_absorb_then_new_finding(self, tmp_path, capsys):
        root = _tree(tmp_path, BAD_ASYNC)
        # record today's findings
        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert (root / ".repro-lint-baseline.json").exists()
        # grandfathered: the same tree is now green
        assert main(["--root", str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # --no-baseline surfaces them again
        assert main(["--root", str(root), "--no-baseline"]) == 1
        # a second, new violation exceeds the recorded count and fails
        mod = root / "src" / "pkg" / "mod.py"
        mod.write_text(BAD_ASYNC + "\n\nasync def two():\n    time.sleep(2)\n")
        assert main(["--root", str(root)]) == 1

    def test_repo_baseline_is_checked_in_and_empty(self):
        data = json.loads(
            (REPO_ROOT / ".repro-lint-baseline.json").read_text()
        )
        assert data == {"schema": 1, "entries": []}


class TestCliIntegration:
    def test_repro_ecg_lint_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--root", str(REPO_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_listed_in_cli_help(self):
        from repro.analysis.rules_docs import cli_surface

        subcommands, _ = cli_surface(REPO_ROOT / "src" / "repro" / "cli.py")
        assert "lint" in subcommands

    def test_seeded_violation_fails_via_cli(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        root = _tree(tmp_path, BAD_ASYNC)
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "RL001" in capsys.readouterr().out


class TestZeroDependency:
    def test_full_lint_runs_with_numpy_blocked(self):
        """CI's lint job installs no third-party deps: the whole repo
        lint — including the package root `python -m repro.analysis`
        traverses and RL004's catalog import — must run on a bare
        stdlib interpreter.  Simulated by a meta-path hook that makes
        numpy/scipy unimportable in a subprocess."""
        blocker = (
            "import sys\n"
            "class _Absent:\n"
            "    def find_spec(self, name, path=None, target=None):\n"
            "        if name.split('.')[0] in ('numpy', 'scipy'):\n"
            "            raise ModuleNotFoundError(\n"
            "                f'{name} is blocked for this test', name=name)\n"
            "        return None\n"
            "sys.meta_path.insert(0, _Absent())\n"
            "from repro.analysis.runner import main\n"
            "sys.exit(main(['--root', sys.argv[1]]))\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", blocker, str(REPO_ROOT)],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout
