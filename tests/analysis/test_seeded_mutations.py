"""Seeded-mutation tests: re-introduce one representative historical
bug per dataflow rule into the *real* source file and assert the rule
catches it.

Fixture tests prove the rules work on synthetic snippets; these prove
they guard the actual sites that motivated them — if a refactor moves
or rewrites a protected site, the ``assert old in text`` trips and the
test must be re-pointed rather than silently passing."""

from pathlib import Path

from repro.analysis import run_lint

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def mutate_and_lint(
    tmp_path: Path,
    source: Path,
    old: str,
    new: str,
    rule: str,
    extra: tuple[Path, ...] = (),
):
    """Apply one textual mutation and lint the result with one rule."""
    text = source.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor vanished from {source.name}"
    mutated = tmp_path / source.name
    mutated.write_text(text.replace(old, new, 1), encoding="utf-8")
    paths = [str(path) for path in extra] + [str(mutated)]
    findings, _, _ = run_lint(tmp_path, paths, {rule})
    return [f for f in findings if f.rule == rule]


def lint_pristine(tmp_path: Path, source: Path, rule: str, extra=()):
    return mutate_and_lint(tmp_path, source, "", "", rule, extra)


class TestRL007SeededPromotion:
    SOURCE = SRC / "solvers" / "batched.py"

    def test_pristine_f32_leg_is_clean(self, tmp_path):
        assert lint_pristine(tmp_path, self.SOURCE, "RL007") == []

    def test_f64_promotion_in_f32_leg_caught(self, tmp_path):
        # the historical bug class: one float64 operand silently runs
        # the fast leg at double precision
        findings = mutate_and_lint(
            tmp_path,
            self.SOURCE,
            "np.copyto(ys_fast, ys64)",
            "ys_fast = np.float32(1.0) * ys64",
            "RL007",
        )
        assert any("promotion" in f.key for f in findings)
        assert any("float64 promotion" in f.message for f in findings)

    def test_default_dtype_alloc_in_f32_leg_caught(self, tmp_path):
        findings = mutate_and_lint(
            tmp_path,
            self.SOURCE,
            'ys_fast = workspace.arena("ys32", (m, batch), np.float32)',
            "ys_fast = np.empty((m, batch))",
            "RL007",
        )
        assert any("alloc-no-dtype" in f.key for f in findings)


class TestRL008SeededStaleGuard:
    SOURCE = SRC / "ingest" / "gateway.py"
    GUARD = (
        "            if self._closing or self._process_pool is None:\n"
        "                # close() may have shut the pool down while "
        "this batch\n"
        "                # waited for a permit; submitting then raises "
        "outside\n"
        "                # the route path and silently kills the drain "
        "loop\n"
        "                self._inflight.release()\n"
        "                self._fail_batch(\n"
        "                    batch, ConfigurationError(\"gateway is "
        "closed\")\n"
        "                )\n"
        "                return\n"
    )

    def test_pristine_gateway_is_clean(self, tmp_path):
        assert lint_pristine(tmp_path, self.SOURCE, "RL008") == []

    def test_removing_revalidation_caught(self, tmp_path):
        # PR 9's gateway fix: without the post-acquire re-check, a
        # close() during the permit wait hands a shut-down pool to
        # run_in_executor
        findings = mutate_and_lint(
            tmp_path, self.SOURCE, self.GUARD, "", "RL008"
        )
        assert [f.key for f in findings] == [
            "stale-guard:_dispatch:self._process_pool:used"
        ]


class TestRL009SeededArrayShip:
    SOURCE = SRC / "fleet" / "engine.py"
    DISABLE = (
        "  # repro-lint: disable=RL009 — column sharding intentionally "
        "ships pooled measurement columns (stages 1-2 already ran "
        "per-member in the parent); workers still rebuild the operator "
        "from the config seed"
    )

    def test_pristine_engine_is_clean(self, tmp_path):
        assert lint_pristine(tmp_path, self.SOURCE, "RL009") == []

    def test_unjustified_array_ship_caught(self, tmp_path):
        # the PR 2 invariant: stripping the justification exposes the
        # ndarray-bearing column tasks crossing the pool boundary
        findings = mutate_and_lint(
            tmp_path, self.SOURCE, self.DISABLE, "", "RL009"
        )
        assert [f.key for f in findings] == [
            "payload:_run_column_sharded:column_tasks:ndarray-unknown"
        ]


class TestRL010SeededMissingArm:
    SOURCE = SRC / "ingest" / "client.py"
    PROTO = SRC / "ingest" / "protocol.py"
    DEFAULT_ARM = (
        "            else:\n"
        "                # a gateway never sends handshake/upstream "
        "kinds here; a\n"
        "                # future protocol frame must not stall the "
        "ack loop\n"
        "                report.error = "
        "f\"unexpected frame kind {kind.name}\"\n"
        "                break\n"
    )

    def test_pristine_client_is_clean(self, tmp_path):
        assert (
            lint_pristine(
                tmp_path, self.SOURCE, "RL010", extra=(self.PROTO,)
            )
            == []
        )

    def test_removing_default_arm_caught(self, tmp_path):
        # PR 7 added PARITY/NACK by hand-auditing dispatches; removing
        # the ack loop's default re-creates the silent-drop hazard
        findings = mutate_and_lint(
            tmp_path,
            self.SOURCE,
            self.DEFAULT_ARM,
            "",
            "RL010",
            extra=(self.PROTO,),
        )
        (finding,) = findings
        assert finding.path.endswith("client.py")
        # the ack loop handles DECODED/NACK/ERROR; everything else is
        # reported missing once the default goes away
        for member in ("HELLO", "PACKET", "BYE", "PARITY", "WELCOME"):
            assert member in finding.message
