"""Tests for the MSB-first bit I/O layer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import BitReader, BitWriter
from repro.errors import BitstreamError


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert len(writer) == 0
        assert writer.getvalue() == b""

    def test_single_bit_msb_first(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"
        assert len(writer) == 1

    def test_eight_bits_make_a_byte(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 0, 0, 1, 0, 1):
            writer.write_bit(bit)
        assert writer.getvalue() == b"\xa5"

    def test_write_bits_value(self):
        writer = BitWriter()
        writer.write_bits(0xA5, 8)
        assert writer.getvalue() == b"\xa5"

    def test_write_bits_width_zero_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert len(writer) == 0

    def test_write_bits_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_bits(4, 2)

    def test_write_bits_negative_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(-1, 4)

    def test_invalid_bit_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bit(2)

    def test_signed_range_limits(self):
        writer = BitWriter()
        writer.write_signed(-256, 9)
        writer.write_signed(255, 9)
        with pytest.raises(BitstreamError):
            writer.write_signed(256, 9)
        with pytest.raises(BitstreamError):
            writer.write_signed(-257, 9)

    def test_align_to_byte_pads_zeros(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.align_to_byte()
        assert len(writer) == 8
        assert writer.getvalue() == b"\x80"

    def test_align_on_boundary_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0xFF, 8)
        writer.align_to_byte()
        assert len(writer) == 8


class TestBitReader:
    def test_read_bits_roundtrip(self):
        reader = BitReader(b"\xa5")
        assert reader.read_bits(8) == 0xA5

    def test_read_past_end_raises(self):
        reader = BitReader(b"\xff", bit_length=3)
        reader.read_bits(3)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_bit_length_validation(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\xff", bit_length=9)

    def test_position_and_remaining(self):
        reader = BitReader(b"\xff\x00")
        assert reader.remaining == 16
        reader.read_bits(5)
        assert reader.position == 5
        assert reader.remaining == 11

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in (0, 3, 7, 1):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert [reader.read_unary() for _ in range(4)] == [0, 3, 7, 1]

    def test_align_to_byte_skips(self):
        reader = BitReader(b"\xff\xa5")
        reader.read_bits(3)
        reader.align_to_byte()
        assert reader.read_bits(8) == 0xA5

    def test_negative_width_rejected(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\xff").read_bits(-1)


class TestRoundtripProperties:
    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_bit_sequence_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert [reader.read_bit() for _ in bits] == bits

    @given(
        st.lists(
            st.tuples(st.integers(1, 24), st.integers(min_value=0)),
            max_size=50,
        ).map(
            lambda pairs: [(w, v % (1 << w)) for w, v in pairs]
        )
    )
    def test_mixed_width_roundtrip(self, fields):
        writer = BitWriter()
        for width, value in fields:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        for width, value in fields:
            assert reader.read_bits(width) == value

    @given(st.lists(st.integers(-256, 255), max_size=100))
    def test_signed_9bit_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_signed(value, 9)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert [reader.read_signed(9) for _ in values] == values

    @given(st.binary(max_size=64))
    def test_bytes_roundtrip_through_bits(self, data):
        writer = BitWriter()
        for byte in data:
            writer.write_bits(byte, 8)
        assert writer.getvalue() == data
