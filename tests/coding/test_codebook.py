"""Tests for codebook training, storage accounting and serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    BitReader,
    Codebook,
    laplacian_frequencies,
    train_codebook,
)
from repro.coding.codebook import empirical_entropy_bits, huffman_efficiency
from repro.errors import CodebookError


class TestTraining:
    def test_default_codebook_covers_full_range(self):
        codebook = train_codebook()
        assert codebook.num_symbols == 512
        assert codebook.min_value == -256
        assert codebook.max_value == 255
        # every symbol must be encodable (complete codebook)
        for value in (-256, -1, 0, 1, 255):
            symbol = codebook.symbol_for(value)
            code, length = codebook.code.codeword(symbol)
            assert 1 <= length <= 16

    def test_length_cap_respected(self):
        codebook = train_codebook(max_length=12)
        assert codebook.code.max_length <= 12

    def test_training_on_samples_shortens_frequent_symbols(self):
        samples = [0] * 10_000 + [100] * 10
        codebook = train_codebook(samples)
        zero_len = codebook.code.lengths[codebook.symbol_for(0)]
        rare_len = codebook.code.lengths[codebook.symbol_for(100)]
        assert zero_len < rare_len

    def test_out_of_range_training_value_rejected(self):
        with pytest.raises(CodebookError):
            train_codebook([300])

    def test_negative_floor_rejected(self):
        with pytest.raises(CodebookError):
            train_codebook([0], laplace_floor=-1)

    def test_symbol_value_mapping_roundtrip(self):
        codebook = train_codebook()
        for value in range(-256, 256, 37):
            assert codebook.value_for(codebook.symbol_for(value)) == value

    def test_symbol_out_of_range(self):
        codebook = train_codebook()
        with pytest.raises(CodebookError):
            codebook.symbol_for(256)
        with pytest.raises(CodebookError):
            codebook.value_for(512)


class TestStorageModel:
    def test_paper_flash_footprint(self):
        """1 kB codewords + 512 B lengths for the 512-symbol codebook."""
        codebook = train_codebook()
        flash = codebook.flash_bytes()
        assert flash["codeword_table"] == 1024
        assert flash["length_table"] == 512
        assert flash["total"] == 1536

    def test_mean_bits_per_symbol_positive(self):
        codebook = train_codebook()
        frequencies = laplacian_frequencies()
        mean = codebook.mean_bits_per_symbol(frequencies)
        assert 1.0 < mean < 16.0

    def test_mean_bits_rejects_zero_total(self):
        codebook = train_codebook()
        with pytest.raises(CodebookError):
            codebook.mean_bits_per_symbol([0] * 512)


class TestSerialization:
    def test_json_roundtrip(self):
        codebook = train_codebook()
        clone = Codebook.from_json(codebook.to_json())
        assert clone.offset == codebook.offset
        assert clone.code.lengths == codebook.code.lengths

    def test_malformed_json_rejected(self):
        with pytest.raises(CodebookError):
            Codebook.from_json("{not json")
        with pytest.raises(CodebookError):
            Codebook.from_json('{"offset": 0}')

    def test_roundtripped_codebook_decodes(self):
        codebook = train_codebook()
        clone = Codebook.from_json(codebook.to_json())
        message = [-5, 0, 3, 255, -256]
        writer = codebook.code.encode(
            [codebook.symbol_for(v) for v in message]
        )
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        decoded = [
            clone.value_for(s) for s in clone.code.decode(reader, len(message))
        ]
        assert decoded == message


class TestEntropyHelpers:
    def test_empirical_entropy_uniform(self):
        assert empirical_entropy_bits([0, 1, 2, 3]) == pytest.approx(2.0)

    def test_empirical_entropy_constant(self):
        assert empirical_entropy_bits([7] * 10) == pytest.approx(0.0)

    def test_empirical_entropy_empty_rejected(self):
        with pytest.raises(CodebookError):
            empirical_entropy_bits([])

    def test_huffman_efficiency_close_to_entropy(self):
        import numpy as np

        rng = np.random.default_rng(0)
        samples = np.clip(
            np.round(rng.laplace(scale=10.0, size=20_000)), -256, 255
        ).astype(int)
        codebook = train_codebook(list(samples))
        report = huffman_efficiency(codebook, list(samples))
        assert report["mean_bits_per_symbol"] >= report["entropy_bits_per_symbol"] - 1e-9
        assert report["redundancy_bits"] < 0.3  # near-optimal on its corpus
        assert 0.9 < report["efficiency"] <= 1.0

    def test_laplacian_frequencies_shape(self):
        frequencies = laplacian_frequencies(num_symbols=512)
        assert len(frequencies) == 512
        assert all(f >= 1 for f in frequencies)
        # symmetric-ish and peaked at the center
        assert frequencies[256] == max(frequencies)

    def test_laplacian_rejects_bad_params(self):
        with pytest.raises(CodebookError):
            laplacian_frequencies(num_symbols=1)
        with pytest.raises(CodebookError):
            laplacian_frequencies(scale=0.0)

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.integers(-256, 255), min_size=1, max_size=300))
    def test_trained_codebook_roundtrips_any_in_range_stream(self, values):
        codebook = train_codebook(values)
        writer = codebook.code.encode(
            [codebook.symbol_for(v) for v in values]
        )
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        decoded = [
            codebook.value_for(s)
            for s in codebook.code.decode(reader, len(values))
        ]
        assert decoded == values
