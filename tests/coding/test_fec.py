"""Unit tests of the XOR-parity math (repro.coding.fec).

Pure byte-level properties only; the recovery *policy* built on top
(hold, NACK, give-up) is exercised in ``tests/ingest/test_channel.py``.
"""

from __future__ import annotations

import pytest

from repro.coding.fec import (
    PARITY_HEADER_BYTES,
    covered_sequences,
    decode_parity_body,
    encode_parity_body,
    recover_body,
    xor_fold,
)
from repro.core.packets import EncodedPacket, PacketKind
from repro.errors import PacketFormatError


def _wire(sequence: int, payload: bytes) -> bytes:
    """One CRC-valid on-air packet body with an arbitrary payload."""
    return EncodedPacket(
        kind=PacketKind.KEYFRAME,
        sequence=sequence,
        m=4,
        payload=payload,
        payload_bits=8 * len(payload),
    ).to_bytes()


class TestXorFold:
    def test_order_independent(self):
        bodies = [b"\x01\x02\x03", b"\xff\x00", b"\x10\x20\x30\x40"]
        assert xor_fold(bodies) == xor_fold(list(reversed(bodies)))

    def test_fold_is_self_inverse(self):
        a, b = b"\xaa\xbb\xcc", b"\x0f"
        parity = xor_fold([a, b])
        # folding the parity with one body yields the other, zero-padded
        assert xor_fold([parity, a]) == b + b"\x00" * 2
        assert xor_fold([parity, b]) == a

    def test_zero_bodies_rejected(self):
        with pytest.raises(PacketFormatError):
            xor_fold([])


class TestParityBody:
    def test_roundtrip(self):
        bodies = [b"\x01\x02", b"\x03\x04\x05"]
        body = encode_parity_body(7, bodies)
        base, count, parity = decode_parity_body(body)
        assert (base, count) == (7, 2)
        assert parity == xor_fold(bodies)
        assert len(body) == PARITY_HEADER_BYTES + 3

    def test_validation(self):
        with pytest.raises(PacketFormatError):
            encode_parity_body(1 << 16, [b"x"])
        with pytest.raises(PacketFormatError):
            encode_parity_body(0, [])
        with pytest.raises(PacketFormatError):
            decode_parity_body(b"\x00\x01")  # shorter than the header
        with pytest.raises(PacketFormatError):
            decode_parity_body(b"\x00\x01\x00\x00")  # zero count

    def test_covered_sequences_wrap(self):
        assert covered_sequences(65534, 4) == [65534, 65535, 0, 1]


class TestRecoverBody:
    def test_reconstructs_any_single_missing_body(self):
        bodies = [
            _wire(0, b"\x11\x22\x33\x44"),
            _wire(1, b"\x55"),
            _wire(2, b"\x66\x77\x88"),
            _wire(3, b"\x99\xaa\xbb\xcc\xdd"),
        ]
        _, _, parity = decode_parity_body(encode_parity_body(0, bodies))
        for lost in range(len(bodies)):
            present = [b for i, b in enumerate(bodies) if i != lost]
            recovered = recover_body(parity, present)
            assert recovered == bodies[lost]
            # and the CRC the receiver re-checks actually passes
            assert EncodedPacket.from_bytes(recovered).sequence == lost

    def test_two_missing_bodies_fail_crc(self):
        """With two bodies missing the fold is garbage; the length trim
        or the on-air CRC must refuse it — never a silent bad window."""
        bodies = [_wire(s, bytes([s] * (3 + s))) for s in range(4)]
        _, _, parity = decode_parity_body(encode_parity_body(0, bodies))
        with pytest.raises(PacketFormatError):
            candidate = recover_body(parity, bodies[:2])  # 2 and 3 lost
            EncodedPacket.from_bytes(candidate)

    def test_nonzero_padding_rejected(self):
        """A recovered body must be zero beyond its declared length —
        anything else proves the reconstruction inexact."""
        short, long = _wire(0, b"\x01"), _wire(1, b"\x02\x03\x04\x05")
        _, _, parity = decode_parity_body(encode_parity_body(0, [short, long]))
        # corrupt the parity tail beyond the short body's extent
        bad = parity[:-1] + bytes([parity[-1] ^ 0xFF])
        with pytest.raises(PacketFormatError):
            recover_body(bad, [long])

    def test_too_short_remainder_rejected(self):
        with pytest.raises(PacketFormatError):
            recover_body(b"\x00\x01", [b"\x00"])
