"""Tests for Huffman length computation and canonical codes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import BitReader, BitWriter, HuffmanCode, huffman_code_lengths
from repro.coding.huffman import canonical_codewords, kraft_sum
from repro.errors import CodebookError, DecodingError


class TestHuffmanLengths:
    def test_two_equal_symbols_get_one_bit(self):
        assert huffman_code_lengths([1, 1]) == [1, 1]

    def test_single_symbol_gets_one_bit(self):
        assert huffman_code_lengths([0, 5, 0]) == [0, 1, 0]

    def test_classic_example(self):
        # frequencies 1,1,2,4 -> depths 3,3,2,1
        assert huffman_code_lengths([1, 1, 2, 4]) == [3, 3, 2, 1]

    def test_zero_frequency_symbols_absent(self):
        lengths = huffman_code_lengths([5, 0, 5])
        assert lengths[1] == 0

    def test_empty_rejected(self):
        with pytest.raises(CodebookError):
            huffman_code_lengths([])

    def test_all_zero_rejected(self):
        with pytest.raises(CodebookError):
            huffman_code_lengths([0, 0])

    def test_negative_rejected(self):
        with pytest.raises(CodebookError):
            huffman_code_lengths([1, -1])

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=64).filter(
        lambda f: sum(1 for x in f if x > 0) >= 2
    ))
    def test_kraft_equality_for_optimal_codes(self, frequencies):
        lengths = huffman_code_lengths(frequencies)
        assert kraft_sum(lengths) == pytest.approx(1.0)

    @given(st.lists(st.integers(1, 1000), min_size=2, max_size=32))
    def test_optimality_vs_entropy_bound(self, frequencies):
        """Mean length within [entropy, entropy + 1)."""
        import math

        lengths = huffman_code_lengths(frequencies)
        total = sum(frequencies)
        mean = sum(f * l for f, l in zip(frequencies, lengths)) / total
        entropy = -sum(
            f / total * math.log2(f / total) for f in frequencies if f
        )
        assert entropy - 1e-9 <= mean < entropy + 1.0

    @given(st.lists(st.integers(1, 100), min_size=2, max_size=24))
    def test_higher_frequency_never_longer_code(self, frequencies):
        lengths = huffman_code_lengths(frequencies)
        pairs = sorted(zip(frequencies, lengths))
        for (f1, l1), (f2, l2) in zip(pairs, pairs[1:]):
            if f1 < f2:
                assert l1 >= l2


class TestCanonicalCodewords:
    def test_known_assignment(self):
        # lengths [1, 2, 2] -> codes 0, 10, 11
        codes = canonical_codewords([1, 2, 2])
        assert codes == [0b0, 0b10, 0b11]

    def test_absent_symbols_have_none(self):
        codes = canonical_codewords([1, 0, 1])
        assert codes[1] is None

    def test_kraft_violation_rejected(self):
        with pytest.raises(CodebookError):
            canonical_codewords([1, 1, 1])

    def test_empty_table_rejected(self):
        with pytest.raises(CodebookError):
            canonical_codewords([0, 0])


class TestHuffmanCode:
    def _make(self, frequencies):
        return HuffmanCode(huffman_code_lengths(frequencies))

    def test_encode_decode_single_symbol(self):
        code = self._make([3, 1, 1])
        writer = code.encode([0, 1, 2, 0])
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert code.decode(reader, 4) == [0, 1, 2, 0]

    def test_prefix_property(self):
        code = self._make([5, 3, 2, 1, 1])
        words = []
        for symbol in range(5):
            bits, length = code.codeword(symbol)
            words.append(format(bits, f"0{length}b"))
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_decode_invalid_codeword_raises(self):
        # canonical codes for lengths [2,2,2] are 00, 01, 10 -> "11" invalid
        code = HuffmanCode([2, 2, 2])
        reader = BitReader(b"\xff\xff")
        with pytest.raises(DecodingError):
            code.decode_symbol(reader)

    def test_codeword_for_absent_symbol_raises(self):
        code = self._make([1, 1, 0])
        with pytest.raises(CodebookError):
            code.codeword(2)

    def test_codeword_out_of_alphabet_raises(self):
        code = self._make([1, 1])
        with pytest.raises(CodebookError):
            code.codeword(5)

    def test_encode_symbol_without_codeword_raises(self):
        code = self._make([1, 0, 1])
        with pytest.raises(CodebookError):
            code.encode_symbol(1, BitWriter())

    def test_expected_bits(self):
        code = self._make([1, 1, 2])
        # lengths: 2,2,1 -> bits = 1*2 + 1*2 + 2*1 = 6
        assert code.expected_bits([1, 1, 2]) == pytest.approx(6.0)

    def test_expected_bits_mismatched_table(self):
        code = self._make([1, 1])
        with pytest.raises(CodebookError):
            code.expected_bits([1, 1, 1])

    def test_expected_bits_uncovered_symbol(self):
        code = self._make([1, 0, 1])
        with pytest.raises(CodebookError):
            code.expected_bits([1, 5, 1])

    def test_negative_decode_count_rejected(self):
        code = self._make([1, 1])
        with pytest.raises(DecodingError):
            code.decode(BitReader(b"\x00"), -1)

    @settings(deadline=None)
    @given(
        st.lists(st.integers(1, 50), min_size=2, max_size=40),
        st.data(),
    )
    def test_roundtrip_random_messages(self, frequencies, data):
        code = self._make(frequencies)
        message = data.draw(
            st.lists(st.integers(0, len(frequencies) - 1), max_size=100)
        )
        writer = code.encode(message)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert code.decode(reader, len(message)) == message
