"""Tests for package-merge length-limited codes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import huffman_code_lengths, package_merge_lengths
from repro.coding.huffman import kraft_sum
from repro.errors import CodebookError


class TestPackageMerge:
    def test_matches_huffman_when_unconstrained(self):
        frequencies = [1, 1, 2, 4, 8, 16]
        unlimited = huffman_code_lengths(frequencies)
        limited = package_merge_lengths(frequencies, max_length=32)
        # same total cost (lengths may permute within equal frequencies)
        cost_u = sum(f * l for f, l in zip(frequencies, unlimited))
        cost_l = sum(f * l for f, l in zip(frequencies, limited))
        assert cost_u == cost_l

    def test_respects_length_cap(self):
        # exponential frequencies force deep Huffman trees
        frequencies = [2**i for i in range(12)]
        lengths = package_merge_lengths(frequencies, max_length=6)
        assert max(lengths) <= 6
        assert kraft_sum(lengths) <= 1.0 + 1e-12

    def test_single_symbol(self):
        assert package_merge_lengths([0, 7], 4) == [0, 1]

    def test_too_many_symbols_for_cap(self):
        with pytest.raises(CodebookError):
            package_merge_lengths([1] * 5, max_length=2)

    def test_exactly_full_tree(self):
        lengths = package_merge_lengths([1, 1, 1, 1], max_length=2)
        assert lengths == [2, 2, 2, 2]

    def test_invalid_cap(self):
        with pytest.raises(CodebookError):
            package_merge_lengths([1, 1], max_length=0)

    def test_negative_frequency(self):
        with pytest.raises(CodebookError):
            package_merge_lengths([1, -2], max_length=4)

    def test_no_active_symbols(self):
        with pytest.raises(CodebookError):
            package_merge_lengths([0, 0], max_length=4)

    def test_paper_alphabet_512_symbols_16_bits(self):
        """The paper's codebook: 512 symbols within 16-bit codewords."""
        import numpy as np

        values = np.arange(-256, 256)
        frequencies = np.maximum(
            1, (1e6 * np.exp(-np.abs(values) / 10.0)).astype(int)
        )
        lengths = package_merge_lengths([int(f) for f in frequencies], 16)
        assert len(lengths) == 512
        assert max(lengths) <= 16
        assert min(l for l in lengths if l > 0) >= 1
        assert kraft_sum(lengths) <= 1.0 + 1e-12

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.integers(0, 10_000), min_size=2, max_size=64).filter(
            lambda f: sum(1 for x in f if x > 0) >= 2
        ),
        st.integers(7, 16),
    )
    def test_kraft_inequality_always_holds(self, frequencies, cap):
        lengths = package_merge_lengths(frequencies, cap)
        assert max(lengths) <= cap
        assert kraft_sum(lengths) <= 1.0 + 1e-12
        for freq, length in zip(frequencies, lengths):
            assert (length > 0) == (freq > 0)

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.integers(1, 1000), min_size=2, max_size=32),
    )
    def test_cost_never_better_than_huffman(self, frequencies):
        """A constrained code can't beat the unconstrained optimum."""
        unlimited = huffman_code_lengths(frequencies)
        limited = package_merge_lengths(frequencies, max_length=8)
        cost_u = sum(f * l for f, l in zip(frequencies, unlimited))
        cost_l = sum(f * l for f, l in zip(frequencies, limited))
        assert cost_l >= cost_u
