"""Tests for inter-packet redundancy removal (DPCM with keyframes)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import DifferentialCodec
from repro.errors import DecodingError


def _paired_codecs(**kwargs):
    return DifferentialCodec(**kwargs), DifferentialCodec(**kwargs)


class TestBasics:
    def test_first_packet_is_keyframe(self):
        codec = DifferentialCodec()
        is_key, payload = codec.encode(np.array([1, 2, 3]))
        assert is_key
        assert list(payload) == [1, 2, 3]

    def test_second_packet_is_difference(self):
        codec = DifferentialCodec()
        codec.encode(np.array([10, 20, 30]))
        is_key, diff = codec.encode(np.array([11, 19, 30]))
        assert not is_key
        assert list(diff) == [1, -1, 0]

    def test_keyframe_interval(self):
        codec = DifferentialCodec(keyframe_interval=3)
        kinds = [codec.encode(np.array([i]))[0] for i in range(7)]
        assert kinds == [True, False, False, True, False, False, True]

    def test_reset_forces_keyframe(self):
        codec = DifferentialCodec()
        codec.encode(np.array([1]))
        codec.reset()
        assert codec.encode(np.array([2]))[0] is True
        assert codec.packet_index == 1

    def test_length_change_rejected(self):
        codec = DifferentialCodec()
        codec.encode(np.array([1, 2]))
        with pytest.raises(ValueError):
            codec.encode(np.array([1, 2, 3]))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DifferentialCodec(keyframe_interval=0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            DifferentialCodec(diff_min=1, diff_max=10)

    def test_non_integer_input_rejected(self):
        codec = DifferentialCodec()
        with pytest.raises(TypeError):
            codec.encode(np.array([1.5, 2.5]))

    def test_2d_input_rejected(self):
        codec = DifferentialCodec()
        with pytest.raises(ValueError):
            codec.encode(np.array([[1, 2], [3, 4]]))


class TestSaturation:
    def test_diff_saturates_at_rails(self):
        codec = DifferentialCodec()
        codec.encode(np.array([0, 0]))
        _, diff = codec.encode(np.array([1000, -1000]))
        assert list(diff) == [255, -256]

    def test_closed_loop_recovers_after_saturation(self):
        """Encoder tracks decoder state, so saturation heals over packets."""
        encoder, decoder = _paired_codecs()
        target = np.array([1000])
        decoded = None
        decoder.decode(*_swap(encoder.encode(np.array([0]))))
        for _ in range(5):
            decoded = decoder.decode(*_swap(encoder.encode(target)))
        assert list(decoded) == [1000]

    def test_saturation_fraction_is_strict(self):
        """Regression: rail values are representable, not clipped."""
        codec = DifferentialCodec()
        assert codec.saturation_fraction(np.array([0, 255, -256, 10])) == 0.0
        assert codec.saturation_fraction(np.array([0, 256, -257, 10])) == 0.5
        assert codec.saturation_fraction(np.array([], dtype=int)) == 0.0

    def test_last_clip_count_strict(self):
        codec = DifferentialCodec()
        codec.encode(np.array([0, 0, 0]))  # keyframe
        assert codec.last_clip_count == 0
        # one exactly at each rail (representable), one truly clipped
        _, diff = codec.encode(np.array([255, -256, 400]))
        assert list(diff) == [255, -256, 255]
        assert codec.last_clip_count == 1


def _swap(pair):
    is_key, payload = pair
    return is_key, payload


class TestDecoder:
    def test_difference_before_keyframe_rejected(self):
        decoder = DifferentialCodec()
        with pytest.raises(DecodingError):
            decoder.decode(False, np.array([1, 2]))

    def test_length_mismatch_rejected(self):
        encoder, decoder = _paired_codecs()
        decoder.decode(*encoder.encode(np.array([1, 2])))
        with pytest.raises(DecodingError):
            decoder.decode(False, np.array([1, 2, 3]))

    def test_out_of_range_diff_rejected(self):
        decoder = DifferentialCodec()
        decoder.decode(True, np.array([0, 0]))
        with pytest.raises(DecodingError):
            decoder.decode(False, np.array([300, 0]))

    def test_keyframe_resynchronizes(self):
        encoder, decoder = _paired_codecs(keyframe_interval=4)
        stream = [np.array([i, 2 * i]) for i in range(10)]
        outputs = [decoder.decode(*encoder.encode(x)) for x in stream]
        for x, y in zip(stream, outputs):
            assert list(x) == list(y)


class TestRoundtripProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.lists(st.integers(-1024, 1024), min_size=4, max_size=4),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 8),
    )
    def test_smooth_streams_roundtrip_exactly(self, deltas, interval):
        """Streams whose per-packet jumps fit the diff range are lossless."""
        encoder, decoder = _paired_codecs(keyframe_interval=interval)
        current = np.array([0, 0, 0, 0], dtype=np.int64)
        for delta in deltas:
            step = np.clip(np.asarray(delta, dtype=np.int64), -256, 255)
            current = current + step
            decoded = decoder.decode(*encoder.encode(current))
            assert np.array_equal(decoded, current)

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.lists(st.integers(-30_000, 30_000), min_size=3, max_size=3),
            min_size=1,
            max_size=30,
        )
    )
    def test_arbitrary_streams_converge_at_keyframes(self, packets):
        """Whatever saturation does, every keyframe restores exactness."""
        encoder, decoder = _paired_codecs(keyframe_interval=4)
        for index, packet in enumerate(packets):
            x = np.asarray(packet, dtype=np.int64)
            decoded = decoder.decode(*encoder.encode(x))
            if index % 4 == 0:  # keyframe slots
                assert np.array_equal(decoded, x)

    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(
            st.lists(st.integers(-32_768, 32_767), min_size=2, max_size=2),
            min_size=2,
            max_size=30,
        )
    )
    def test_encoder_decoder_states_never_diverge(self, packets):
        """Closed-loop DPCM: both sides hold identical references."""
        encoder, decoder = _paired_codecs(keyframe_interval=100)
        for packet in packets:
            x = np.asarray(packet, dtype=np.int64)
            decoded = decoder.decode(*encoder.encode(x))
            assert np.array_equal(encoder._reference, decoder._reference)
            del decoded
