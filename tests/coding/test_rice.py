"""Tests for the Rice/Golomb coder (codebook-free alternative)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    BitReader,
    BitWriter,
    RiceCoder,
    optimal_rice_parameter,
    zigzag_decode,
    zigzag_encode,
)
from repro.coding.rice import rice_decode_value, rice_encode_value
from repro.errors import BitstreamError, DecodingError


class TestZigzag:
    def test_known_mapping(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    @given(st.integers(-(2**40), 2**40))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_decode_rejects_negative(self):
        with pytest.raises(DecodingError):
            zigzag_decode(-1)


class TestParameterEstimator:
    def test_zero_for_all_zero(self):
        assert optimal_rice_parameter([0, 0, 0]) == 0

    def test_grows_with_magnitude(self):
        small = optimal_rice_parameter([1, -1, 2, -2])
        large = optimal_rice_parameter([100, -100, 200, -200])
        assert large > small

    def test_clamped(self):
        assert optimal_rice_parameter([2**40]) <= 24

    def test_empty_rejected(self):
        with pytest.raises(BitstreamError):
            optimal_rice_parameter([])


class TestValueCodec:
    @pytest.mark.parametrize("k", [0, 1, 4, 8])
    def test_roundtrip_single(self, k):
        for value in (-17, -1, 0, 1, 42):
            writer = BitWriter()
            rice_encode_value(value, k, writer)
            reader = BitReader(writer.getvalue(), bit_length=len(writer))
            assert rice_decode_value(k, reader) == value

    def test_invalid_k(self):
        with pytest.raises(BitstreamError):
            rice_encode_value(1, 25, BitWriter())
        with pytest.raises(DecodingError):
            rice_decode_value(-1, BitReader(b"\x00"))

    def test_quotient_guard(self):
        with pytest.raises(BitstreamError):
            rice_encode_value(2**20, 0, BitWriter())

    def test_corrupt_unary_run_detected(self):
        reader = BitReader(b"\xff" * 600)
        with pytest.raises(DecodingError):
            rice_decode_value(0, reader)


class TestRiceCoder:
    def test_packet_roundtrip(self):
        coder = RiceCoder()
        values = [0, -3, 7, -120, 255, -256, 1]
        writer = coder.encode(values)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert coder.decode(reader, len(values)) == values

    def test_encoded_bits_matches_stream(self):
        coder = RiceCoder()
        values = list(range(-50, 51, 3))
        writer = coder.encode(values)
        assert coder.encoded_bits(values) == len(writer)

    def test_negative_count_rejected(self):
        coder = RiceCoder()
        with pytest.raises(DecodingError):
            coder.decode(BitReader(b"\x00"), -1)

    def test_competitive_with_huffman_on_laplacian(self):
        """Rice trades a little CR for zero codebook storage."""
        from repro.coding import train_codebook

        rng = np.random.default_rng(0)
        values = np.clip(
            np.round(rng.laplace(scale=12.0, size=4096)), -256, 255
        ).astype(int)
        codebook = train_codebook(list(values))
        writer = BitWriter()
        for value in values:
            codebook.code.encode_symbol(codebook.symbol_for(int(value)), writer)
        huffman_bits = len(writer)
        rice_bits = RiceCoder().encoded_bits(list(values))
        # within 15 % of the trained Huffman code on its own source
        assert rice_bits < huffman_bits * 1.15

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_roundtrip_property(self, values):
        coder = RiceCoder()
        writer = coder.encode(values)
        reader = BitReader(writer.getvalue(), bit_length=len(writer))
        assert coder.decode(reader, len(values)) == values
