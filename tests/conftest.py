"""Shared fixtures: small configurations and a session-scoped corpus.

Solver-heavy tests use a reduced packet size (N = 256) and a loose
tolerance so the whole suite stays fast; the benchmarks exercise the
paper-scale configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.ecg import SyntheticMitBih


@pytest.fixture(scope="session")
def paper_config() -> SystemConfig:
    """The paper's operating point (N=512, M=256, d=12)."""
    return SystemConfig()

@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """A fast configuration for solver-heavy unit tests."""
    return SystemConfig(
        n=256, m=128, d=8, levels=4, max_iterations=400, tolerance=1e-4
    )


@pytest.fixture(scope="session")
def database() -> SyntheticMitBih:
    """Short-record synthetic corpus shared across the session."""
    return SyntheticMitBih(duration_s=20.0, seed=2011)


@pytest.fixture(scope="session")
def record_100(database: SyntheticMitBih):
    """The canonical normal-sinus record."""
    return database.load("100")


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic per-test random generator."""
    return np.random.default_rng(12345)
