"""Serial-vs-batched equivalence for the batched decode engine.

The serial path is the reference implementation; these tests pin the
batched engine to it: bit-identical packets (the encoder stages are
integer-exact) and reconstructions/PRDs matching to solver
floating-point noise, across several records and a 2-lead stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EcgMonitorSystem, MultiChannelMonitor
from repro.core.batch import window_record
from repro.ecg.holter import HolterPlanner

#: three rhythm-diverse records from the synthetic corpus
EQUIVALENCE_RECORDS = ("100", "119", "201")


def _stream_pair(config, record, batch_size, max_packets=6, **kwargs):
    """Stream the same record serially and batched on fresh systems."""
    serial_system = EcgMonitorSystem(config)
    batched_system = EcgMonitorSystem(config)
    serial = serial_system.stream(record, max_packets=max_packets, **kwargs)
    batched = batched_system.stream(
        record, max_packets=max_packets, batch_size=batch_size, **kwargs
    )
    return serial_system, batched_system, serial, batched


class TestWindowRecord:
    def test_shapes_and_truncation(self):
        samples = np.arange(10)
        windows = window_record(samples, 4)
        assert windows.shape == (2, 4)
        np.testing.assert_array_equal(windows[1], [4, 5, 6, 7])

    def test_max_windows(self):
        windows = window_record(np.arange(32), 4, max_windows=3)
        assert windows.shape == (3, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_record(np.zeros((2, 2)), 2)
        with pytest.raises(ValueError):
            window_record(np.zeros(8), 0)


class TestStreamEquivalence:
    @pytest.mark.parametrize("name", EQUIVALENCE_RECORDS)
    def test_bit_exact_packets_and_prd(self, small_config, database, name):
        """Same packets bit for bit, same PRD to 1e-9, per record."""
        record = database.load(name)
        serial_system, batched_system, serial, batched = _stream_pair(
            small_config, record, batch_size=3
        )
        assert serial.num_packets == batched.num_packets
        # encoder stages are integer-exact: identical on-air bits
        assert (
            serial_system.encoder.stats.per_packet_bits
            == batched_system.encoder.stats.per_packet_bits
        )
        assert (
            serial_system.encoder.stats.saturated_symbols
            == batched_system.encoder.stats.saturated_symbols
        )
        for p_serial, p_batched in zip(serial.packets, batched.packets):
            assert p_serial.sequence == p_batched.sequence
            assert p_serial.is_keyframe == p_batched.is_keyframe
            assert p_serial.packet_bits == p_batched.packet_bits
            assert p_serial.iterations == p_batched.iterations
            assert p_serial.prd_percent == pytest.approx(
                p_batched.prd_percent, abs=1e-9
            )

    def test_reconstruction_matches(self, small_config, database):
        record = database.load("100")
        _, _, serial, batched = _stream_pair(
            small_config, record, batch_size=4, keep_signals=True
        )
        np.testing.assert_array_equal(
            serial.original_adu, batched.original_adu
        )
        np.testing.assert_allclose(
            serial.reconstructed_adu, batched.reconstructed_adu, atol=1e-7
        )

    def test_partial_final_chunk(self, small_config, database):
        """A batch size that does not divide the packet count."""
        record = database.load("100")
        _, _, serial, batched = _stream_pair(
            small_config, record, batch_size=4, max_packets=6
        )
        assert batched.num_packets == 6
        iterations_serial = [p.iterations for p in serial.packets]
        iterations_batched = [p.iterations for p in batched.packets]
        assert iterations_serial == iterations_batched

    def test_batch_size_one_is_serial_path(self, small_config, database):
        record = database.load("100")
        system = EcgMonitorSystem(small_config)
        result = system.stream(record, max_packets=2, batch_size=1)
        assert result.num_packets == 2

    def test_invalid_batch_size(self, small_config, database):
        system = EcgMonitorSystem(small_config)
        with pytest.raises(ValueError):
            system.stream(database.load("100"), batch_size=0)

    def test_too_short_record_rejected(self, small_config):
        from repro.ecg import SyntheticMitBih

        tiny = SyntheticMitBih(duration_s=0.5).load("100")
        system = EcgMonitorSystem(small_config)
        with pytest.raises(ValueError, match="record too short"):
            system.stream(tiny, batch_size=4)

    def test_max_packets_zero_names_actual_cause(
        self, small_config, database
    ):
        """A long-enough record with max_packets=0 must not claim the
        record is too short — the old message misnamed the cause."""
        system = EcgMonitorSystem(small_config)
        with pytest.raises(ValueError, match="max_packets=0") as excinfo:
            system.stream(database.load("100"), max_packets=0, batch_size=4)
        assert "record too short" not in str(excinfo.value)

    @pytest.mark.parametrize("batch_size", [None, 4])
    def test_negative_max_packets_rejected(
        self, small_config, database, batch_size
    ):
        """max_packets=-1 must raise, not silently truncate (batched)
        or return an empty stream (serial)."""
        system = EcgMonitorSystem(small_config)
        with pytest.raises(ValueError, match="max_packets=-1"):
            system.stream(
                database.load("100"), max_packets=-1, batch_size=batch_size
            )

    def test_calibrated_system_equivalence(self, small_config, database):
        """Equivalence must survive a trained codebook."""
        record = database.load("119")
        serial_system = EcgMonitorSystem(small_config)
        serial_system.calibrate(record)
        batched_system = EcgMonitorSystem(small_config)
        batched_system.calibrate(record)
        serial = serial_system.stream(record, max_packets=5)
        batched = batched_system.stream(record, max_packets=5, batch_size=5)
        assert [p.packet_bits for p in serial.packets] == [
            p.packet_bits for p in batched.packets
        ]
        for p_serial, p_batched in zip(serial.packets, batched.packets):
            assert p_serial.prd_percent == pytest.approx(
                p_batched.prd_percent, abs=1e-9
            )


class TestTwoLeadHolterStream:
    def test_2lead_equivalence(self, small_config, database):
        """Both MIT-BIH leads, serial vs batched, same packets + PRD."""
        record = database.load("100")
        serial_monitor = MultiChannelMonitor(small_config, channels=2)
        batched_monitor = MultiChannelMonitor(small_config, channels=2)
        serial = serial_monitor.stream(record, max_packets=4)
        batched = batched_monitor.stream(record, max_packets=4, batch_size=4)
        assert serial.num_channels == batched.num_channels == 2
        assert serial.total_bits == batched.total_bits
        for lead_serial, lead_batched in zip(
            serial.per_channel, batched.per_channel
        ):
            for p_serial, p_batched in zip(
                lead_serial.packets, lead_batched.packets
            ):
                assert p_serial.packet_bits == p_batched.packet_bits
                assert p_serial.iterations == p_batched.iterations
                assert p_serial.prd_percent == pytest.approx(
                    p_batched.prd_percent, abs=1e-9
                )

    def test_holter_plan_from_batched_stream(self, small_config, database):
        record = database.load("100")
        monitor = MultiChannelMonitor(small_config, channels=2)
        result = monitor.stream(record, max_packets=4, batch_size=4)
        planner = HolterPlanner(config=small_config)
        plan = planner.plan_from_stream(result, duration_hours=24.0)
        # two leads on the radio: mean bits is the sum of per-lead means
        expected = sum(
            sum(p.packet_bits for p in lead.packets) / lead.num_packets
            for lead in result.per_channel
        )
        assert plan.mean_packet_bits == pytest.approx(expected)
        assert plan.battery_hours > 0

    def test_holter_plan_rejects_empty_stream(self, small_config):
        from repro.core.system import StreamResult
        from repro.errors import ConfigurationError

        empty = StreamResult(record="x", channel=0, config=small_config)
        planner = HolterPlanner(config=small_config)
        with pytest.raises(ConfigurationError):
            planner.plan_from_stream(empty, duration_hours=1.0)


class TestDecoderBatchApi:
    def test_decode_batch_empty(self, small_config):
        system = EcgMonitorSystem(small_config)
        assert system.decoder.decode_batch([]) == []

    def test_warm_start_batch_carries_state(self, small_config, database):
        """Batched warm start: columns start from the pre-batch solution."""
        from repro.core.decoder import CSDecoder

        record = database.load("100")
        system = EcgMonitorSystem(small_config)
        samples = system._prepare_samples(record, 0)
        windows = window_record(samples, small_config.n, 4)
        packets = system.encoder.encode_batch(windows)
        decoder = CSDecoder(
            small_config, codebook=system.encoder.codebook, warm_start=True
        )
        first = decoder.decode_batch(packets[:2])
        assert decoder._previous_alpha is not None
        second = decoder.decode_batch(packets[2:])
        assert len(first) == len(second) == 2
