"""Tests for CSEncoder and CSDecoder (stage-by-stage and paired)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CSDecoder, CSEncoder, PacketKind
from repro.errors import ConfigurationError, DecodingError


@pytest.fixture(scope="module")
def pair(small_config):
    encoder = CSEncoder(small_config)
    decoder = CSDecoder(small_config, codebook=encoder.codebook)
    return encoder, decoder


@pytest.fixture()
def windows(database, small_config):
    from repro.ecg.resample import resample_record

    record = resample_record(database.load("100"), 256.0)
    samples = record.adc.digitize(record.channel(0))
    n = small_config.n
    return [samples[i * n : (i + 1) * n] for i in range(len(samples) // n)]


class TestEncoder:
    def test_first_packet_is_keyframe(self, pair, windows):
        encoder, _ = pair
        encoder.reset()
        packet = encoder.encode(windows[0])
        assert packet.kind is PacketKind.KEYFRAME

    def test_difference_packets_follow(self, pair, windows):
        encoder, _ = pair
        encoder.reset()
        encoder.encode(windows[0])
        packet = encoder.encode(windows[1])
        assert packet.kind is PacketKind.DIFFERENCE

    def test_keyframe_interval_respected(self, pair, windows):
        encoder, _ = pair
        encoder.reset()
        interval = encoder.config.keyframe_interval
        kinds = []
        for index in range(min(len(windows), interval + 2)):
            kinds.append(encoder.encode(windows[index % len(windows)]).kind)
        assert kinds[0] is PacketKind.KEYFRAME
        if len(kinds) > interval:
            assert kinds[interval] is PacketKind.KEYFRAME
        assert all(k is PacketKind.DIFFERENCE for k in kinds[1:interval])

    def test_difference_packets_are_smaller(self, pair, windows):
        encoder, _ = pair
        encoder.reset()
        keyframe = encoder.encode(windows[0])
        diff = encoder.encode(windows[1])
        assert diff.total_bits < keyframe.total_bits

    def test_compression_achieved(self, pair, windows, small_config):
        encoder, _ = pair
        encoder.reset()
        for window in windows[:6]:
            encoder.encode(window)
        assert encoder.stats.compression_ratio_percent > 30.0
        assert encoder.stats.packets == 6
        assert encoder.stats.keyframes == 1

    def test_wrong_window_length_rejected(self, pair):
        encoder, _ = pair
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(10, dtype=np.int64))

    def test_float_window_rejected(self, pair, small_config):
        encoder, _ = pair
        with pytest.raises(TypeError):
            encoder.encode(np.zeros(small_config.n))

    def test_sequence_numbers_increment(self, pair, windows):
        encoder, _ = pair
        encoder.reset()
        sequences = [encoder.encode(w).sequence for w in windows[:4]]
        assert sequences == [0, 1, 2, 3]

    def test_codebook_range_validated(self, small_config):
        from repro.coding import train_codebook

        narrow = train_codebook(num_symbols=64, offset=-32)
        with pytest.raises(ConfigurationError):
            CSEncoder(small_config, codebook=narrow)

    def test_offline_training_improves_or_matches_default(
        self, small_config, windows
    ):
        default = CSEncoder(small_config)
        default.reset()
        for window in windows[:8]:
            default.encode(window)
        trained = CSEncoder(small_config)
        trained.train_codebook_on(windows[:8])
        trained.reset()
        for window in windows[:8]:
            trained.encode(window)
        # the tiny calibration corpus (a few hundred symbols over a
        # 512-symbol alphabet) can land slightly above the shipped
        # Laplacian default, but must stay in the same ballpark
        assert trained.stats.output_bits <= default.stats.output_bits * 1.15

    def test_training_needs_difference_symbols(self, small_config, windows):
        encoder = CSEncoder(small_config)
        with pytest.raises(ConfigurationError):
            encoder.train_codebook_on(windows[:1])  # only a keyframe


class TestPacketPayloadDecoder:
    """The operator-free stages 1-2 split used by fleet workers."""

    def test_matches_full_decoder_payloads(self, small_config, windows):
        from repro.core import PacketPayloadDecoder

        encoder = CSEncoder(small_config)
        encoder.reset()
        packets = [encoder.encode(w) for w in windows[:5]]
        standalone = PacketPayloadDecoder(
            small_config, codebook=encoder.codebook
        )
        full = CSDecoder(small_config, codebook=encoder.codebook)
        block = standalone.measurement_block(packets, np.float64)
        assert block.shape == (small_config.m, 5)
        for column, packet in enumerate(packets):
            decoded = full.decode(packet)
            np.testing.assert_allclose(decoded.measurements, block[:, column])

    def test_decoder_aliases_delegate(self, small_config):
        from repro.coding import train_codebook
        from repro.core import MeasurementQuantizer

        decoder = CSDecoder(small_config)
        assert decoder.codebook is decoder.payload.codebook
        assert decoder.codec is decoder.payload.codec
        assert decoder.quantizer is decoder.payload.quantizer
        replacement = train_codebook()
        decoder.codebook = replacement
        assert decoder.payload.codebook is replacement
        shifted = MeasurementQuantizer(shift=3, d=small_config.d)
        decoder.quantizer = shifted
        assert decoder.payload.quantizer is shifted

    def test_m_mismatch_detected(self, small_config):
        from repro.core import PacketPayloadDecoder

        other = small_config.replace(m=small_config.m // 2)
        encoder = CSEncoder(other)
        encoder.reset()
        packet = encoder.encode(np.zeros(other.n, dtype=np.int64))
        standalone = PacketPayloadDecoder(small_config)
        with pytest.raises(DecodingError):
            standalone.decode_payload(packet)


class TestDecoder:
    def test_invalid_precision_rejected(self, small_config):
        with pytest.raises(ConfigurationError):
            CSDecoder(small_config, precision="float16")

    def test_measurements_recovered_exactly(self, pair, windows):
        """Stages 1-2 are lossless: decoder sees the encoder's y_q."""
        encoder, decoder = pair
        encoder.reset()
        decoder.reset()
        for window in windows[:5]:
            y_q = encoder.measure(window)
            # the codec state advances inside encode(); replicate order
            packet = encoder.encode(window)
            decoded = decoder.decode(packet)
            expected = decoder.quantizer.dequantize(y_q)
            # note: encoder.measure was called twice (measure + encode),
            # so compare against the decoder's reconstruction instead
            assert np.allclose(
                decoded.measurements, expected, atol=decoder.quantizer.step
            )

    def test_m_mismatch_detected(self, small_config, pair):
        encoder, _ = pair
        encoder.reset()
        other = CSDecoder(
            small_config.replace(m=small_config.m // 2),
        )
        packet = encoder.encode(
            np.zeros(small_config.n, dtype=np.int64) + 1024
        )
        with pytest.raises(DecodingError):
            other.decode(packet)

    def test_difference_before_keyframe_rejected(self, pair, windows):
        encoder, _ = pair
        encoder.reset()
        encoder.encode(windows[0])
        diff_packet = encoder.encode(windows[1])
        fresh = CSDecoder(encoder.config, codebook=encoder.codebook)
        with pytest.raises(DecodingError):
            fresh.decode(diff_packet)

    def test_decode_bytes_roundtrip(self, pair, windows):
        encoder, decoder = pair
        encoder.reset()
        decoder.reset()
        packet = encoder.encode(windows[0])
        decoded = decoder.decode_bytes(packet.to_bytes())
        assert decoded.sequence == packet.sequence

    def test_lipschitz_precomputed_and_positive(self, pair):
        _, decoder = pair
        assert decoder.lipschitz > 0.0

    def test_reconstruction_quality(self, pair, windows, small_config):
        encoder, decoder = pair
        encoder.reset()
        decoder.reset()
        prds = []
        for window in windows[:5]:
            packet = encoder.encode(window)
            decoded = decoder.decode(packet)
            original = window.astype(np.float64) - 1024
            reconstructed = decoded.samples_adu - 1024
            prds.append(
                np.linalg.norm(original - reconstructed)
                / np.linalg.norm(original)
            )
        assert np.mean(prds) < 0.35

    def test_float32_decoder_matches_float64(self, small_config, windows):
        encoder = CSEncoder(small_config)
        d64 = CSDecoder(small_config, codebook=encoder.codebook, precision="float64")
        d32 = CSDecoder(small_config, codebook=encoder.codebook, precision="float32")
        encoder.reset()
        packet = encoder.encode(windows[0])
        r64 = d64.decode(packet)
        r32 = d32.decode(packet)
        scale = np.linalg.norm(r64.samples_adu - 1024)
        gap = np.linalg.norm(r64.samples_adu - r32.samples_adu)
        assert gap / scale < 0.02

    def test_warm_start_mode(self, small_config, windows):
        encoder = CSEncoder(small_config)
        warm = CSDecoder(
            small_config, codebook=encoder.codebook, warm_start=True
        )
        encoder.reset()
        first = warm.decode(encoder.encode(windows[0]))
        second = warm.decode(encoder.encode(windows[1]))
        # warm start should not need more iterations than a cold first solve
        assert second.iterations <= first.iterations * 1.5


class TestSaturationAccounting:
    """Regression: rail-valued differences are representable symbols —
    only values *strictly* outside the rails count as saturated."""

    @pytest.fixture()
    def rail_setup(self):
        from collections import Counter

        from repro.config import SystemConfig

        # d=1 makes the measurement directly controllable: each sample
        # column feeds exactly one measurement row
        config = SystemConfig(n=64, m=16, d=1, levels=3)
        encoder = CSEncoder(config)
        rows = encoder.matrix.rows_per_column[:, 0]
        row, count = Counter(rows.tolist()).most_common(1)[0]
        assert count >= 4
        columns = np.flatnonzero(rows == row)[:4]
        base = 1 << (config.adc_bits - 1)
        return encoder, columns, base

    def test_rail_exact_diff_not_counted(self, rail_setup):
        encoder, columns, base = rail_setup
        flat = np.full(encoder.config.n, base, dtype=np.int64)
        jump = flat.copy()
        # 4 columns at +1020 centered: the target row's quantized diff
        # is exactly 4080/16 = 255 — the positive rail, representable
        jump[columns] = base + 1020
        encoder.encode(flat)  # keyframe
        encoder.encode(jump)  # rail-exact difference
        assert encoder.stats.total_symbols == encoder.config.m
        assert encoder.stats.saturated_symbols == 0
        assert encoder.stats.saturation_fraction == 0.0

    def test_true_clipping_still_counted(self, rail_setup):
        encoder, columns, base = rail_setup
        flat = np.full(encoder.config.n, base, dtype=np.int64)
        up = flat.copy()
        up[columns] = base + 1020
        down = flat.copy()
        down[columns] = base - 1020
        encoder.encode(flat)  # keyframe
        encoder.encode(up)    # +255, exactly at the rail
        encoder.encode(down)  # raw diff -510 < -256: genuinely clipped
        assert encoder.stats.saturated_symbols == 1
        assert encoder.stats.saturation_fraction == pytest.approx(
            1 / (2 * encoder.config.m)
        )


class TestEncodeBatch:
    def test_bit_exact_vs_serial(self, small_config, windows):
        serial = CSEncoder(small_config)
        batched = CSEncoder(small_config)
        block = np.stack(windows[:6])
        serial_packets = [serial.encode(w) for w in block]
        batched_packets = batched.encode_batch(block)
        assert len(serial_packets) == len(batched_packets)
        for p_serial, p_batched in zip(serial_packets, batched_packets):
            assert p_serial.to_bytes() == p_batched.to_bytes()
        assert serial.stats.per_packet_bits == batched.stats.per_packet_bits
        assert serial.stats.saturated_symbols == batched.stats.saturated_symbols
        assert serial.stats.total_symbols == batched.stats.total_symbols
        assert serial.stats.keyframes == batched.stats.keyframes

    def test_measure_batch_matches_measure(self, small_config, windows):
        encoder = CSEncoder(small_config)
        block = np.stack(windows[:4])
        batch = encoder.measure_batch(block)
        for index in range(block.shape[0]):
            np.testing.assert_array_equal(
                batch[index], encoder.measure(block[index])
            )

    def test_measure_batch_validates_shape(self, small_config):
        encoder = CSEncoder(small_config)
        with pytest.raises(ValueError):
            encoder.measure_batch(np.zeros((2, 3), dtype=np.int64))
