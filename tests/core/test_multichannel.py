"""Tests for the multi-lead monitor extension."""

from __future__ import annotations

import pytest

from repro.core import MultiChannelMonitor
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def monitor(small_config):
    return MultiChannelMonitor(small_config, channels=2)


class TestMultiChannel:
    def test_channel_count(self, monitor):
        assert monitor.num_channels == 2

    def test_invalid_channel_count(self, small_config):
        with pytest.raises(ConfigurationError):
            MultiChannelMonitor(small_config, channels=0)

    def test_per_lead_seeds_differ(self, monitor):
        matrices = [
            system.encoder.matrix.rows_per_column
            for system in monitor.systems
        ]
        assert not (matrices[0] == matrices[1]).all()

    def test_stream_both_leads(self, monitor, database):
        result = monitor.stream(database.load("100"), max_packets=3)
        assert result.num_channels == 2
        assert all(r.num_packets == 3 for r in result.per_channel)

    def test_aggregate_metrics(self, monitor, database):
        result = monitor.stream(database.load("100"), max_packets=3)
        assert 0.0 < result.compression_ratio_percent < 100.0
        assert result.worst_channel_prd_percent >= max(
            r.mean_prd_percent for r in result.per_channel
        ) - 1e-9
        assert result.total_bits == sum(
            sum(p.packet_bits for p in r.packets) for r in result.per_channel
        )
        assert result.mean_iterations > 0
        assert result.bits_per_second() > 0.0

    def test_calibrate_trains_each_lead(self, small_config, database):
        monitor = MultiChannelMonitor(small_config, channels=2)
        record = database.load("106")
        monitor.calibrate(record)
        books = [system.encoder.codebook for system in monitor.systems]
        # per-lead training yields per-lead codebooks
        assert books[0] is not books[1]

    def test_record_with_too_few_channels_rejected(self, small_config):
        import numpy as np

        from repro.ecg.records import Record

        single = Record(
            name="mono",
            fs_hz=256.0,
            signals_mv=np.zeros((1, 2048)),
        )
        monitor = MultiChannelMonitor(small_config, channels=2)
        with pytest.raises(ConfigurationError):
            monitor.stream(single)

    def test_radio_rate_doubles_with_leads(self, small_config, database):
        record = database.load("100")
        mono = MultiChannelMonitor(small_config, channels=1)
        stereo = MultiChannelMonitor(small_config, channels=2)
        r1 = mono.stream(record, max_packets=3)
        r2 = stereo.stream(record, max_packets=3)
        assert r2.total_bits > 1.5 * r1.total_bits

    def test_bits_per_second_uses_stream_duration(
        self, small_config, database
    ):
        """Unequal per-lead packet counts: the rate is total bits over
        the *longest* lead's duration, not the mean (the old code's mean
        denominator overstated the sustained radio rate)."""
        from repro.core import MultiChannelResult

        monitor = MultiChannelMonitor(small_config, channels=2)
        record = database.load("100")
        long_lead = monitor.systems[0].stream(record, channel=0, max_packets=4)
        short_lead = monitor.systems[1].stream(record, channel=1, max_packets=2)
        result = MultiChannelResult(per_channel=[long_lead, short_lead])

        true_duration = small_config.packet_seconds * 4  # max over leads
        expected = result.total_bits / true_duration
        assert result.bits_per_second() == pytest.approx(expected)
        # the old mean-duration accounting reported a strictly higher rate
        mean_duration = small_config.packet_seconds * (4 + 2) / 2
        assert result.bits_per_second() < result.total_bits / mean_duration

    def test_bits_per_second_empty_result_is_zero(self):
        from repro.core import MultiChannelResult

        assert MultiChannelResult().bits_per_second() == 0.0
