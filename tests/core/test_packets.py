"""Tests for the on-air packet format and CRC."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EncodedPacket, PacketKind, crc16_ccitt
from repro.core.packets import (
    HEADER_BYTES,
    pack_keyframe_values,
    unpack_keyframe_values,
)
from repro.errors import PacketFormatError


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_detects_single_bit_flip(self):
        data = bytes(range(32))
        base = crc16_ccitt(data)
        corrupted = bytearray(data)
        corrupted[5] ^= 0x10
        assert crc16_ccitt(bytes(corrupted)) != base


class TestPacketRoundtrip:
    def _packet(self, kind=PacketKind.DIFFERENCE, payload=b"\xde\xad", bits=16):
        return EncodedPacket(
            kind=kind, sequence=7, m=256, payload=payload, payload_bits=bits
        )

    def test_roundtrip(self):
        packet = self._packet()
        parsed = EncodedPacket.from_bytes(packet.to_bytes())
        assert parsed == packet

    def test_total_bits_accounting(self):
        packet = self._packet(payload=b"abc", bits=20)
        assert packet.total_bits == 8 * (HEADER_BYTES + 3 + 2)

    def test_sync_byte_checked(self):
        wire = bytearray(self._packet().to_bytes())
        wire[0] = 0x00
        with pytest.raises(PacketFormatError):
            EncodedPacket.from_bytes(bytes(wire))

    def test_crc_corruption_detected(self):
        wire = bytearray(self._packet().to_bytes())
        wire[-3] ^= 0x01  # flip payload bit
        with pytest.raises(PacketFormatError):
            EncodedPacket.from_bytes(bytes(wire))

    def test_truncation_detected(self):
        wire = self._packet().to_bytes()
        with pytest.raises(PacketFormatError):
            EncodedPacket.from_bytes(wire[:-1])

    def test_unknown_kind_detected(self):
        wire = bytearray(self._packet().to_bytes())
        wire[1] = 99
        with pytest.raises(PacketFormatError):
            EncodedPacket.from_bytes(bytes(wire))

    def test_too_short_buffer(self):
        with pytest.raises(PacketFormatError):
            EncodedPacket.from_bytes(b"\xa5\x01")

    def test_invalid_fields_rejected_at_construction(self):
        with pytest.raises(PacketFormatError):
            EncodedPacket(PacketKind.KEYFRAME, -1, 256, b"", 0)
        with pytest.raises(PacketFormatError):
            EncodedPacket(PacketKind.KEYFRAME, 0, 0, b"", 0)
        with pytest.raises(PacketFormatError):
            EncodedPacket(PacketKind.KEYFRAME, 0, 256, b"", 9)

    @settings(max_examples=30)
    @given(
        st.sampled_from(list(PacketKind)),
        st.integers(0, 65535),
        st.integers(1, 1024),
        st.binary(min_size=0, max_size=200),
    )
    def test_roundtrip_property(self, kind, sequence, m, payload):
        packet = EncodedPacket(
            kind=kind,
            sequence=sequence,
            m=m,
            payload=payload,
            payload_bits=8 * len(payload),
        )
        assert EncodedPacket.from_bytes(packet.to_bytes()) == packet


class TestKeyframePayload:
    def test_roundtrip(self):
        values = np.array([-32768, -1, 0, 1, 32767], dtype=np.int64)
        payload, bits = pack_keyframe_values(values)
        assert bits == 16 * 5
        assert np.array_equal(unpack_keyframe_values(payload, 5), values)

    def test_overflow_rejected(self):
        with pytest.raises(PacketFormatError):
            pack_keyframe_values(np.array([32768]))

    def test_short_payload_rejected(self):
        with pytest.raises(PacketFormatError):
            unpack_keyframe_values(b"\x00\x01", 2)

    @settings(max_examples=30)
    @given(st.lists(st.integers(-32768, 32767), max_size=64))
    def test_roundtrip_property(self, values):
        array = np.asarray(values, dtype=np.int64)
        payload, _ = pack_keyframe_values(array)
        assert np.array_equal(
            unpack_keyframe_values(payload, len(values)), array
        )
