"""Property-based end-to-end invariants of the encoder/decoder pair."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core import CSDecoder, CSEncoder, EncodedPacket


@pytest.fixture(scope="module")
def tiny_config():
    """Smallest sensible system for fast property exploration."""
    return SystemConfig(
        n=128, m=64, d=6, levels=3, max_iterations=30, tolerance=1e-3,
        keyframe_interval=3,
    )


@pytest.fixture(scope="module")
def tiny_pair(tiny_config):
    encoder = CSEncoder(tiny_config)
    decoder = CSDecoder(tiny_config, codebook=encoder.codebook)
    return encoder, decoder


class TestWireInvariants:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.integers(0, 2047), min_size=128, max_size=128))
    def test_any_adu_window_produces_valid_wire_packet(
        self, tiny_pair, values
    ):
        """Whatever 11-bit samples arrive, the wire packet round-trips."""
        encoder, _ = tiny_pair
        encoder.reset()
        window = np.asarray(values, dtype=np.int64)
        packet = encoder.encode(window)
        parsed = EncodedPacket.from_bytes(packet.to_bytes())
        assert parsed == packet

    @settings(deadline=None, max_examples=15)
    @given(
        st.lists(
            st.lists(st.integers(0, 2047), min_size=128, max_size=128),
            min_size=2,
            max_size=5,
        )
    )
    def test_measurement_path_is_lossless_modulo_quantizer(
        self, tiny_config, windows
    ):
        """Stages 1-2 (sensing + diff + Huffman) reconstruct the encoder's
        quantized measurements exactly for arbitrary input streams."""
        encoder = CSEncoder(tiny_config)
        decoder = CSDecoder(tiny_config, codebook=encoder.codebook)
        encoder.reset()
        decoder.reset()
        reference_codec_state = None
        for values in windows:
            window = np.asarray(values, dtype=np.int64)
            packet = encoder.encode(window)
            y_q_decoder = decoder._decode_payload(packet)
            # both sides must hold identical DPCM references afterwards
            assert np.array_equal(
                encoder.codec._reference, decoder.codec._reference
            )
            del reference_codec_state
            reference_codec_state = y_q_decoder

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 2**32 - 1))
    def test_matching_seeds_round_trip_any_seed(self, tiny_config, seed):
        """Encoder/decoder agree for every shared sensing seed."""
        config = tiny_config.replace(seed=seed)
        encoder = CSEncoder(config)
        decoder = CSDecoder(config, codebook=encoder.codebook)
        window = np.full(config.n, 1024, dtype=np.int64)
        window[:: config.n // 8] += 100
        decoded = decoder.decode(encoder.encode(window))
        assert np.all(np.isfinite(decoded.samples_adu))


class TestStreamInvariants:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(1, 12))
    def test_keyframe_cadence_any_stream_length(self, tiny_config, count):
        encoder = CSEncoder(tiny_config)
        encoder.reset()
        window = np.full(tiny_config.n, 1024, dtype=np.int64)
        kinds = [encoder.encode(window).kind.name for _ in range(count)]
        for index, kind in enumerate(kinds):
            expected = (
                "KEYFRAME"
                if index % tiny_config.keyframe_interval == 0
                else "DIFFERENCE"
            )
            assert kind == expected

    @settings(deadline=None, max_examples=10)
    @given(st.lists(st.integers(900, 1100), min_size=128, max_size=128))
    def test_compression_never_negative_for_smooth_streams(
        self, tiny_config, values
    ):
        """Near-constant physiological streams always compress."""
        encoder = CSEncoder(tiny_config)
        encoder.reset()
        window = np.asarray(values, dtype=np.int64)
        encoder.encode(window)  # keyframe
        packet = encoder.encode(window)  # identical content -> tiny diff
        assert packet.total_bits < tiny_config.original_packet_bits
