"""Tests for the measurement shift quantizer."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MeasurementQuantizer
from repro.errors import ConfigurationError


class TestQuantize:
    def test_shift_zero_is_identity(self):
        q = MeasurementQuantizer(shift=0, d=12)
        y = np.array([-5, 0, 7], dtype=np.int64)
        assert np.array_equal(q.quantize(y), y)

    def test_rounding_half_away(self):
        q = MeasurementQuantizer(shift=4, d=1)  # step 16
        assert q.quantize(np.array([8]))[0] == 1  # 8+8=16 >> 4
        assert q.quantize(np.array([7]))[0] == 0
        assert q.quantize(np.array([-8]))[0] == -1
        assert q.quantize(np.array([-7]))[0] == 0

    def test_symmetric_in_sign(self):
        q = MeasurementQuantizer(shift=3, d=4)
        y = np.arange(-100, 101, dtype=np.int64)
        assert np.array_equal(q.quantize(y), -q.quantize(-y))

    def test_rejects_float_input(self):
        q = MeasurementQuantizer()
        with pytest.raises(TypeError):
            q.quantize(np.array([1.5]))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            MeasurementQuantizer(shift=-1)
        with pytest.raises(ConfigurationError):
            MeasurementQuantizer(shift=13)
        with pytest.raises(ConfigurationError):
            MeasurementQuantizer(d=0)

    def test_step_property(self):
        assert MeasurementQuantizer(shift=4).step == 16


class TestDequantize:
    def test_scale_includes_sqrt_d(self):
        q = MeasurementQuantizer(shift=4, d=16)
        out = q.dequantize(np.array([1]))
        assert out[0] == pytest.approx(16.0 / 4.0)

    def test_roundtrip_error_bounded_by_half_step(self):
        q = MeasurementQuantizer(shift=4, d=9)
        y_int = np.arange(-5000, 5000, 37, dtype=np.int64)
        recovered = q.dequantize(q.quantize(y_int)) * math.sqrt(9)
        assert np.max(np.abs(recovered - y_int)) <= q.step / 2

    def test_noise_std_formula(self):
        q = MeasurementQuantizer(shift=4, d=12)
        assert q.noise_std() == pytest.approx(16.0 / math.sqrt(12.0 * 12.0))

    @settings(max_examples=40)
    @given(st.integers(0, 8), st.integers(1, 24), st.integers(-100000, 100000))
    def test_quantization_error_bound_property(self, shift, d, value):
        q = MeasurementQuantizer(shift=shift, d=d)
        y = np.array([value], dtype=np.int64)
        recovered = q.dequantize(q.quantize(y)) * math.sqrt(d)
        assert abs(recovered[0] - value) <= q.step / 2 + 1e-9


class TestDefaultShiftChoice:
    def test_diffs_fit_codebook_range_on_corpus(self, database):
        """The shift=4 default keeps quantized inter-packet diffs inside
        [-256, 255] for essentially all entries at the paper's operating
        point (the property the codebook sizing relies on)."""
        from repro.ecg.resample import resample_record
        from repro.sensing import SparseBinaryMatrix

        q = MeasurementQuantizer(shift=4, d=12)
        phi = SparseBinaryMatrix(256, 512, d=12, seed=2011)
        total, saturated = 0, 0
        for name in ("100", "119", "201"):
            record = resample_record(database.load(name), 256.0)
            x = record.adc.digitize(record.channel(0)) - 1024
            windows = len(x) // 512
            previous = None
            for index in range(windows):
                y_q = q.quantize(
                    phi.measure_integer(x[index * 512 : (index + 1) * 512])
                )
                if previous is not None:
                    diff = y_q - previous
                    total += len(diff)
                    saturated += int(
                        np.count_nonzero((diff < -256) | (diff > 255))
                    )
                previous = y_q
        assert total > 0
        assert saturated / total < 0.01
