"""Tests for the end-to-end EcgMonitorSystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EcgMonitorSystem


@pytest.fixture(scope="module")
def system(small_config):
    return EcgMonitorSystem(small_config)


class TestStreaming:
    def test_stream_produces_packets(self, system, database):
        result = system.stream(database.load("100"), max_packets=4)
        assert result.num_packets == 4
        assert result.record == "100"

    def test_metrics_populated(self, system, database):
        result = system.stream(database.load("100"), max_packets=4)
        assert 0.0 < result.compression_ratio_percent < 100.0
        assert result.mean_prd_percent > 0.0
        assert result.mean_snr_db > 0.0
        assert result.mean_iterations > 10
        assert result.mean_decode_seconds > 0.0

    def test_first_packet_flagged_keyframe(self, system, database):
        result = system.stream(database.load("100"), max_packets=3)
        assert result.packets[0].is_keyframe
        assert not result.packets[1].is_keyframe

    def test_keep_signals(self, system, database, small_config):
        result = system.stream(
            database.load("100"), max_packets=3, keep_signals=True
        )
        assert result.original_adu is not None
        assert len(result.original_adu) == 3 * small_config.n
        assert len(result.reconstructed_adu) == 3 * small_config.n
        assert result.whole_signal_prd() < 50.0

    def test_whole_signal_prd_requires_signals(self, system, database):
        result = system.stream(database.load("100"), max_packets=2)
        with pytest.raises(ValueError):
            result.whole_signal_prd()

    def test_too_short_record_rejected(self, system):
        from repro.ecg import SyntheticMitBih

        tiny = SyntheticMitBih(duration_s=0.5).load("100")
        with pytest.raises(ValueError):
            system.stream(tiny)

    def test_channel_selection(self, system, database):
        r0 = system.stream(database.load("100"), channel=0, max_packets=2)
        r1 = system.stream(database.load("100"), channel=1, max_packets=2)
        assert r0.mean_prd_percent != r1.mean_prd_percent

    def test_native_rate_record_skips_resampling(self, system, small_config):
        """A record already at 256 Hz streams without conversion."""
        from repro.ecg import SyntheticMitBih

        record = SyntheticMitBih(duration_s=10.0, fs_hz=256.0).load("100")
        result = system.stream(record, max_packets=2)
        assert result.num_packets == 2


class TestEmptyStreamGuards:
    """Regression: zero-packet streams must raise, not return nan."""

    @pytest.fixture()
    def empty_result(self, small_config):
        from repro.core import StreamResult

        return StreamResult(record="100", channel=0, config=small_config)

    @pytest.mark.parametrize(
        "metric",
        [
            "compression_ratio_percent",
            "mean_prd_percent",
            "mean_snr_db",
            "mean_iterations",
            "mean_decode_seconds",
        ],
    )
    def test_metrics_raise_on_zero_packets(self, empty_result, metric):
        with pytest.raises(ValueError, match="zero packets"):
            getattr(empty_result, metric)

    def test_no_runtime_warning_raised(self, empty_result, recwarn):
        with pytest.raises(ValueError):
            empty_result.mean_prd_percent
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]

    def test_num_packets_still_zero(self, empty_result):
        assert empty_result.num_packets == 0


class TestCalibration:
    def test_calibrate_syncs_codebooks(self, small_config, database):
        system = EcgMonitorSystem(small_config)
        system.calibrate(database.load("100"))
        assert system.encoder.codebook is system.decoder.codebook

    def test_calibration_helps_compression(self, small_config, database):
        record = database.load("106")
        fresh = EcgMonitorSystem(small_config)
        baseline = fresh.stream(record, max_packets=5).compression_ratio_percent
        calibrated_system = EcgMonitorSystem(small_config)
        calibrated_system.calibrate(record)
        calibrated = calibrated_system.stream(
            record, max_packets=5
        ).compression_ratio_percent
        assert calibrated >= baseline - 1.0


class TestRoundtripWindow:
    def test_quickstart_helper(self, system, database, small_config):
        from repro.ecg.resample import resample_record

        record = resample_record(database.load("100"), 256.0)
        window = record.adc.digitize(record.channel(0))[: small_config.n]
        packet, reconstruction = system.roundtrip_window(window)
        assert packet.total_bits < small_config.original_packet_bits
        assert len(reconstruction) == small_config.n

    def test_cr_increases_with_smaller_m(self, small_config, database):
        """Fewer measurements -> higher CR, lower SNR (the Fig 2/6 axis)."""
        record = database.load("100")
        tight = EcgMonitorSystem(small_config.replace(m=small_config.m // 2))
        loose = EcgMonitorSystem(small_config)
        r_tight = tight.stream(record, max_packets=4)
        r_loose = loose.stream(record, max_packets=4)
        assert (
            r_tight.compression_ratio_percent
            > r_loose.compression_ratio_percent
        )
        assert r_tight.mean_snr_db < r_loose.mean_snr_db
