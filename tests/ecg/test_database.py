"""Tests for the 48-record synthetic corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import RECORD_NAMES, SyntheticMitBih
from repro.ecg.qrs import beat_match_rate, detect_qrs


class TestCorpusStructure:
    def test_48_records(self):
        assert len(RECORD_NAMES) == 48

    def test_names_match_real_mitbih(self):
        # spot checks against the PhysioNet listing
        for name in ("100", "108", "119", "201", "217", "234"):
            assert name in RECORD_NAMES
        assert "110" not in RECORD_NAMES  # does not exist in MIT-BIH
        assert "216" not in RECORD_NAMES

    def test_record_format(self, database):
        record = database.load("100")
        assert record.fs_hz == 360.0
        assert record.num_channels == 2
        assert record.adc.bits == 11
        assert record.adc.range_mv == 10.0
        assert record.num_samples == int(20.0 * 360.0)

    def test_unknown_record_rejected(self, database):
        with pytest.raises(KeyError):
            database.load("999")

    def test_caching_returns_same_object(self, database):
        assert database.load("100") is database.load("100")

    def test_clear_cache(self):
        db = SyntheticMitBih(duration_s=5.0)
        first = db.load("100")
        db.clear_cache()
        assert db.load("100") is not first

    def test_deterministic_across_instances(self):
        a = SyntheticMitBih(duration_s=5.0, seed=1).load("100")
        b = SyntheticMitBih(duration_s=5.0, seed=1).load("100")
        assert np.array_equal(a.signals_mv, b.signals_mv)

    def test_seed_changes_signals(self):
        a = SyntheticMitBih(duration_s=5.0, seed=1).load("100")
        b = SyntheticMitBih(duration_s=5.0, seed=2).load("100")
        assert not np.array_equal(a.signals_mv, b.signals_mv)

    def test_records_differ_from_each_other(self, database):
        a = database.load("100")
        b = database.load("101")
        assert not np.array_equal(a.signals_mv, b.signals_mv)

    def test_subset_deterministic_and_unique(self, database):
        subset = database.subset(6)
        assert len(subset) == 6
        assert len(set(subset)) == 6
        assert subset == database.subset(6)

    def test_subset_validation(self, database):
        with pytest.raises(ValueError):
            database.subset(0)


class TestRhythmAssignments:
    def test_paced_records(self, database):
        for name in ("102", "104", "107", "217"):
            assert database.load(name).rhythm == "paced"

    def test_afib_records(self, database):
        assert database.load("201").rhythm == "atrial-fibrillation"

    def test_bigeminy_record(self, database):
        assert database.load("119").rhythm == "bigeminy"

    def test_normal_record(self, database):
        assert database.load("100").rhythm == "normal-sinus"

    def test_pvc_record_has_v_annotations(self, database):
        record = database.load("233")
        symbols = {a.symbol for a in record.annotations}
        assert "V" in symbols

    def test_annotations_within_record(self, database):
        record = database.load("119")
        samples = record.beat_samples()
        assert samples.min() >= 0
        assert samples.max() < record.num_samples


class TestSignalQuality:
    @pytest.mark.parametrize("name", ["100", "102", "106", "201", "209"])
    def test_qrs_detector_finds_annotated_beats(self, database, name):
        record = database.load(name)
        detected = detect_qrs(record.channel(0), record.fs_hz)
        rate = beat_match_rate(record.beat_samples(), detected, record.fs_hz)
        assert rate > 0.9

    def test_amplitudes_physiological(self, database):
        record = database.load("100")
        peak = np.max(np.abs(record.signals_mv))
        assert 0.5 < peak < 5.0  # mV range of surface ECG

    def test_signals_fit_adc_range(self, database):
        for name in ("100", "203", "228"):
            record = database.load(name)
            adu = record.digitized(0)
            assert adu.min() > 0 and adu.max() < 2047  # no rail clipping
