"""Tests for the Holter session planner."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.ecg import HolterPlanner
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def planner():
    return HolterPlanner(config=SystemConfig())


class TestHolterPlanner:
    def test_compressed_beats_uncompressed(self, planner):
        raw = planner.plan_uncompressed(24.0)
        compressed = planner.plan(24.0, raw.mean_packet_bits * 0.5)
        assert compressed.battery_hours > raw.battery_hours
        assert compressed.data_volume_mb < raw.data_volume_mb
        assert compressed.lifetime_extension_percent == pytest.approx(
            12.9, abs=0.1
        )

    def test_battery_limited_flag(self, planner):
        raw = planner.plan_uncompressed(24.0)
        short = planner.plan_uncompressed(raw.battery_hours / 2.0)
        long = planner.plan_uncompressed(raw.battery_hours * 2.0)
        assert not short.battery_limited
        assert long.battery_limited

    def test_data_volume_accounting(self, planner):
        plan = planner.plan(2.0, 3072.0)
        # 2 h = 3600 packets of 3072 bits = 1.3824 MB
        assert plan.data_volume_mb == pytest.approx(1.3824, rel=1e-6)

    def test_holter_sessions_fit_sd_card(self, planner):
        """A 5-day compressed session fits the Shimmer's 2 GB card."""
        plan = planner.plan(5 * 24.0, 3072.0)
        assert planner.fits_sd_card(plan)

    def test_max_session_days_consistent(self, planner):
        days = planner.max_session_days(3072.0)
        plan = planner.plan(24.0, 3072.0)
        assert days == pytest.approx(plan.battery_days)

    def test_battery_days_property(self, planner):
        plan = planner.plan(24.0, 3072.0)
        assert plan.battery_days == pytest.approx(plan.battery_hours / 24.0)

    def test_validation(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan(0.0, 100.0)
        with pytest.raises(ConfigurationError):
            planner.plan(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            planner.plan_uncompressed(0.0)

    def test_more_compression_more_days(self, planner):
        aggressive = planner.max_session_days(1024.0)
        mild = planner.max_session_days(4096.0)
        assert aggressive > mild
