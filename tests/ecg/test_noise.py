"""Tests for the ambulatory noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import NoiseModel, NoiseRecipe


class TestRecipe:
    def test_defaults_valid(self):
        recipe = NoiseRecipe()
        assert recipe.baseline_wander_mv > 0

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            NoiseRecipe(baseline_wander_mv=-0.1)
        with pytest.raises(ValueError):
            NoiseRecipe(muscle_mv=-0.1)

    def test_invalid_powerline_frequency(self):
        with pytest.raises(ValueError):
            NoiseRecipe(powerline_hz=0.0)


class TestComponents:
    def test_baseline_wander_is_slow(self):
        model = NoiseModel(NoiseRecipe(baseline_wander_mv=0.1), seed=1)
        wander = model.baseline_wander(3600, 360.0)
        spectrum = np.abs(np.fft.rfft(wander)) ** 2
        freqs = np.fft.rfftfreq(3600, d=1 / 360.0)
        low = spectrum[freqs < 0.6].sum()
        assert low / spectrum.sum() > 0.99

    def test_baseline_wander_amplitude(self):
        model = NoiseModel(NoiseRecipe(baseline_wander_mv=0.1), seed=2)
        wander = model.baseline_wander(3600, 360.0)
        assert np.max(np.abs(wander)) <= 0.1 + 1e-12

    def test_muscle_is_broadband(self):
        model = NoiseModel(NoiseRecipe(muscle_mv=0.05), seed=3)
        emg = model.muscle_artifact(3600, 360.0)
        spectrum = np.abs(np.fft.rfft(emg)) ** 2
        freqs = np.fft.rfftfreq(3600, d=1 / 360.0)
        high = spectrum[freqs > 50].sum()
        assert high / spectrum.sum() > 0.4

    def test_powerline_is_narrowband(self):
        model = NoiseModel(
            NoiseRecipe(powerline_mv=0.05, powerline_hz=60.0), seed=4
        )
        hum = model.powerline(3600, 360.0)
        spectrum = np.abs(np.fft.rfft(hum)) ** 2
        freqs = np.fft.rfftfreq(3600, d=1 / 360.0)
        at_60 = spectrum[np.abs(freqs - 60.0) < 2.0].sum()
        at_120 = spectrum[np.abs(freqs - 120.0) < 2.0].sum()
        assert (at_60 + at_120) / spectrum.sum() > 0.99
        assert at_60 > at_120

    def test_motion_events_scale_with_rate(self):
        quiet = NoiseModel(
            NoiseRecipe(electrode_motion_mv=0.3, motion_events_per_minute=0.1),
            seed=5,
        )
        busy = NoiseModel(
            NoiseRecipe(electrode_motion_mv=0.3, motion_events_per_minute=20.0),
            seed=5,
        )
        q = quiet.electrode_motion(360 * 60, 360.0)
        b = busy.electrode_motion(360 * 60, 360.0)
        assert np.sum(np.abs(b)) > np.sum(np.abs(q))

    def test_zero_amplitude_components_are_zero(self):
        model = NoiseModel(
            NoiseRecipe(
                baseline_wander_mv=0.0,
                muscle_mv=0.0,
                powerline_mv=0.0,
                electrode_motion_mv=0.0,
            ),
            seed=6,
        )
        assert np.allclose(model.render(1000, 360.0), 0.0)

    def test_render_is_sum_of_components(self):
        recipe = NoiseRecipe(electrode_motion_mv=0.1)
        model = NoiseModel(recipe, seed=7)
        n, fs = 2000, 360.0
        total = model.render(n, fs)
        parts = (
            model.baseline_wander(n, fs)
            + model.muscle_artifact(n, fs)
            + model.powerline(n, fs)
            + model.electrode_motion(n, fs)
        )
        assert np.allclose(total, parts)

    def test_deterministic_by_seed(self):
        recipe = NoiseRecipe()
        a = NoiseModel(recipe, seed=8).render(500, 360.0)
        b = NoiseModel(recipe, seed=8).render(500, 360.0)
        assert np.array_equal(a, b)

    def test_invalid_render_args(self):
        model = NoiseModel(NoiseRecipe(), seed=9)
        with pytest.raises(ValueError):
            model.render(0, 360.0)
        with pytest.raises(ValueError):
            model.render(100, 0.0)
