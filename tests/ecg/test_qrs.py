"""Tests for the Pan–Tompkins-style QRS detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import detect_qrs, ecgsyn
from repro.ecg.qrs import beat_match_rate


class TestDetector:
    def test_counts_beats_on_clean_synthetic(self):
        signal = ecgsyn(20.0, fs_hz=360.0, seed=1)
        peaks = detect_qrs(signal, 360.0)
        assert 15 <= len(peaks) <= 25  # ~60 bpm for 20 s

    def test_refractory_period_enforced(self):
        signal = ecgsyn(30.0, fs_hz=360.0, seed=2)
        peaks = detect_qrs(signal, 360.0, refractory_s=0.2)
        assert np.all(np.diff(peaks) >= 0.2 * 360.0)

    def test_robust_to_moderate_noise(self, rng):
        signal = ecgsyn(20.0, fs_hz=360.0, seed=3)
        clean = detect_qrs(signal, 360.0)
        noisy = signal + 0.05 * rng.standard_normal(len(signal))
        detected = detect_qrs(noisy, 360.0)
        assert beat_match_rate(clean, detected, 360.0) > 0.9

    def test_amplitude_invariance(self):
        signal = ecgsyn(15.0, fs_hz=360.0, seed=4)
        a = detect_qrs(signal, 360.0)
        b = detect_qrs(10.0 * signal, 360.0)
        assert beat_match_rate(a, b, 360.0) == 1.0

    def test_too_short_signal_rejected(self):
        with pytest.raises(ValueError):
            detect_qrs(np.zeros(100), 360.0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            detect_qrs(np.zeros((2, 720)), 360.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_qrs(np.zeros(720), 360.0, threshold_fraction=1.5)


class TestBeatMatchRate:
    def test_perfect_match(self):
        reference = np.array([100, 500, 900])
        assert beat_match_rate(reference, reference, 360.0) == 1.0

    def test_within_tolerance(self):
        reference = np.array([100, 500])
        detected = np.array([110, 495])
        assert beat_match_rate(reference, detected, 360.0) == 1.0

    def test_outside_tolerance(self):
        reference = np.array([100])
        detected = np.array([200])
        assert beat_match_rate(reference, detected, 360.0) == 0.0

    def test_empty_cases(self):
        assert beat_match_rate(np.array([]), np.array([]), 360.0) == 1.0
        assert beat_match_rate(np.array([]), np.array([5]), 360.0) == 0.0
        assert beat_match_rate(np.array([5]), np.array([]), 360.0) == 0.0

    def test_partial(self):
        reference = np.array([100, 500, 900, 1300])
        detected = np.array([100, 500])
        assert beat_match_rate(reference, detected, 360.0) == 0.5
