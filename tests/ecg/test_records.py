"""Tests for Record/Annotation containers and the ADC model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import AdcSpec, Annotation, Record


class TestAdcSpec:
    def test_mitbih_parameters(self):
        adc = AdcSpec()
        assert adc.bits == 11
        assert adc.levels == 2048
        assert adc.gain_adu_per_mv == pytest.approx(204.8)

    def test_digitize_zero_maps_to_offset(self):
        adc = AdcSpec()
        assert adc.digitize(np.array([0.0]))[0] == 1024

    def test_digitize_roundtrip_within_lsb(self, rng):
        adc = AdcSpec()
        millivolts = rng.uniform(-4.5, 4.5, size=200)
        recovered = adc.to_millivolts(adc.digitize(millivolts))
        assert np.max(np.abs(recovered - millivolts)) <= 0.5 / adc.gain_adu_per_mv + 1e-12

    def test_saturation_at_rails(self):
        adc = AdcSpec()
        assert adc.digitize(np.array([100.0]))[0] == 2047
        assert adc.digitize(np.array([-100.0]))[0] == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            AdcSpec(bits=0)
        with pytest.raises(ValueError):
            AdcSpec(bits=25)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            AdcSpec(range_mv=0.0)


class TestAnnotation:
    def test_valid(self):
        ann = Annotation(sample=100, symbol="N")
        assert ann.sample == 100

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            Annotation(sample=-1, symbol="N")

    def test_empty_symbol_rejected(self):
        with pytest.raises(ValueError):
            Annotation(sample=0, symbol="")


class TestRecord:
    def _record(self):
        signals = np.zeros((2, 720))
        return Record(
            name="rec",
            fs_hz=360.0,
            signals_mv=signals,
            annotations=[Annotation(10, "N"), Annotation(360, "V")],
        )

    def test_shape_properties(self):
        record = self._record()
        assert record.num_channels == 2
        assert record.num_samples == 720
        assert record.duration_s == pytest.approx(2.0)

    def test_channel_access(self):
        record = self._record()
        assert len(record.channel(1)) == 720
        with pytest.raises(IndexError):
            record.channel(2)

    def test_1d_signals_rejected(self):
        with pytest.raises(ValueError):
            Record(name="x", fs_hz=360.0, signals_mv=np.zeros(100))

    def test_beat_samples_filtering(self):
        record = self._record()
        assert list(record.beat_samples()) == [10, 360]
        assert list(record.beat_samples(symbols=("V",))) == [360]
        assert list(record.beat_samples(symbols=("A",))) == []

    def test_digitized_channel(self):
        record = self._record()
        adu = record.digitized(0)
        assert adu.dtype == np.int64
        assert np.all(adu == 1024)  # zero millivolts
