"""Tests for the 360 -> 256 Hz resampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import SyntheticMitBih, resample_record, resample_signal
from repro.ecg.resample import rational_ratio


class TestRationalRatio:
    def test_paper_conversion(self):
        assert rational_ratio(360.0, 256.0) == (32, 45)

    def test_identity(self):
        assert rational_ratio(360.0, 360.0) == (1, 1)

    def test_upsampling(self):
        assert rational_ratio(250.0, 500.0) == (2, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            rational_ratio(0.0, 256.0)


class TestResampleSignal:
    def test_output_length(self):
        x = np.zeros(3600)
        y = resample_signal(x, 360.0, 256.0)
        assert len(y) == 2560

    def test_identity_rate_copies(self):
        x = np.arange(100.0)
        y = resample_signal(x, 256.0, 256.0)
        assert np.array_equal(x, y)
        assert y is not x

    def test_preserves_sine_below_nyquist(self):
        t = np.arange(3600) / 360.0
        x = np.sin(2 * np.pi * 10.0 * t)
        y = resample_signal(x, 360.0, 256.0)
        t2 = np.arange(len(y)) / 256.0
        expected = np.sin(2 * np.pi * 10.0 * t2)
        # ignore filter edge effects
        core = slice(100, -100)
        assert np.max(np.abs(y[core] - expected[core])) < 0.01

    def test_removes_above_target_nyquist(self):
        t = np.arange(7200) / 360.0
        x = np.sin(2 * np.pi * 150.0 * t)  # above 128 Hz target Nyquist
        y = resample_signal(x, 360.0, 256.0)
        assert np.sqrt(np.mean(y[200:-200] ** 2)) < 0.05

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            resample_signal(np.zeros((2, 10)), 360.0, 256.0)
        with pytest.raises(ValueError):
            resample_signal(np.zeros(1), 360.0, 256.0)


class TestResampleRecord:
    def test_record_fields_updated(self, database):
        record = database.load("100")
        resampled = resample_record(record, 256.0)
        assert resampled.fs_hz == 256.0
        assert resampled.num_channels == 2
        assert resampled.num_samples == int(record.duration_s * 256.0)
        assert resampled.name == record.name
        assert resampled.rhythm == record.rhythm

    def test_annotations_reindexed(self, database):
        record = database.load("100")
        resampled = resample_record(record, 256.0)
        ratio = 256.0 / 360.0
        for original, converted in zip(record.annotations, resampled.annotations):
            assert converted.sample == int(round(original.sample * ratio))
            assert converted.symbol == original.symbol

    def test_beats_still_detectable_after_resampling(self, database):
        from repro.ecg.qrs import beat_match_rate, detect_qrs

        record = resample_record(database.load("100"), 256.0)
        detected = detect_qrs(record.channel(0), 256.0)
        assert beat_match_rate(record.beat_samples(), detected, 256.0) > 0.9
