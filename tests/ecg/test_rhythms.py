"""Tests for the rhythm models and the beat-template renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import (
    AtrialFibrillation,
    Bigeminy,
    NormalSinus,
    OccasionalApc,
    OccasionalPvc,
    Paced,
    render_beats,
)
from repro.ecg.rhythms import TEMPLATES, Beat


class TestBeatSchedules:
    def test_normal_sinus_rate(self):
        rhythm = NormalSinus(mean_hr_bpm=60.0)
        beats = rhythm.generate_beats(60.0, seed=1)
        assert len(beats) == pytest.approx(60, abs=5)
        assert all(b.label == "N" for b in beats)

    def test_beats_strictly_increasing(self):
        for rhythm in (
            NormalSinus(),
            OccasionalPvc(),
            Bigeminy(),
            OccasionalApc(),
            AtrialFibrillation(),
            Paced(),
        ):
            beats = rhythm.generate_beats(30.0, seed=2)
            times = [b.r_time_s for b in beats]
            assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
            assert times[-1] < 30.0

    def test_bigeminy_alternates(self):
        beats = Bigeminy().generate_beats(30.0, seed=3)
        labels = [b.label for b in beats[:10]]
        assert labels == ["N", "V"] * 5

    def test_pvc_followed_by_compensatory_pause(self):
        rhythm = OccasionalPvc(mean_hr_bpm=60.0, pvc_probability=0.5)
        beats = rhythm.generate_beats(120.0, seed=4)
        for i, beat in enumerate(beats[:-1]):
            if beat.label == "V":
                # PVC coupling interval short, following interval long
                assert beat.rr_s < 0.8
                assert beats[i + 1].rr_s > 0.8

    def test_pvc_probability_controls_rate(self):
        few = OccasionalPvc(pvc_probability=0.02).generate_beats(300.0, seed=5)
        many = OccasionalPvc(pvc_probability=0.25).generate_beats(300.0, seed=5)
        frac_few = sum(b.label == "V" for b in few) / len(few)
        frac_many = sum(b.label == "V" for b in many) / len(many)
        assert frac_many > 3.0 * frac_few

    def test_af_rr_irregular(self):
        af_beats = AtrialFibrillation().generate_beats(120.0, seed=6)
        ns_beats = NormalSinus().generate_beats(120.0, seed=6)
        af_cv = np.std([b.rr_s for b in af_beats]) / np.mean(
            [b.rr_s for b in af_beats]
        )
        ns_cv = np.std([b.rr_s for b in ns_beats]) / np.mean(
            [b.rr_s for b in ns_beats]
        )
        assert af_cv > 3.0 * ns_cv

    def test_af_uses_no_p_template(self):
        beats = AtrialFibrillation().generate_beats(10.0, seed=7)
        assert all(b.key() == "N_af" for b in beats)

    def test_af_f_wave_present(self):
        rhythm = AtrialFibrillation(f_wave_amplitude_mv=0.06)
        wave = rhythm.fibrillatory_wave(10.0, 360.0, seed=8)
        assert wave is not None
        assert len(wave) == 3600
        assert 0.01 < np.max(np.abs(wave)) < 0.2

    def test_normal_sinus_has_no_f_wave(self):
        assert NormalSinus().fibrillatory_wave(10.0, 360.0, seed=1) is None

    def test_paced_rate_locked(self):
        beats = Paced(rate_bpm=70.0).generate_beats(60.0, seed=9)
        intervals = [b.rr_s for b in beats]
        assert np.std(intervals) < 0.02

    def test_deterministic(self):
        a = OccasionalPvc().generate_beats(30.0, seed=10)
        b = OccasionalPvc().generate_beats(30.0, seed=10)
        assert [x.r_time_s for x in a] == [y.r_time_s for y in b]


class TestRendering:
    def test_render_length(self):
        beats = NormalSinus().generate_beats(10.0, seed=1)
        signal = render_beats(beats, 10.0, 360.0, lead=0)
        assert len(signal) == 3600

    def test_r_peak_near_scheduled_time(self):
        beats = [Beat(r_time_s=5.0, rr_s=1.0, label="N")]
        signal = render_beats(beats, 10.0, 360.0, lead=0)
        peak = int(np.argmax(signal))
        assert abs(peak - 5.0 * 360.0) < 10

    def test_pvc_wider_than_normal(self):
        normal = render_beats(
            [Beat(2.0, 1.0, "N")], 4.0, 360.0, lead=0
        )
        pvc = render_beats([Beat(2.0, 1.0, "V")], 4.0, 360.0, lead=0)
        # width proxy: samples above half the peak
        wide_n = np.count_nonzero(normal > 0.5 * normal.max())
        wide_v = np.count_nonzero(pvc > 0.5 * pvc.max())
        assert wide_v > 1.5 * wide_n

    def test_pvc_has_no_p_wave(self):
        assert all(w.offset_s > -0.1 for w in TEMPLATES["V"][0].waves)

    def test_lead_one_differs_from_lead_zero(self):
        beats = NormalSinus().generate_beats(5.0, seed=2)
        lead0 = render_beats(beats, 5.0, 360.0, lead=0)
        lead1 = render_beats(beats, 5.0, 360.0, lead=1)
        assert not np.allclose(lead0, lead1)

    def test_amplitude_scale(self):
        beats = [Beat(1.0, 1.0, "N")]
        base = render_beats(beats, 2.0, 360.0, lead=0)
        scaled = render_beats(beats, 2.0, 360.0, lead=0, amplitude_scale=2.0)
        assert np.allclose(scaled, 2.0 * base)

    def test_invalid_lead(self):
        with pytest.raises(ValueError):
            render_beats([], 1.0, 360.0, lead=2)

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            render_beats([Beat(0.5, 1.0, "X")], 1.0, 360.0, lead=0)

    def test_t_wave_scales_with_rr(self):
        """Bazett-like: slower rhythm pushes the T wave later."""
        fast = render_beats([Beat(2.0, 0.5, "N")], 4.0, 360.0, lead=0)
        slow = render_beats([Beat(2.0, 1.5, "N")], 4.0, 360.0, lead=0)
        r_sample = 720
        # T peak = max after R + 50 ms
        t_fast = r_sample + 30 + np.argmax(fast[r_sample + 30 : r_sample + 300])
        t_slow = r_sample + 30 + np.argmax(slow[r_sample + 30 : r_sample + 300])
        assert t_slow > t_fast
