"""Tests for the ECGSYN dynamical model and its RR process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import EcgSynParameters, ecgsyn, rr_process
from repro.ecg.qrs import detect_qrs


class TestRrProcess:
    def test_mean_matches_heart_rate(self):
        params = EcgSynParameters(mean_hr_bpm=60.0, std_hr_bpm=1.0)
        rr = rr_process(params, duration_s=120.0, seed=1)
        assert np.mean(rr) == pytest.approx(1.0, abs=0.03)

    def test_variability_scales(self):
        quiet = EcgSynParameters(mean_hr_bpm=60.0, std_hr_bpm=0.5)
        wild = EcgSynParameters(mean_hr_bpm=60.0, std_hr_bpm=5.0)
        rr_quiet = rr_process(quiet, 120.0, seed=2)
        rr_wild = rr_process(wild, 120.0, seed=2)
        assert np.std(rr_wild) > 3.0 * np.std(rr_quiet)

    def test_deterministic(self):
        params = EcgSynParameters()
        assert np.array_equal(
            rr_process(params, 30.0, seed=3), rr_process(params, 30.0, seed=3)
        )

    def test_physiological_bounds(self):
        params = EcgSynParameters(mean_hr_bpm=60.0, std_hr_bpm=10.0)
        rr = rr_process(params, 60.0, seed=4)
        assert rr.min() >= 0.2 and rr.max() <= 3.0

    def test_spectrum_has_hf_peak(self):
        """The respiratory (0.25 Hz) band must carry visible power."""
        params = EcgSynParameters(std_hr_bpm=3.0)
        rr = rr_process(params, 300.0, seed=5, resolution_hz=8.0)
        spectrum = np.abs(np.fft.rfft(rr - rr.mean())) ** 2
        freqs = np.fft.rfftfreq(len(rr), d=1.0 / 8.0)
        hf = spectrum[(freqs > 0.2) & (freqs < 0.3)].sum()
        background = spectrum[(freqs > 0.5) & (freqs < 1.0)].sum()
        assert hf > background

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            rr_process(EcgSynParameters(), duration_s=0.0)


class TestEcgSyn:
    def test_output_length(self):
        signal = ecgsyn(5.0, fs_hz=360.0, seed=1)
        assert len(signal) == 1800

    def test_r_amplitude_normalized(self):
        signal = ecgsyn(10.0, seed=2)
        assert np.max(np.abs(signal)) == pytest.approx(1.1, rel=1e-6)

    def test_beat_rate_matches_heart_rate(self):
        params = EcgSynParameters(mean_hr_bpm=72.0, std_hr_bpm=0.5)
        signal = ecgsyn(30.0, parameters=params, fs_hz=360.0, seed=3)
        peaks = detect_qrs(signal, 360.0)
        rate = len(peaks) / 30.0 * 60.0
        assert rate == pytest.approx(72.0, abs=6.0)

    def test_deterministic(self):
        a = ecgsyn(5.0, seed=7)
        b = ecgsyn(5.0, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_signal(self):
        assert not np.array_equal(ecgsyn(5.0, seed=7), ecgsyn(5.0, seed=8))

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            ecgsyn(0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EcgSynParameters(mean_hr_bpm=0.0)
        with pytest.raises(ValueError):
            EcgSynParameters(std_hr_bpm=-1.0)

    def test_wave_parameter_validation(self):
        from repro.ecg import WaveParameters

        with pytest.raises(ValueError):
            WaveParameters(theta=0.0, amplitude=1.0, width=0.0)
