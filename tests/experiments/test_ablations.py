"""Tests for the wavelet/level/quantizer design-choice ablations."""

from __future__ import annotations

import pytest

from repro.ecg import SyntheticMitBih
from repro.experiments import (
    run_level_ablation,
    run_quantizer_ablation,
    run_wavelet_ablation,
)


@pytest.fixture(scope="module")
def tiny_db():
    return SyntheticMitBih(duration_s=16.0, seed=2011)


class TestWaveletAblation:
    def test_rows_and_fields(self, tiny_db):
        rows = run_wavelet_ablation(
            wavelets=("haar", "db4"),
            records=("100",),
            packets_per_record=3,
            database=tiny_db,
        )
        assert [row["wavelet"] for row in rows] == ["haar", "db4"]
        for row in rows:
            assert row["snr_db"] > 0.0
            assert 0.0 < row["sparsity_50_capture"] <= 1.0

    def test_db4_sparsifies_better_than_haar(self, tiny_db):
        """The reason the default is db4: ECG is smoother than Haar."""
        rows = run_wavelet_ablation(
            wavelets=("haar", "db4"),
            records=("100",),
            packets_per_record=3,
            database=tiny_db,
        )
        by_name = {row["wavelet"]: row for row in rows}
        assert (
            by_name["db4"]["sparsity_50_capture"]
            > by_name["haar"]["sparsity_50_capture"]
        )
        assert by_name["db4"]["snr_db"] > by_name["haar"]["snr_db"] - 0.5


class TestLevelAblation:
    def test_deeper_is_not_worse(self, tiny_db):
        rows = run_level_ablation(
            levels=(2, 5),
            records=("100",),
            packets_per_record=3,
            database=tiny_db,
        )
        by_depth = {int(row["levels"]): row["snr_db"] for row in rows}
        # shallow decompositions waste the coarse band's compressibility
        assert by_depth[5] > by_depth[2] - 0.5


class TestQuantizerAblation:
    def test_shift_tradeoff_shape(self, tiny_db):
        rows = run_quantizer_ablation(
            shifts=(0, 4, 6),
            packets=4,
            database=tiny_db,
        )
        by_shift = {int(row["shift"]): row for row in rows}
        # no quantization: saturation is rampant (diffs overflow 9 bits)
        assert by_shift[0]["saturation_percent"] > by_shift[4]["saturation_percent"]
        # more shift: better CR, worse PRD
        assert by_shift[6]["measured_cr"] > by_shift[4]["measured_cr"]
        assert by_shift[6]["prd_percent"] > by_shift[4]["prd_percent"] - 0.5

    def test_default_shift_saturation_negligible(self, tiny_db):
        rows = run_quantizer_ablation(
            shifts=(4,), packets=6, database=tiny_db
        )
        assert rows[0]["saturation_percent"] < 1.0
