"""Tests for the entropy-coder and sensing-structure alternatives ablation."""

from __future__ import annotations

import pytest

from repro.ecg import SyntheticMitBih
from repro.experiments.ablation_alternatives import (
    run_entropy_coder_ablation,
    run_sensing_structure_ablation,
)


@pytest.fixture(scope="module")
def tiny_db():
    return SyntheticMitBih(duration_s=20.0, seed=2011)


class TestEntropyCoderAblation:
    def test_rice_close_to_huffman(self, tiny_db):
        row = run_entropy_coder_ablation(packets=5, database=tiny_db)
        assert row["packets"] == 5.0
        # Rice trails the trained Huffman by a modest margin...
        assert -5.0 < row["rice_overhead_percent"] < 25.0
        # ...while saving the whole codebook
        assert row["rice_flash_bytes"] == 0.0
        assert row["huffman_flash_bytes"] == 1536.0

    def test_bits_positive(self, tiny_db):
        row = run_entropy_coder_ablation(packets=4, database=tiny_db)
        assert row["huffman_bits_per_packet"] > 0
        assert row["rice_bits_per_packet"] > 0


class TestSensingStructureAblation:
    def test_structure_cost_appears_at_high_cr(self, tiny_db):
        rows = run_sensing_structure_ablation(
            packets=3, nominal_crs=(50.0, 75.0), database=tiny_db
        )
        assert len(rows) == 4
        by_key = {(r["matrix"], r["nominal_cr"]): r for r in rows}
        # circulant storage is dramatically smaller at both points
        for cr in (50.0, 75.0):
            assert (
                by_key[("lfsr-circulant", cr)]["storage_bits"]
                < by_key[("sparse-binary", cr)]["storage_bits"]
            )
        # both degrade with CR
        assert (
            by_key[("sparse-binary", 75.0)]["prd_percent"]
            > by_key[("sparse-binary", 50.0)]["prd_percent"]
        )
        assert (
            by_key[("lfsr-circulant", 75.0)]["prd_percent"]
            > by_key[("lfsr-circulant", 50.0)]["prd_percent"]
        )
