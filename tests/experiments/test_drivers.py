"""Tests for the experiment drivers on tiny workloads.

These verify the *shape* claims of every reproduced figure without the
full sweep sizes (the benchmarks run the real thing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import SyntheticMitBih
from repro.experiments import (
    render_table,
    run_cr_sweep,
    run_encoder_budget,
    run_fig2,
    run_fig6,
    run_fig7,
    run_fig8,
    run_sensing_ablation,
    run_simd_ablation,
)


@pytest.fixture(scope="module")
def tiny_db():
    return SyntheticMitBih(duration_s=24.0, seed=2011)


@pytest.fixture(scope="module")
def tiny_records(tiny_db):
    return ("100", "106")


class TestCrSweep:
    def test_outcomes_per_cr(self, tiny_db, tiny_records):
        outcomes = run_cr_sweep(
            nominal_crs=(40.0, 70.0),
            records=tiny_records,
            packets_per_record=3,
            database=tiny_db,
        )
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert len(outcome.points) == 6
            assert 0.0 < outcome.measured_cr < 100.0

    def test_snr_decreases_with_cr(self, tiny_db, tiny_records):
        outcomes = run_cr_sweep(
            nominal_crs=(30.0, 80.0),
            records=tiny_records,
            packets_per_record=3,
            database=tiny_db,
        )
        low, high = outcomes[0].summary(), outcomes[1].summary()
        assert low["snr_db"] > high["snr_db"]

    def test_measured_cr_beats_nominal(self, tiny_db, tiny_records):
        """Entropy coding must add compression beyond m/n."""
        outcomes = run_cr_sweep(
            nominal_crs=(50.0,),
            records=tiny_records,
            packets_per_record=4,
            database=tiny_db,
        )
        assert outcomes[0].measured_cr > outcomes[0].nominal_cr


class TestFig2:
    def test_sparse_close_to_gaussian(self, tiny_db, tiny_records):
        rows = run_fig2(
            nominal_crs=(50.0, 70.0),
            records=tiny_records,
            packets_per_record=3,
            database=tiny_db,
        )
        assert len(rows) == 2
        for row in rows:
            # "no meaningful performance difference": within a few dB
            assert abs(row["snr_gap_db"]) < 5.0
        # monotone: SNR drops as CR rises for both pipelines
        assert rows[0]["sparse_snr_db"] > rows[1]["sparse_snr_db"]
        assert rows[0]["gaussian_snr_db"] > rows[1]["gaussian_snr_db"]


class TestFig6:
    def test_float32_matches_float64(self, tiny_db, tiny_records):
        rows = run_fig6(
            nominal_crs=(40.0, 60.0),
            records=tiny_records,
            packets_per_record=3,
            database=tiny_db,
        )
        for row in rows:
            assert row["prd_gap_percent"] < 0.5
        assert rows[0]["prd64_percent"] < rows[1]["prd64_percent"]


class TestFig7:
    def test_iterations_and_time_increase_with_cr(self, tiny_db, tiny_records):
        rows = run_fig7(
            nominal_crs=(30.0, 70.0),
            records=tiny_records,
            packets_per_record=3,
            database=tiny_db,
        )
        assert rows[0]["iterations"] < rows[1]["iterations"]
        assert rows[0]["iphone_time_s"] < rows[1]["iphone_time_s"]

    def test_iterations_in_paper_band(self, tiny_db, tiny_records):
        rows = run_fig7(
            nominal_crs=(40.0,),
            records=tiny_records,
            packets_per_record=3,
            database=tiny_db,
        )
        assert 300 <= rows[0]["iterations"] <= 2000


class TestFig8:
    def test_realtime_claims(self, tiny_db):
        report, summary = run_fig8(
            packets=6, duration_s=60.0, database=tiny_db
        )
        assert summary["node_cpu_percent"] < 5.0
        assert summary["phone_cpu_percent"] < 30.0
        assert summary["realtime"] is True
        assert report.packets_decoded > 0


class TestEncoderBudget:
    def test_headline_numbers(self, tiny_db):
        budget = run_encoder_budget(database=tiny_db)
        assert budget["sensing_time_ms"] == pytest.approx(82.0, abs=0.5)
        assert budget["node_cpu_percent"] < 5.0
        assert budget["ram_bytes"] == 6656
        assert budget["huffman_flash_bytes"] == 1536
        approaches = {row["approach"]: row for row in budget["approaches"]}
        assert not approaches["onboard-gaussian"]["realtime"]
        assert approaches["sparse-binary"]["realtime"]
        assert not approaches["stored-gaussian"]["fits_memory"]

    def test_lifetime_reference_point(self, tiny_db):
        budget = run_encoder_budget(database=tiny_db)
        reference = budget["lifetime"][-1]
        assert reference["extension_percent"] == pytest.approx(12.9, abs=0.1)


class TestSimdAblation:
    def test_all_sections_present(self):
        ablation = run_simd_ablation()
        assert ablation["fig3_max_deviation"] == 0.0
        assert all(r["fastest"] == "array-padding" for r in ablation["fig3"])
        assert ablation["fig4"]["max_deviation"] == 0.0
        assert ablation["fig4"]["speedup"] > 4.0
        assert all(r["outer_wins"] for r in ablation["fig5"])
        assert ablation["speedup_at_1000_iters"] == pytest.approx(2.43, abs=0.15)
        assert ablation["max_iterations_scalar"] == pytest.approx(800, abs=8)
        assert ablation["max_iterations_neon"] == pytest.approx(2000, abs=20)

    def test_kernel_table_shows_gather_bottleneck(self):
        ablation = run_simd_ablation()
        by_kernel = {r["kernel"]: r for r in ablation["iteration_kernels"]}
        assert by_kernel["idwt"]["speedup"] > by_kernel["sparse Phi v"]["speedup"]


class TestSensingAblation:
    def test_d_sweep_shape(self, tiny_db):
        rows = run_sensing_ablation(
            d_values=(4, 12),
            records=("100",),
            packets_per_record=3,
            database=tiny_db,
        )
        assert len(rows) == 2
        d4, d12 = rows
        # more ones per column: better recovery, more encode time
        assert d12["snr_db"] >= d4["snr_db"] - 1.0
        assert d12["sensing_time_ms"] > d4["sensing_time_ms"]
        assert d12["additions_per_packet"] == 3.0 * d4["additions_per_packet"]


class TestRendering:
    def test_render_table(self):
        text = render_table(
            [{"a": 1.0, "b": True}, {"a": 2.5, "b": False}],
            title="demo",
        )
        assert "demo" in text
        assert "2.500" in text
        assert "yes" in text and "no" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table([])
