"""Cross-source equivalence for the fleet decode engine.

The serial per-stream path stays the reference implementation; these
tests pin the fleet engine to it exactly like
``tests/core/test_batch.py`` pins the single-stream batched engine:
bit-identical packets (the encoder is untouched integer arithmetic) and
reconstructions matching to solver floating-point noise — across both
MIT-BIH leads, across different records sharing one sensing operator,
through ragged tail batches, ``max_packets`` limits and the sharded
multi-process executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EcgMonitorSystem, MultiChannelMonitor
from repro.errors import ConfigurationError
from repro.fleet import (
    FleetDecoder,
    GroupSchedule,
    StreamTask,
    build_schedules,
    decode_fleet,
    operator_key,
    solve_key,
)


def _serial_reference(config, record, channel=0, max_packets=6, codebook=None):
    """A fresh serial stream of one record channel (the ground truth)."""
    system = EcgMonitorSystem(config)
    if codebook is not None:
        system.encoder.codebook = codebook
        system.decoder.codebook = codebook
    return system.stream(
        record, channel=channel, max_packets=max_packets, keep_signals=True
    )


def _assert_stream_equivalent(fleet_result, serial_result, atol=1e-7):
    """Packets bit-identical, solver trajectory identical, floats close."""
    assert fleet_result.num_packets == serial_result.num_packets
    for fleet_packet, serial_packet in zip(
        fleet_result.packets, serial_result.packets
    ):
        assert fleet_packet.sequence == serial_packet.sequence
        assert fleet_packet.is_keyframe == serial_packet.is_keyframe
        assert fleet_packet.packet_bits == serial_packet.packet_bits
        assert fleet_packet.iterations == serial_packet.iterations
        assert fleet_packet.prd_percent == pytest.approx(
            serial_packet.prd_percent, abs=1e-9
        )
    if fleet_result.reconstructed_adu is not None:
        np.testing.assert_allclose(
            fleet_result.reconstructed_adu,
            serial_result.reconstructed_adu,
            atol=atol,
        )


class TestOperatorKey:
    def test_sensing_identity_fields_split_groups(self, small_config):
        base = operator_key(small_config)
        assert operator_key(small_config) == base
        assert operator_key(small_config.replace(seed=99)) != base
        assert operator_key(small_config.replace(m=64)) != base
        assert operator_key(small_config.replace(d=4)) != base
        assert operator_key(small_config.replace(wavelet="haar")) != base
        assert operator_key(small_config.replace(levels=3)) != base
        assert operator_key(small_config, precision="float32") != base

    def test_solver_params_split_solves_not_operators(self, small_config):
        relaxed = small_config.replace(tolerance=1e-3)
        assert operator_key(small_config) == operator_key(relaxed)
        assert solve_key(small_config) != solve_key(relaxed)

    def test_non_operator_fields_share_groups(self, small_config):
        assert operator_key(small_config) == operator_key(
            small_config.replace(lam=0.01, keyframe_interval=4)
        )


class TestGroupSchedule:
    def test_batches_span_stream_boundaries(self):
        schedule = GroupSchedule.build([0, 1], [5, 5], batch_size=4)
        assert schedule.total_windows == 10
        assert schedule.num_batches == 3
        spans = list(schedule.batches())
        assert spans == [(0, 4), (4, 8), (8, 10)]
        # second batch mixes the tail of stream 0 with the head of 1
        mixed = schedule.stream_of[4:8]
        assert set(mixed.tolist()) == {0, 1}

    def test_routing_preserves_per_stream_order(self):
        schedule = GroupSchedule.build([3, 7], [3, 2], batch_size=2)
        for local, count in enumerate(schedule.counts):
            rows = schedule.index_of[schedule.stream_of == local]
            np.testing.assert_array_equal(rows, np.arange(count))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GroupSchedule.build([0], [3], batch_size=0)
        with pytest.raises(ConfigurationError):
            GroupSchedule.build([], [], batch_size=4)
        with pytest.raises(ConfigurationError):
            GroupSchedule.build([0, 1], [3, 0], batch_size=4)

    def test_build_schedules_groups_by_key(self):
        keys = [("a",), ("b",), ("a",), ("a",)]
        schedules = build_schedules(keys, [2, 3, 4, 1], batch_size=4)
        assert [s.stream_ids for s in schedules] == [(0, 2, 3), (1,)]
        assert [s.total_windows for s in schedules] == [7, 3]
        with pytest.raises(ConfigurationError):
            build_schedules(keys, [1, 2], batch_size=4)


class TestCrossSourceEquivalence:
    def test_both_leads_pooled(self, small_config, database):
        """(a) both MIT-BIH leads through the fleet vs per-lead serial."""
        record = database.load("100")
        monitor = MultiChannelMonitor(small_config, channels=2)
        tasks = [
            StreamTask(
                system, record, channel=channel, max_packets=5,
                keep_signals=True,
            )
            for channel, system in enumerate(monitor.systems)
        ]
        results = decode_fleet(tasks, batch_size=3)
        for channel, fleet_result in enumerate(results):
            serial = _serial_reference(
                small_config.replace(seed=small_config.seed + channel),
                record,
                channel=channel,
                max_packets=5,
            )
            _assert_stream_equivalent(fleet_result, serial)

    def test_two_records_one_operator_group(self, small_config, database):
        """(b) two records share the operator; batches span both."""
        records = [database.load("100"), database.load("119")]
        systems = [EcgMonitorSystem(small_config) for _ in records]
        tasks = [
            StreamTask(system, record, max_packets=5, keep_signals=True)
            for system, record in zip(systems, records)
        ]
        # batch 4 over 2x5 windows: the middle batch mixes both records
        results = decode_fleet(tasks, batch_size=4)
        for record, fleet_result in zip(records, results):
            _assert_stream_equivalent(
                fleet_result,
                _serial_reference(small_config, record, max_packets=5),
            )

    def test_ragged_tail_and_max_packets(self, small_config, database):
        """Unequal max_packets limits leave a ragged pooled tail."""
        records = [database.load("100"), database.load("201")]
        systems = [EcgMonitorSystem(small_config) for _ in records]
        limits = (5, 2)
        tasks = [
            StreamTask(system, record, max_packets=limit)
            for system, record, limit in zip(systems, records, limits)
        ]
        results = decode_fleet(tasks, batch_size=3)
        assert [r.num_packets for r in results] == list(limits)
        for record, limit, fleet_result in zip(records, limits, results):
            _assert_stream_equivalent(
                fleet_result,
                _serial_reference(small_config, record, max_packets=limit),
            )

    def test_calibrated_codebooks_stay_per_stream(
        self, small_config, database
    ):
        """Streams with different trained codebooks share one solve."""
        records = [database.load("100"), database.load("106")]
        systems = [EcgMonitorSystem(small_config) for _ in records]
        for system, record in zip(systems, records):
            system.calibrate(record)
        assert systems[0].encoder.codebook is not systems[1].encoder.codebook
        tasks = [
            StreamTask(system, record, max_packets=4)
            for system, record in zip(systems, records)
        ]
        results = decode_fleet(tasks, batch_size=8)
        for system, record, fleet_result in zip(systems, records, results):
            serial = _serial_reference(
                small_config,
                record,
                max_packets=4,
                codebook=system.encoder.codebook,
            )
            _assert_stream_equivalent(fleet_result, serial)

    def test_mixed_operator_groups_route_correctly(
        self, small_config, database
    ):
        """Interleaved submission of two groups routes back in order."""
        other = small_config.replace(seed=small_config.seed + 7)
        record = database.load("100")
        tasks = [
            StreamTask(EcgMonitorSystem(cfg), record, max_packets=3)
            for cfg in (small_config, other, small_config, other)
        ]
        results = decode_fleet(tasks, batch_size=4)
        ref_a = _serial_reference(small_config, record, max_packets=3)
        ref_b = _serial_reference(other, record, max_packets=3)
        for index, fleet_result in enumerate(results):
            _assert_stream_equivalent(
                fleet_result, ref_a if index % 2 == 0 else ref_b
            )


class TestShardedExecutor:
    def test_workers_match_inprocess_bitwise(self, small_config, database):
        """Workers rebuild operators from seeds: identical trajectories."""
        other = small_config.replace(seed=small_config.seed + 1)
        records = [database.load("100"), database.load("119")]
        tasks_of = lambda: [
            StreamTask(
                EcgMonitorSystem(cfg), record, max_packets=4,
                keep_signals=True,
            )
            for cfg, record in zip((small_config, other), records)
        ]
        inprocess = decode_fleet(tasks_of(), batch_size=3)
        sharded = decode_fleet(tasks_of(), batch_size=3, workers=2)
        for a, b in zip(inprocess, sharded):
            assert [p.iterations for p in a.packets] == [
                p.iterations for p in b.packets
            ]
            assert [p.packet_bits for p in a.packets] == [
                p.packet_bits for p in b.packets
            ]
            np.testing.assert_array_equal(
                a.reconstructed_adu, b.reconstructed_adu
            )

    def test_single_group_shards_columns(self, small_config, database):
        """One operator group shards *within* the group: the pooled
        column stream splits into batch-aligned slices across workers,
        bit-identical to the in-process pooled decode."""
        record = database.load("100")
        tasks_of = lambda: [
            StreamTask(
                EcgMonitorSystem(small_config), record, max_packets=5,
                keep_signals=True,
            )
            for _ in range(2)
        ]
        engine = FleetDecoder(batch_size=2, workers=4)
        sharded = engine.run(tasks_of())
        assert engine.last_num_groups == 1
        assert engine.last_shard_mode == "columns"
        # 10 pooled windows, batch 2 -> 5 batches over 4 workers
        assert engine.last_effective_workers == 4
        inprocess = FleetDecoder(batch_size=2).run(tasks_of())
        for a, b in zip(inprocess, sharded):
            assert [p.iterations for p in a.packets] == [
                p.iterations for p in b.packets
            ]
            np.testing.assert_array_equal(
                a.reconstructed_adu, b.reconstructed_adu
            )
            _assert_stream_equivalent(
                b, _serial_reference(small_config, record, max_packets=5)
            )

    def test_column_shard_ragged_tail_spans_streams(
        self, small_config, database
    ):
        """Batch-aligned slicing keeps cross-stream batches intact:
        with 3+2 windows and batch 2, the middle batch mixes streams
        and lands whole on one worker."""
        records = [database.load("100"), database.load("119")]
        systems = [EcgMonitorSystem(small_config) for _ in records]
        limits = (3, 2)
        tasks = [
            StreamTask(system, record, max_packets=limit)
            for system, record, limit in zip(systems, records, limits)
        ]
        engine = FleetDecoder(batch_size=2, workers=2)
        results = engine.run(tasks)
        assert engine.last_shard_mode == "columns"
        for record, limit, fleet_result in zip(records, limits, results):
            _assert_stream_equivalent(
                fleet_result,
                _serial_reference(small_config, record, max_packets=limit),
            )

    def test_single_batch_falls_back_with_warning(
        self, small_config, database
    ):
        """Nothing to shard (one group, one batch): the engine decodes
        in-process and says why instead of staying silent."""
        record = database.load("100")
        tasks = [
            StreamTask(EcgMonitorSystem(small_config), record, max_packets=2)
        ]
        engine = FleetDecoder(batch_size=8, workers=4)
        with pytest.warns(RuntimeWarning, match="nothing to shard"):
            results = engine.run(tasks)
        assert engine.last_num_groups == 1
        assert engine.last_shard_mode == "in-process"
        assert engine.last_effective_workers == 1  # reported, not requested
        assert engine.last_fallback_reason is not None
        _assert_stream_equivalent(
            results[0],
            _serial_reference(small_config, record, max_packets=2),
        )

    def test_split_batches_layout(self):
        from repro.fleet import split_batches

        assert split_batches(5, 2) == [(0, 3), (3, 5)]
        assert split_batches(2, 4) == [(0, 1), (1, 2)]
        assert split_batches(6, 3) == [(0, 2), (2, 4), (4, 6)]
        with pytest.raises(ConfigurationError):
            split_batches(0, 2)
        with pytest.raises(ConfigurationError):
            split_batches(3, 0)

    def test_run_reports_effective_sharding(self, small_config, database):
        record = database.load("100")
        other = small_config.replace(seed=small_config.seed + 1)
        tasks = [
            StreamTask(EcgMonitorSystem(cfg), record, max_packets=2)
            for cfg in (small_config, other)
        ]
        engine = FleetDecoder(batch_size=2, workers=2)
        engine.run(tasks)
        assert engine.last_num_groups == 2
        assert engine.last_shard_mode == "groups"
        assert engine.last_effective_workers == 2

    def test_non_lead_streams_skip_operator_build(
        self, small_config, database
    ):
        """Lazy decoder materialization: only the group lead pays the
        dense build + Lipschitz estimate in a single-process run."""
        record = database.load("100")
        systems = [EcgMonitorSystem(small_config) for _ in range(3)]
        assert all(s.decoder._system_cache is None for s in systems)
        tasks = [
            StreamTask(system, record, max_packets=2) for system in systems
        ]
        decode_fleet(tasks, batch_size=4)
        assert systems[0].decoder._system_cache is not None
        assert all(s.decoder._system_cache is None for s in systems[1:])


class TestFleetApi:
    def test_empty_task_list(self):
        assert FleetDecoder().run([]) == []

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FleetDecoder(batch_size=0)
        with pytest.raises(ConfigurationError):
            FleetDecoder(workers=-1)

    def test_max_packets_zero_names_cause(self, small_config, database):
        task = StreamTask(
            EcgMonitorSystem(small_config), database.load("100"), max_packets=0
        )
        with pytest.raises(ValueError, match="max_packets"):
            FleetDecoder(batch_size=2).run([task])

    def test_warm_start_decoder_rejected(self, small_config, database):
        """Pooled batches span streams: the per-stream warm-start chain
        cannot be reproduced, so the engine refuses explicitly."""
        system = EcgMonitorSystem(small_config)
        system.decoder.warm_start = True
        task = StreamTask(system, database.load("100"), max_packets=3)
        with pytest.raises(ConfigurationError, match="warm_start"):
            FleetDecoder(batch_size=2).run([task])

    def test_multichannel_fleet_workers_needs_batching(
        self, small_config, database
    ):
        monitor = MultiChannelMonitor(small_config, channels=2)
        with pytest.raises(ConfigurationError, match="batch_size"):
            monitor.stream(
                database.load("100"), max_packets=2, fleet_workers=2
            )

    def test_multichannel_stream_uses_fleet(self, small_config, database):
        """The monitor's batched path pools leads through the scheduler."""
        record = database.load("100")
        serial_monitor = MultiChannelMonitor(small_config, channels=2)
        fleet_monitor = MultiChannelMonitor(small_config, channels=2)
        serial = serial_monitor.stream(record, max_packets=4)
        pooled = fleet_monitor.stream(record, max_packets=4, batch_size=4)
        assert pooled.num_channels == serial.num_channels == 2
        assert pooled.total_bits == serial.total_bits
        for lead_serial, lead_pooled in zip(
            serial.per_channel, pooled.per_channel
        ):
            _assert_stream_equivalent(lead_pooled, lead_serial)

    def test_multichannel_fleet_workers_param(self, small_config, database):
        record = database.load("100")
        monitor = MultiChannelMonitor(small_config, channels=2)
        result = monitor.stream(
            record, max_packets=3, batch_size=3, fleet_workers=2
        )
        assert result.num_channels == 2
        assert all(r.num_packets == 3 for r in result.per_channel)


class TestFleetTelemetry:
    """The fleet surface publishes through the unified telemetry plane."""

    def test_inprocess_run_publishes_counters(self, small_config, database):
        from repro.telemetry import MetricsRegistry

        record = database.load("100")
        registry = MetricsRegistry()
        decoder = FleetDecoder(batch_size=3, telemetry=registry)
        decoder.run(
            [
                StreamTask(
                    EcgMonitorSystem(small_config), record, max_packets=4
                )
            ]
        )
        snap = registry.snapshot()
        assert snap.counter_value("fleet_runs", mode="in-process") == 1
        assert snap.counter_total("fleet_windows_decoded") == 4
        assert snap.gauge_value("fleet_groups") == 1
        assert snap.counter_value("fleet_group_windows", group="g0") == 4

    def test_worker_deltas_absorbed_across_pool(
        self, small_config, database
    ):
        """Cross-process merge: every pool task's telemetry delta lands
        in the parent registry exactly once, whatever the completion
        order (group sharding and column sharding both)."""
        from repro.telemetry import MetricsRegistry

        other = small_config.replace(seed=small_config.seed + 1)
        records = [database.load("100"), database.load("119")]

        registry = MetricsRegistry()
        decoder = FleetDecoder(batch_size=3, workers=2, telemetry=registry)
        decoder.run(
            [
                StreamTask(EcgMonitorSystem(cfg), record, max_packets=4)
                for cfg, record in zip((small_config, other), records)
            ]
        )
        snap = registry.snapshot()
        if decoder.last_shard_mode == "groups":  # pool actually started
            # one delta per operator-group task, windows conserved
            assert snap.counter_total("fleet_worker_tasks") == 2
            assert snap.counter_total("fleet_worker_windows") == 8
            assert snap.label_values("fleet_worker_tasks", "worker")

        registry = MetricsRegistry()
        decoder = FleetDecoder(batch_size=2, workers=2, telemetry=registry)
        decoder.run(
            [
                StreamTask(
                    EcgMonitorSystem(small_config), record, max_packets=4
                )
                for record in records
            ]
        )
        snap = registry.snapshot()
        if decoder.last_shard_mode == "columns":
            # one delta per column slice; solve histograms rode along
            assert snap.counter_total("fleet_worker_tasks") == 2
            assert snap.counter_total("fleet_worker_windows") == 8
            hist = snap.histogram_total("fleet_solve_seconds")
            assert hist is not None and hist.total >= 2
