"""Adaptive batch control: the AIMD loop, the model, the gateway wiring."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import EcgMonitorSystem
from repro.errors import ConfigurationError
from repro.ingest import (
    AdaptiveBatchController,
    AdaptiveConfig,
    FixedBatchController,
    IngestGateway,
    NodeClient,
    SolveTimeModel,
)
from repro.telemetry import MetricsRegistry


class TestSolveTimeModel:
    def test_recovers_affine_cost(self):
        model = SolveTimeModel()
        for width in (2, 4, 8, 16, 8, 4):
            model.observe(width, 0.05 + 0.01 * width)
        overhead, per_window = model.parameters()
        assert overhead == pytest.approx(0.05, rel=1e-6)
        assert per_window == pytest.approx(0.01, rel=1e-6)
        assert model.predict(32) == pytest.approx(0.37, rel=1e-6)

    def test_single_width_degenerates_to_rate(self):
        model = SolveTimeModel()
        model.observe(4, 0.2)
        model.observe(4, 0.2)
        overhead, per_window = model.parameters()
        assert overhead == 0.0
        assert per_window == pytest.approx(0.05)

    def test_no_data_predicts_zero(self):
        model = SolveTimeModel()
        assert model.parameters() == (0.0, 0.0)
        assert model.predict(64) == 0.0
        assert model.sample_count == 0

    def test_negative_fit_clamped(self):
        model = SolveTimeModel()
        # pathological samples that would fit a negative slope
        model.observe(2, 0.5)
        model.observe(16, 0.1)
        overhead, per_window = model.parameters()
        assert overhead >= 0.0 and per_window >= 0.0


class TestControllerAimd:
    def _controller(self, **overrides) -> AdaptiveBatchController:
        config = AdaptiveConfig(
            budget_s=2.0, widen_step=4, latency_window=16, **overrides
        )
        return AdaptiveBatchController(16, 0.25, config=config)

    def test_holds_base_point_without_signals(self):
        """The steady-state contract: no backlog + no threat => the
        configured operating point, flush after flush."""
        controller = self._controller()
        for _ in range(50):
            controller.record_latency(0.1)
            controller.observe_flush(3, 0.05, backlog=0, reason="deadline")
        assert controller.at_base_point
        assert controller.widen_count == 0
        assert controller.shed_count == 0

    def test_widens_under_backlog_with_headroom(self):
        controller = self._controller()
        controller.record_latency(0.1)
        controller.observe_flush(16, 0.1, backlog=200, reason="full")
        assert controller.effective_batch == 32  # deep backlog doubles
        controller.observe_flush(32, 0.2, backlog=40, reason="full")
        assert controller.effective_batch == 36  # shallow backlog adds
        assert controller.widen_count == 2
        assert controller.effective_batch <= controller.max_batch

    def test_widening_caps_at_max_batch(self):
        controller = self._controller(max_batch_factor=2)
        for _ in range(10):
            controller.observe_flush(16, 0.05, backlog=500, reason="full")
        assert controller.effective_batch == 32  # 2 * base

    def test_sheds_multiplicatively_when_budget_threatened(self):
        controller = self._controller()
        # one solve consumed 90% of the 2 s budget: the width is
        # head-of-line blocking everything behind it
        controller.observe_flush(16, 1.8, backlog=100, reason="full")
        assert controller.effective_batch == 8
        assert controller.effective_flush_s == pytest.approx(0.125)
        assert controller.shed_count == 1

    def test_routine_pressure_flush_does_not_shed(self):
        """A pressure flush is the timing mechanism working — only a
        budget-eating solve indicts the width itself."""
        controller = self._controller()
        controller.observe_flush(6, 0.2, backlog=0, reason="pressure")
        assert controller.effective_batch == 16
        assert controller.shed_count == 0

    def test_shed_floors(self):
        controller = self._controller()
        for _ in range(30):
            controller.observe_flush(4, 1.9, backlog=0, reason="full")
        assert controller.effective_batch >= controller.config.min_batch
        assert controller.effective_flush_s >= controller.min_flush_s

    def test_recovery_returns_flush_deadline_to_base_only(self):
        controller = self._controller()
        controller.observe_flush(16, 1.9, backlog=0, reason="full")
        tightened = controller.effective_flush_s
        assert tightened < 0.25
        for _ in range(20):
            controller.record_latency(0.05)
            controller.observe_flush(2, 0.05, backlog=0, reason="deadline")
        assert controller.effective_flush_s == pytest.approx(0.25)

    def test_pressure_due_time_uses_model(self):
        controller = self._controller(safety_s=0.1)
        # cold start: no model, no pressure trigger
        assert controller.pressure_due_at(100.0, 50) == float("inf")
        controller.record_latency(0.1)
        controller.observe_flush(10, 1.0, backlog=0, reason="full")
        # model: 0.1 s/window -> 16-wide solve predicted 1.6 s; a
        # window submitted at t=100 must flush by 100 + 2.0 - 0.1 - 1.6
        due = controller.pressure_due_at(100.0, 50)
        assert due == pytest.approx(100.0 + 2.0 - 0.1 - 1.6, rel=1e-6)

    def test_pressure_skips_hopeless_windows(self):
        """When no flush width could land inside the budget the
        pressure rule stands down (full/deadline triggers own the
        backlog) instead of thrashing the operating point."""
        controller = self._controller(safety_s=0.1)
        controller.observe_flush(10, 3.0, backlog=0, reason="full")
        # predicted 16-wide solve is 4.8 s > the whole 2 s budget
        assert controller.pressure_due_at(100.0, 50) == float("inf")

    def test_latency_percentile_interpolates(self):
        controller = self._controller()
        for value in (0.1, 0.2, 0.3, 0.4):
            controller.record_latency(value)
        assert 0.3 <= controller.latency_percentile() <= 0.4
        assert AdaptiveBatchController(4, 0.1).latency_percentile() == 0.0

    def test_widen_capped_by_headroom_model(self):
        """The widen gate admits only widths whose predicted solve
        fits the headroom — the loop converges instead of overshooting
        into budget-eating solves."""
        controller = self._controller(headroom_fraction=0.5)
        # 50 ms/window learned from two flushes
        controller.observe_flush(4, 0.2, backlog=0, reason="deadline")
        controller.observe_flush(8, 0.4, backlog=0, reason="deadline")
        cap = controller._headroom_cap()
        assert cap == 20  # (0.5 * 2.0 s) / 0.05 s-per-window
        for _ in range(10):
            controller.observe_flush(
                controller.effective_batch,
                0.05 * controller.effective_batch,
                backlog=1000,
                reason="full",
            )
        assert controller.effective_batch == cap

    def test_publishes_state_to_telemetry(self):
        registry = MetricsRegistry()
        controller = AdaptiveBatchController(
            8, 0.2, meter=registry.meter()
        )
        controller.observe_flush(8, 0.05, backlog=100, reason="full")
        snap = registry.snapshot()
        assert snap.gauge_value("ingest_effective_batch") == 16
        assert snap.counter_total("ingest_controller_widen") == 1

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(budget_s=0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(headroom_fraction=0.9, shed_fraction=0.8)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(shed_factor=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(widen_step=0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(max_batch_factor=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(0, 0.25)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(4, 0.0)

    def test_fixed_controller_never_moves(self):
        controller = FixedBatchController(16, 0.25)
        controller.record_latency(5.0)
        controller.observe_flush(16, 9.0, backlog=1000, reason="full")
        assert controller.effective_batch == 16
        assert controller.effective_flush_s == 0.25
        assert controller.pressure_due_at(0.0, 1000) == float("inf")
        assert controller.at_base_point


def _system(config, record):
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    return system


async def _run_clients_open(gateway, clients):
    """Run clients to completion; the gateway stays open."""
    already = len(gateway.results)
    links = [gateway.connect_local() for _ in clients]
    reports = await asyncio.gather(
        *[
            client.run(reader, writer)
            for client, (reader, writer) in zip(clients, links)
        ]
    )
    while len(gateway.results) < already + len(clients):
        await asyncio.sleep(0.005)
    return reports


async def _run_clients(gateway, clients):
    reports = await _run_clients_open(gateway, clients)
    await gateway.close()
    return reports


class TestAdaptiveGateway:
    def test_steady_state_schedule_identical_to_fixed(
        self, small_config, database
    ):
        """The bit-identity precondition: on a paced, unthreatened
        workload the adaptive gateway's batch compositions equal the
        fixed gateway's, flush for flush."""
        records = [database.load("100"), database.load("119")]
        systems = [_system(small_config, record) for record in records]

        def run(adaptive: bool):
            gateway = IngestGateway(
                batch_size=8, flush_ms=120.0, adaptive=adaptive
            )
            clients = [
                NodeClient(system, record, max_packets=3, interval_s=0.3)
                for system, record in zip(systems, records)
            ]
            asyncio.run(_run_clients(gateway, clients))
            return gateway

        fixed = run(adaptive=False)
        adaptive = run(adaptive=True)
        assert adaptive.controller.at_base_point
        assert adaptive.controller.widen_count == 0
        assert adaptive.controller.shed_count == 0
        assert [
            (members, reason)
            for _key, members, reason in adaptive.batch_log
        ] == [
            (members, reason) for _key, members, reason in fixed.batch_log
        ]
        fixed_by_record = {r.record: r for r in fixed.results}
        for result in adaptive.results:
            reference = fixed_by_record[result.record]
            assert result.iterations == reference.iterations
            for ours, theirs in zip(
                result.samples_adu, reference.samples_adu
            ):
                np.testing.assert_array_equal(ours, theirs)

    def test_burst_widens_batches_beyond_base(
        self, small_config, database
    ):
        """An all-at-once backlog makes the controller widen past the
        configured width (the fixed gateway cannot)."""
        record = database.load("100")
        system = _system(small_config, record)

        gateway = IngestGateway(
            batch_size=2,
            flush_ms=120.0,
            adaptive=True,
            max_pending=256,
        )
        client = NodeClient(system, record, max_packets=8, interval_s=0.0)
        asyncio.run(_run_clients(gateway, [client]))
        assert gateway.stats.windows_decoded == 8
        assert gateway.controller.widen_count >= 1
        widest = max(
            len(members) for _k, members, _r in gateway.batch_log
        )
        assert widest > 2

    def test_pressure_flush_fires_when_budget_tight(
        self, small_config, database
    ):
        """With an artificially tiny budget the pressure rule must
        flush ahead of a long idle deadline."""
        record = database.load("100")
        system = _system(small_config, record)
        config = AdaptiveConfig(budget_s=0.25, safety_s=0.02)

        gateway = IngestGateway(
            batch_size=64,
            flush_ms=5000.0,  # deadline alone would blow the budget
            adaptive=True,
            adaptive_config=config,
        )

        async def scenario():
            # first stream seeds the solve-time model (its windows
            # flush on stream-end drain — the cold start has no model)
            seeder = NodeClient(
                system, record, max_packets=4, interval_s=0.0
            )
            await _run_clients_open(gateway, [seeder])
            # second stream trickles: with the model warm, waiting for
            # the 5 s deadline would blow the 0.25 s budget, so its
            # windows must leave on pressure flushes
            paced = NodeClient(
                system, record, max_packets=4, interval_s=0.4
            )
            reports = await _run_clients_open(gateway, [paced])
            await gateway.close()
            return reports

        asyncio.run(scenario())
        assert gateway.stats.windows_decoded == 8
        assert gateway.stats.flushes_pressure >= 1
        assert gateway.stats.max_latency_s < 5.0
