"""Unit tests of the lossy-channel layer (repro.ingest.channel).

The impairment injector (:class:`LossyLink`) and the receiver-side
gap-recovery state machine (:class:`SequenceTracker` /
:func:`admit_packet`) are tested in isolation here; their end-to-end
composition through a live gateway is covered in ``test_gateway.py``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.coding.fec import encode_parity_body
from repro.core.decoder import PacketPayloadDecoder
from repro.core.packets import EncodedPacket, PacketKind
from repro.errors import ConfigurationError, DecodingError, PacketFormatError
from repro.ingest import (
    HOLD_CAP_EPOCHS,
    FrameKind,
    FrameVerdict,
    LossyChannel,
    LossyLink,
    SequenceTracker,
    StreamRecovery,
    admit_packet,
    encode_frame,
    encoded_packets,
    replay_survivors,
)
from repro.ingest.channel import sequence_delta


class _SinkWriter:
    """Collects written bytes; reassembles frames for assertions."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, data: bytes) -> None:
        self.data.extend(data)

    def frames(self) -> list[tuple[int, bytes]]:
        out, offset = [], 0
        while offset < len(self.data):
            length = int.from_bytes(self.data[offset : offset + 4], "big")
            body = bytes(self.data[offset + 4 : offset + 4 + length])
            out.append((body[0], body[1:]))
            offset += 4 + length
        return out

    def close(self) -> None:
        pass


def _packet_frames(system, record, count):
    packets = encoded_packets(system, record, max_packets=count)
    return packets, [
        encode_frame(FrameKind.PACKET, p.to_bytes()) for p in packets
    ]


def _parity_frame(epoch):
    """The PARITY frame a fec-enabled node emits for one epoch."""
    return encode_frame(
        FrameKind.PARITY,
        encode_parity_body(epoch[0].sequence, [p.to_bytes() for p in epoch]),
    )


def _frames_with_parity(packets, interval):
    """The fec-enabled wire sequence: each epoch's packets + parity."""
    frames = []
    for start in range(0, len(packets), interval):
        epoch = packets[start : start + interval]
        frames.extend(
            encode_frame(FrameKind.PACKET, p.to_bytes()) for p in epoch
        )
        frames.append(_parity_frame(epoch))
    return frames


@pytest.fixture(scope="module")
def stream(small_config, database):
    """One calibrated system + record shared by the link tests."""
    from repro.core import EcgMonitorSystem

    config = small_config.replace(keyframe_interval=4)
    record = database.load("100")
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    return system, record


class TestSequenceDelta:
    def test_in_order(self):
        assert sequence_delta(5, 5) == 0
        assert sequence_delta(5, 6) == 1
        assert sequence_delta(5, 4) == -1

    def test_wraparound(self):
        assert sequence_delta(65535, 0) == 1
        assert sequence_delta(0, 65535) == -1
        assert sequence_delta(65530, 4) == 10


class TestSequenceTracker:
    def test_gap_then_close_stream(self):
        tracker = SequenceTracker()
        assert tracker.delta(0) == 0
        tracker.advance(0)
        assert tracker.delta(3) == 2  # windows 1-2 missing
        tracker.accounting.windows_lost += tracker.delta(3)
        tracker.advance(3)
        tracker.close_stream(6)  # windows 4-5 never sent a reveal
        assert tracker.accounting.windows_lost == 4

    def test_close_stream_without_gap_is_noop(self):
        tracker = SequenceTracker()
        tracker.advance(0)
        tracker.advance(1)
        tracker.close_stream(2)
        assert tracker.accounting.windows_lost == 0


class TestAdmitPacket:
    def _fresh(self, system):
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        return SequenceTracker(), payload

    def test_in_order_stream_all_accepted(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        tracker, payload = self._fresh(system)
        for packet in packets:
            verdict, parsed = admit_packet(
                tracker, payload, packet.to_bytes()
            )
            assert verdict is FrameVerdict.ACCEPT
            payload.decode_payload(parsed)
        assert tracker.accounting.windows_damaged == 0

    def test_corrupt_frame_triggers_resync(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        tracker, payload = self._fresh(system)
        verdict, parsed = admit_packet(
            tracker, payload, packets[0].to_bytes()
        )
        payload.decode_payload(parsed)
        wire = bytearray(packets[1].to_bytes())
        wire[-1] ^= 0x01
        verdict, parsed = admit_packet(tracker, payload, bytes(wire))
        assert verdict is FrameVerdict.CORRUPT
        assert parsed is None
        assert tracker.accounting.frames_corrupt == 1
        assert payload.awaiting_keyframe
        # next good diff reveals the gap and is itself unusable
        verdict, _ = admit_packet(tracker, payload, packets[2].to_bytes())
        assert verdict is FrameVerdict.RESYNC_SKIP
        assert tracker.accounting.windows_lost == 1
        assert tracker.accounting.windows_resynced == 1
        # the keyframe at sequence 4 re-arms the chain
        verdict, _ = admit_packet(tracker, payload, packets[3].to_bytes())
        assert verdict is FrameVerdict.RESYNC_SKIP
        verdict, parsed = admit_packet(
            tracker, payload, packets[4].to_bytes()
        )
        assert verdict is FrameVerdict.ACCEPT
        assert parsed.kind is PacketKind.KEYFRAME
        payload.decode_payload(parsed)
        assert not payload.awaiting_keyframe

    def test_duplicate_is_stale(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 2)
        tracker, payload = self._fresh(system)
        for packet in packets:
            _, parsed = admit_packet(tracker, payload, packet.to_bytes())
            payload.decode_payload(parsed)
        verdict, _ = admit_packet(
            tracker, payload, packets[0].to_bytes()
        )
        assert verdict is FrameVerdict.STALE
        assert tracker.accounting.frames_duplicate == 1

    def test_decode_payload_guards_resync_misuse(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 2)
        _, payload = self._fresh(system)
        payload.decode_payload(packets[0])
        payload.resync()
        with pytest.raises(DecodingError, match="resync"):
            payload.decode_payload(packets[1])

    def test_diff_before_any_keyframe_is_skipped(self, stream):
        """Joining mid-stream (first keyframe lost) must skip diffs,
        not crash."""
        system, record = stream
        packets, _ = _packet_frames(system, record, 3)
        tracker, payload = self._fresh(system)
        verdict, _ = admit_packet(tracker, payload, packets[1].to_bytes())
        assert verdict is FrameVerdict.RESYNC_SKIP
        assert tracker.accounting.windows_lost == 1  # the keyframe
        assert tracker.accounting.windows_resynced == 1


class TestStreamRecovery:
    """The two-tier (parity + NACK) recovery state machine, driven
    frame by frame with deterministic losses."""

    def _fresh(self, system, **kwargs):
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        tracker = SequenceTracker()
        nacks: list[list[int]] = []
        recovery = StreamRecovery(
            tracker, payload, fec=True, on_nack=nacks.append, **kwargs
        )
        return tracker, payload, recovery, nacks

    @staticmethod
    def _pump(payload, events):
        """Decode ACCEPTs exactly as the gateway would; log verdicts."""
        log = []
        for verdict, packet in events:
            if verdict is FrameVerdict.ACCEPT:
                payload.decode_payload(packet)
            log.append(
                (verdict, None if packet is None else packet.sequence)
            )
        return log

    def test_fec_off_is_the_plain_admission_path(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        tracker = SequenceTracker()
        recovery = StreamRecovery(tracker, payload, fec=False)
        for packet in packets:
            events = recovery.on_packet(packet.to_bytes())
            assert self._pump(payload, events) == [
                (FrameVerdict.ACCEPT, packet.sequence)
            ]
        # parity is inert on a fec-off stream
        assert recovery.on_parity(b"\x00\x00\x00\x01") == []
        assert tracker.accounting.windows_damaged == 0
        assert not recovery.holding

    def test_parity_recovers_single_loss_without_nack(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 4)
        _, payload, recovery, nacks = self._fresh(system)
        log = []
        for index in (0, 1, 3):  # sequence 2 lost on air
            log += self._pump(
                payload, recovery.on_packet(packets[index].to_bytes())
            )
        assert recovery.holding  # 3 held behind the open gap, uncharged
        assert log == [
            (FrameVerdict.ACCEPT, 0),
            (FrameVerdict.ACCEPT, 1),
        ]
        log = self._pump(
            payload,
            recovery.on_parity(
                encode_parity_body(0, [p.to_bytes() for p in packets])
            ),
        )
        assert log == [
            (FrameVerdict.ACCEPT, 2),
            (FrameVerdict.ACCEPT, 3),
        ]
        accounting = recovery.tracker.accounting
        assert accounting.windows_recovered_parity == 1
        assert accounting.windows_lost == 0
        assert nacks == []  # tier 1 needed zero round trips
        assert not recovery.holding

    def test_two_losses_in_one_epoch_nack_then_fill(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 4)
        _, payload, recovery, nacks = self._fresh(system)
        for index in (0, 3):  # sequences 1 and 2 lost
            self._pump(payload, recovery.on_packet(packets[index].to_bytes()))
        assert self._pump(
            payload,
            recovery.on_parity(
                encode_parity_body(0, [p.to_bytes() for p in packets])
            ),
        ) == []
        assert nacks == [[1, 2]]  # parity cannot cover a double loss
        assert recovery.nacks_sent == 2
        # the node's retransmissions fill the gap
        assert self._pump(
            payload, recovery.on_packet(packets[1].to_bytes())
        ) == []
        log = self._pump(payload, recovery.on_packet(packets[2].to_bytes()))
        assert log == [
            (FrameVerdict.ACCEPT, 1),
            (FrameVerdict.ACCEPT, 2),
            (FrameVerdict.ACCEPT, 3),
        ]
        accounting = recovery.tracker.accounting
        assert accounting.windows_recovered_retransmit == 2
        assert accounting.windows_recovered == 2
        assert accounting.windows_lost == 0

    def test_nack_budget_exhaustion_falls_back_to_resync(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        _, payload, recovery, nacks = self._fresh(system, nack_budget=1)
        for index in (0, 3):  # two losses, budget allows one NACK
            self._pump(payload, recovery.on_packet(packets[index].to_bytes()))
        log = self._pump(
            payload,
            recovery.on_parity(
                encode_parity_body(0, [p.to_bytes() for p in packets[:4]])
            ),
        )
        # blown budget: the held run drains through keyframe resync
        assert log == [(FrameVerdict.RESYNC_SKIP, 3)]
        assert nacks == []
        accounting = recovery.tracker.accounting
        assert accounting.windows_lost == 2
        assert accounting.windows_resynced == 1
        assert accounting.windows_recovered == 0
        assert not recovery.holding
        # the next keyframe re-arms the stream as in PR 4
        log = self._pump(payload, recovery.on_packet(packets[4].to_bytes()))
        assert log == [(FrameVerdict.ACCEPT, 4)]

    def test_parity_reveals_and_recovers_tail_loss(self, stream):
        """The epoch's last packet is lost with nothing after it to
        expose the gap — the parity frame itself reveals it."""
        system, record = stream
        packets, _ = _packet_frames(system, record, 4)
        _, payload, recovery, nacks = self._fresh(system)
        for index in (0, 1, 2):
            self._pump(payload, recovery.on_packet(packets[index].to_bytes()))
        assert not recovery.holding  # the gap is not even visible yet
        log = self._pump(
            payload,
            recovery.on_parity(
                encode_parity_body(0, [p.to_bytes() for p in packets])
            ),
        )
        assert log == [(FrameVerdict.ACCEPT, 3)]
        assert recovery.tracker.accounting.windows_recovered_parity == 1
        assert nacks == []

    def test_lost_parity_nacks_at_next_keyframe(self, stream):
        """Packet 3 and its epoch's parity both lost: the next
        keyframe's arrival is the frame-driven NACK trigger."""
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        _, payload, recovery, nacks = self._fresh(system)
        for index in (0, 1, 2):
            self._pump(payload, recovery.on_packet(packets[index].to_bytes()))
        assert self._pump(
            payload, recovery.on_packet(packets[4].to_bytes())
        ) == []
        assert nacks == [[3]]
        log = self._pump(payload, recovery.on_packet(packets[3].to_bytes()))
        assert log == [
            (FrameVerdict.ACCEPT, 3),
            (FrameVerdict.ACCEPT, 4),
        ]
        accounting = recovery.tracker.accounting
        assert accounting.windows_recovered_retransmit == 1
        assert accounting.windows_lost == 0

    def test_corrupt_frame_recovered_by_parity_not_resynced(self, stream):
        """With fec on, a CRC-failed frame defers the resync: the gap
        it leaves is recoverable, and here parity recovers it."""
        system, record = stream
        packets, _ = _packet_frames(system, record, 4)
        _, payload, recovery, _ = self._fresh(system)
        self._pump(payload, recovery.on_packet(packets[0].to_bytes()))
        wire = bytearray(packets[1].to_bytes())
        wire[-1] ^= 0x01
        assert self._pump(payload, recovery.on_packet(bytes(wire))) == [
            (FrameVerdict.CORRUPT, None)
        ]
        for index in (2, 3):
            self._pump(payload, recovery.on_packet(packets[index].to_bytes()))
        log = self._pump(
            payload,
            recovery.on_parity(
                encode_parity_body(0, [p.to_bytes() for p in packets])
            ),
        )
        assert log == [
            (FrameVerdict.ACCEPT, 1),
            (FrameVerdict.ACCEPT, 2),
            (FrameVerdict.ACCEPT, 3),
        ]
        accounting = recovery.tracker.accounting
        assert accounting.frames_corrupt == 1
        assert accounting.windows_recovered_parity == 1
        assert accounting.windows_lost == 0

    def test_hold_cap_overflow_gives_up(self, stream):
        system, record = stream
        total = HOLD_CAP_EPOCHS * system.config.keyframe_interval + 2
        packets, _ = _packet_frames(system, record, total)
        _, payload, recovery, nacks = self._fresh(system)
        self._pump(payload, recovery.on_packet(packets[0].to_bytes()))
        log = []
        for packet in packets[2:]:  # sequence 1 lost, no parity arrives
            log += self._pump(payload, recovery.on_packet(packet.to_bytes()))
        assert not recovery.holding  # the cap overflowed and drained
        assert nacks == [[1]]  # NACKed once at the first epoch boundary
        accounting = recovery.tracker.accounting
        accepted = sum(
            1 for verdict, _ in log if verdict is FrameVerdict.ACCEPT
        )
        assert accounting.windows_lost == 1
        assert (
            accepted
            + 1  # sequence 0, admitted before the gap
            + accounting.windows_lost
            + accounting.windows_resynced
            == total
        )

    def test_wraparound_retransmit_fill_is_not_stale(self, stream):
        """Satellite: a gap at 65534 filled after the counter wrapped
        to 2 must classify as a retransmit fill, not a stale frame."""
        system, record = stream
        packets, _ = _packet_frames(system, record, 1)
        keyframe = packets[0]

        def at(sequence):
            return replace(keyframe, sequence=sequence).to_bytes()

        tracker, payload, recovery, nacks = self._fresh(system)
        tracker.expected = 65533
        log = self._pump(payload, recovery.on_packet(at(65533)))
        assert log == [(FrameVerdict.ACCEPT, 65533)]
        # 65534 lost; the stream wraps through 65535 -> 0 -> 1 -> 2
        for sequence in (65535, 0, 1, 2):
            assert self._pump(
                payload, recovery.on_packet(at(sequence))
            ) == []
        assert nacks == [[65534]]
        log = self._pump(payload, recovery.on_packet(at(65534)))
        assert log == [
            (FrameVerdict.ACCEPT, 65534),
            (FrameVerdict.ACCEPT, 65535),
            (FrameVerdict.ACCEPT, 0),
            (FrameVerdict.ACCEPT, 1),
            (FrameVerdict.ACCEPT, 2),
        ]
        accounting = tracker.accounting
        assert accounting.windows_recovered_retransmit == 1
        assert accounting.frames_duplicate == 0
        assert accounting.windows_lost == 0
        assert tracker.expected == 3

    def test_late_retransmit_after_give_up(self, stream):
        """Satellite regression: a retransmit arriving after recovery
        resynced past its window is counted, not mistaken for a
        duplicate — and conservation still holds."""
        system, record = stream
        packets, frames = _packet_frames(system, record, 5)
        sink = _SinkWriter()
        link = LossyChannel(drop_sequences=(1,), seed=0).wrap(sink)
        for frame in frames:
            link.write(frame)
        _, payload, recovery, _ = self._fresh(system, nack_budget=0)
        log = []
        for _, body in link.stats.delivered_frames:
            log += self._pump(payload, recovery.on_packet(body))
        log += self._pump(payload, recovery.close())
        assert not recovery.holding
        # the dropped frame is redelivered long after the give-up
        late = self._pump(payload, recovery.on_packet(packets[1].to_bytes()))
        assert late == [(FrameVerdict.LATE_RETRANSMIT, 1)]
        accounting = recovery.tracker.accounting
        assert accounting.frames_late_retransmit == 1
        assert accounting.frames_duplicate == 0
        accepted = sum(
            1 for verdict, _ in log if verdict is FrameVerdict.ACCEPT
        )
        assert (
            accepted
            + accounting.windows_lost
            + accounting.windows_resynced
            == len(packets)
        )


class TestLossyLink:
    def test_passthrough_when_channel_is_clean(self, stream):
        system, record = stream
        _, frames = _packet_frames(system, record, 4)
        sink = _SinkWriter()
        link = LossyChannel(seed=1).wrap(sink)
        assert not LossyChannel(seed=1).impairs
        for frame in frames:
            link.write(frame)
        assert bytes(sink.data) == b"".join(frames)
        assert link.stats.frames_delivered == 4
        assert link.stats.loss_events == 0

    def test_partial_writes_reassemble_frames(self, stream):
        """Byte-at-a-time writes must still split on frame boundaries
        (TCP gives no write-boundary guarantees)."""
        system, record = stream
        _, frames = _packet_frames(system, record, 2)
        sink = _SinkWriter()
        link = LossyChannel(seed=1).wrap(sink)
        blob = b"".join(frames)
        for index in range(len(blob)):
            link.write(blob[index : index + 1])
        assert bytes(sink.data) == blob

    def test_forced_drop_sequences(self, stream):
        system, record = stream
        packets, frames = _packet_frames(system, record, 5)
        sink = _SinkWriter()
        link = LossyChannel(drop_sequences=(1, 3), seed=0).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.frames_dropped == 2
        assert link.stats.dropped_sequences == [1, 3]
        delivered = [
            EncodedPacket.from_bytes(body).sequence
            for body in link.stats.delivered
        ]
        assert delivered == [0, 2, 4]

    def test_duplicate_rate_one_doubles_every_frame(self, stream):
        system, record = stream
        _, frames = _packet_frames(system, record, 3)
        sink = _SinkWriter()
        link = LossyChannel(duplicate=1.0, seed=0).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.frames_duplicated == 3
        assert link.stats.frames_delivered == 6
        sequences = [
            EncodedPacket.from_bytes(body).sequence
            for body in link.stats.delivered
        ]
        assert sequences == [0, 0, 1, 1, 2, 2]

    def test_corrupt_rate_one_flips_exactly_one_bit(self, stream):
        system, record = stream
        packets, frames = _packet_frames(system, record, 2)
        sink = _SinkWriter()
        link = LossyChannel(corrupt=1.0, seed=3).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.frames_corrupted == 2
        for original, body in zip(packets, link.stats.delivered):
            clean = original.to_bytes()
            assert len(body) == len(clean)
            diff_bits = sum(
                bin(a ^ b).count("1") for a, b in zip(clean, body)
            )
            assert diff_bits == 1
            with pytest.raises(PacketFormatError):
                EncodedPacket.from_bytes(body)

    def test_reorder_holds_within_window_and_flushes_on_control(
        self, stream
    ):
        """A held frame is passed by later frames and lands out of
        order; nothing is lost, and control frames flush the holds so
        BYE never overtakes data."""
        system, record = stream
        _, frames = _packet_frames(system, record, 8)
        displaced = None
        for seed in range(32):
            sink = _SinkWriter()
            link = LossyChannel(
                reorder=0.5, reorder_window=2, seed=seed
            ).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            kinds = [kind for kind, _ in sink.frames()]
            # every PACKET delivered exactly once, BYE always last
            assert kinds.count(int(FrameKind.PACKET)) == 8
            assert kinds[-1] == int(FrameKind.BYE)
            sequences = [
                EncodedPacket.from_bytes(body).sequence
                for kind, body in sink.frames()
                if kind == int(FrameKind.PACKET)
            ]
            assert sorted(sequences) == list(range(8))
            if sequences != list(range(8)):
                displaced = (seed, sequences, link.stats.frames_reordered)
                break
        assert displaced is not None, "no seed in 0..31 ever reordered"
        assert displaced[2] >= 1

    def test_same_seed_same_fates(self, stream):
        system, record = stream
        _, frames = _packet_frames(system, record, 12)
        outcomes = []
        for _ in range(2):
            sink = _SinkWriter()
            link = LossyChannel(
                loss=0.3, duplicate=0.2, corrupt=0.2, reorder=0.2, seed=42
            ).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            outcomes.append((bytes(sink.data), link.stats.frames_dropped))
        assert outcomes[0] == outcomes[1]

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            LossyChannel(loss=1.5)
        with pytest.raises(ConfigurationError):
            LossyChannel(corrupt=-0.1)
        with pytest.raises(ConfigurationError):
            LossyChannel(reorder_window=0)

    def test_fate_log_collapses_runs_into_burst_events(self, stream):
        """Satellite: adjacent losses are one burst event — the tight
        damage bound charges resync skips per burst, not per loss."""
        system, record = stream
        _, frames = _packet_frames(system, record, 6)
        sink = _SinkWriter()
        link = LossyChannel(drop_sequences=(1, 2, 4), seed=0).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.fate_log == [
            "delivered",
            "dropped",
            "dropped",
            "delivered",
            "dropped",
            "delivered",
        ]
        assert link.stats.loss_events == 3
        assert link.stats.burst_events == 2  # {1,2} collapse to one

    def test_parity_frames_impaired_separately(self, stream):
        """PARITY frames ride the same link (loss + forced epoch drops)
        but never perturb the PACKET fate stream or its dice."""
        system, record = stream
        interval = system.config.keyframe_interval
        packets, _ = _packet_frames(system, record, 2 * interval)
        sink = _SinkWriter()
        link = LossyChannel(drop_parity_epochs=(interval,), seed=0).wrap(sink)
        for frame in _frames_with_parity(packets, interval):
            link.write(frame)
        assert link.stats.parity_seen == 2
        assert link.stats.parity_dropped == 1
        # the classic bytes view stays PACKET-only ...
        assert len(link.stats.delivered) == len(packets)
        assert len(link.stats.fate_log) == len(packets)
        # ... while delivered_frames carries the surviving parity
        kinds = [kind for kind, _ in link.stats.delivered_frames]
        assert kinds.count(int(FrameKind.PARITY)) == 1
        assert kinds.count(int(FrameKind.PACKET)) == len(packets)
        surviving = next(
            body
            for kind, body in link.stats.delivered_frames
            if kind == int(FrameKind.PARITY)
        )
        assert int.from_bytes(surviving[0:2], "big") == 0  # epoch 0 kept


class TestReplaySurvivors:
    def test_conservation_invariant_under_mixed_impairment(self, stream):
        """accepted + lost + resynced == sent, for any impairment mix
        — nothing disappears from the books."""
        system, record = stream
        total = 16
        _, frames = _packet_frames(system, record, total)
        for seed in range(8):
            sink = _SinkWriter()
            link = LossyChannel(
                loss=0.2,
                reorder=0.15,
                duplicate=0.15,
                corrupt=0.1,
                seed=seed,
            ).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            accepted, accounting = replay_survivors(
                system.config,
                system.encoder.codebook,
                link.stats.delivered,
                windows_sent=total,
            )
            assert (
                len(accepted)
                + accounting.windows_lost
                + accounting.windows_resynced
                == total
            ), f"seed {seed} violated conservation"

    def test_fec_replay_conserves_and_never_does_worse(self, stream):
        """With parity in the stream, every recovered window is
        bit-identical to the clean decode, conservation stays exact,
        and total damage never exceeds the fec-off replay's."""
        system, record = stream
        interval = system.config.keyframe_interval
        total = 4 * interval
        packets, _ = _packet_frames(system, record, total)
        frames = _frames_with_parity(packets, interval)
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        reference = payload.measurement_block(packets, np.float64)
        for seed in range(6):
            sink = _SinkWriter()
            link = LossyChannel(loss=0.15, seed=seed).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            with_fec, acc_fec = replay_survivors(
                system.config,
                system.encoder.codebook,
                link.stats.delivered_frames,
                windows_sent=total,
                fec=True,
            )
            without, acc_off = replay_survivors(
                system.config,
                system.encoder.codebook,
                link.stats.delivered,
                windows_sent=total,
            )
            assert (
                len(with_fec)
                + acc_fec.windows_lost
                + acc_fec.windows_resynced
                == total
            ), f"seed {seed} violated conservation"
            assert (
                acc_fec.windows_lost + acc_fec.windows_resynced
                <= acc_off.windows_lost + acc_off.windows_resynced
            ), f"seed {seed}: fec did worse than no fec"
            for sequence, column in with_fec:
                np.testing.assert_array_equal(
                    column, reference[:, sequence]
                )

    def test_clean_channel_fec_replay_is_loss_free(self, stream):
        """A clean channel with parity in the stream: every window
        accepted, zero recoveries, zero NACK spend."""
        system, record = stream
        interval = system.config.keyframe_interval
        total = 2 * interval + 1  # a partial final epoch too
        packets, _ = _packet_frames(system, record, total)
        sink = _SinkWriter()
        link = LossyChannel(seed=0).wrap(sink)
        for frame in _frames_with_parity(packets, interval):
            link.write(frame)
        accepted, accounting = replay_survivors(
            system.config,
            system.encoder.codebook,
            link.stats.delivered_frames,
            windows_sent=total,
            fec=True,
        )
        assert [seq for seq, _ in accepted] == list(range(total))
        assert accounting.windows_damaged == 0
        assert accounting.windows_recovered == 0

    def test_clean_channel_accepts_everything(self, stream):
        system, record = stream
        total = 6
        packets, _ = _packet_frames(system, record, total)
        accepted, accounting = replay_survivors(
            system.config,
            system.encoder.codebook,
            [p.to_bytes() for p in packets],
            windows_sent=total,
        )
        assert [seq for seq, _ in accepted] == list(range(total))
        assert accounting.windows_damaged == 0
        # columns equal a straight stage-1/2 decode
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        reference = payload.measurement_block(packets, np.float64)
        for index, (_, column) in enumerate(accepted):
            np.testing.assert_array_equal(column, reference[:, index])


def test_lossy_link_exported():
    assert isinstance(LossyChannel(seed=0).wrap(_SinkWriter()), LossyLink)
