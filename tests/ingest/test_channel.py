"""Unit tests of the lossy-channel layer (repro.ingest.channel).

The impairment injector (:class:`LossyLink`) and the receiver-side
gap-recovery state machine (:class:`SequenceTracker` /
:func:`admit_packet`) are tested in isolation here; their end-to-end
composition through a live gateway is covered in ``test_gateway.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import PacketPayloadDecoder
from repro.core.packets import EncodedPacket, PacketKind
from repro.errors import ConfigurationError, DecodingError, PacketFormatError
from repro.ingest import (
    FrameKind,
    FrameVerdict,
    LossyChannel,
    LossyLink,
    SequenceTracker,
    admit_packet,
    encode_frame,
    encoded_packets,
    replay_survivors,
)
from repro.ingest.channel import sequence_delta


class _SinkWriter:
    """Collects written bytes; reassembles frames for assertions."""

    def __init__(self) -> None:
        self.data = bytearray()

    def write(self, data: bytes) -> None:
        self.data.extend(data)

    def frames(self) -> list[tuple[int, bytes]]:
        out, offset = [], 0
        while offset < len(self.data):
            length = int.from_bytes(self.data[offset : offset + 4], "big")
            body = bytes(self.data[offset + 4 : offset + 4 + length])
            out.append((body[0], body[1:]))
            offset += 4 + length
        return out

    def close(self) -> None:
        pass


def _packet_frames(system, record, count):
    packets = encoded_packets(system, record, max_packets=count)
    return packets, [
        encode_frame(FrameKind.PACKET, p.to_bytes()) for p in packets
    ]


@pytest.fixture(scope="module")
def stream(small_config, database):
    """One calibrated system + record shared by the link tests."""
    from repro.core import EcgMonitorSystem

    config = small_config.replace(keyframe_interval=4)
    record = database.load("100")
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    return system, record


class TestSequenceDelta:
    def test_in_order(self):
        assert sequence_delta(5, 5) == 0
        assert sequence_delta(5, 6) == 1
        assert sequence_delta(5, 4) == -1

    def test_wraparound(self):
        assert sequence_delta(65535, 0) == 1
        assert sequence_delta(0, 65535) == -1
        assert sequence_delta(65530, 4) == 10


class TestSequenceTracker:
    def test_gap_then_close_stream(self):
        tracker = SequenceTracker()
        assert tracker.delta(0) == 0
        tracker.advance(0)
        assert tracker.delta(3) == 2  # windows 1-2 missing
        tracker.accounting.windows_lost += tracker.delta(3)
        tracker.advance(3)
        tracker.close_stream(6)  # windows 4-5 never sent a reveal
        assert tracker.accounting.windows_lost == 4

    def test_close_stream_without_gap_is_noop(self):
        tracker = SequenceTracker()
        tracker.advance(0)
        tracker.advance(1)
        tracker.close_stream(2)
        assert tracker.accounting.windows_lost == 0


class TestAdmitPacket:
    def _fresh(self, system):
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        return SequenceTracker(), payload

    def test_in_order_stream_all_accepted(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        tracker, payload = self._fresh(system)
        for packet in packets:
            verdict, parsed = admit_packet(
                tracker, payload, packet.to_bytes()
            )
            assert verdict is FrameVerdict.ACCEPT
            payload.decode_payload(parsed)
        assert tracker.accounting.windows_damaged == 0

    def test_corrupt_frame_triggers_resync(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 5)
        tracker, payload = self._fresh(system)
        verdict, parsed = admit_packet(
            tracker, payload, packets[0].to_bytes()
        )
        payload.decode_payload(parsed)
        wire = bytearray(packets[1].to_bytes())
        wire[-1] ^= 0x01
        verdict, parsed = admit_packet(tracker, payload, bytes(wire))
        assert verdict is FrameVerdict.CORRUPT
        assert parsed is None
        assert tracker.accounting.frames_corrupt == 1
        assert payload.awaiting_keyframe
        # next good diff reveals the gap and is itself unusable
        verdict, _ = admit_packet(tracker, payload, packets[2].to_bytes())
        assert verdict is FrameVerdict.RESYNC_SKIP
        assert tracker.accounting.windows_lost == 1
        assert tracker.accounting.windows_resynced == 1
        # the keyframe at sequence 4 re-arms the chain
        verdict, _ = admit_packet(tracker, payload, packets[3].to_bytes())
        assert verdict is FrameVerdict.RESYNC_SKIP
        verdict, parsed = admit_packet(
            tracker, payload, packets[4].to_bytes()
        )
        assert verdict is FrameVerdict.ACCEPT
        assert parsed.kind is PacketKind.KEYFRAME
        payload.decode_payload(parsed)
        assert not payload.awaiting_keyframe

    def test_duplicate_is_stale(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 2)
        tracker, payload = self._fresh(system)
        for packet in packets:
            _, parsed = admit_packet(tracker, payload, packet.to_bytes())
            payload.decode_payload(parsed)
        verdict, _ = admit_packet(
            tracker, payload, packets[0].to_bytes()
        )
        assert verdict is FrameVerdict.STALE
        assert tracker.accounting.frames_duplicate == 1

    def test_decode_payload_guards_resync_misuse(self, stream):
        system, record = stream
        packets, _ = _packet_frames(system, record, 2)
        _, payload = self._fresh(system)
        payload.decode_payload(packets[0])
        payload.resync()
        with pytest.raises(DecodingError, match="resync"):
            payload.decode_payload(packets[1])

    def test_diff_before_any_keyframe_is_skipped(self, stream):
        """Joining mid-stream (first keyframe lost) must skip diffs,
        not crash."""
        system, record = stream
        packets, _ = _packet_frames(system, record, 3)
        tracker, payload = self._fresh(system)
        verdict, _ = admit_packet(tracker, payload, packets[1].to_bytes())
        assert verdict is FrameVerdict.RESYNC_SKIP
        assert tracker.accounting.windows_lost == 1  # the keyframe
        assert tracker.accounting.windows_resynced == 1


class TestLossyLink:
    def test_passthrough_when_channel_is_clean(self, stream):
        system, record = stream
        _, frames = _packet_frames(system, record, 4)
        sink = _SinkWriter()
        link = LossyChannel(seed=1).wrap(sink)
        assert not LossyChannel(seed=1).impairs
        for frame in frames:
            link.write(frame)
        assert bytes(sink.data) == b"".join(frames)
        assert link.stats.frames_delivered == 4
        assert link.stats.loss_events == 0

    def test_partial_writes_reassemble_frames(self, stream):
        """Byte-at-a-time writes must still split on frame boundaries
        (TCP gives no write-boundary guarantees)."""
        system, record = stream
        _, frames = _packet_frames(system, record, 2)
        sink = _SinkWriter()
        link = LossyChannel(seed=1).wrap(sink)
        blob = b"".join(frames)
        for index in range(len(blob)):
            link.write(blob[index : index + 1])
        assert bytes(sink.data) == blob

    def test_forced_drop_sequences(self, stream):
        system, record = stream
        packets, frames = _packet_frames(system, record, 5)
        sink = _SinkWriter()
        link = LossyChannel(drop_sequences=(1, 3), seed=0).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.frames_dropped == 2
        assert link.stats.dropped_sequences == [1, 3]
        delivered = [
            EncodedPacket.from_bytes(body).sequence
            for body in link.stats.delivered
        ]
        assert delivered == [0, 2, 4]

    def test_duplicate_rate_one_doubles_every_frame(self, stream):
        system, record = stream
        _, frames = _packet_frames(system, record, 3)
        sink = _SinkWriter()
        link = LossyChannel(duplicate=1.0, seed=0).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.frames_duplicated == 3
        assert link.stats.frames_delivered == 6
        sequences = [
            EncodedPacket.from_bytes(body).sequence
            for body in link.stats.delivered
        ]
        assert sequences == [0, 0, 1, 1, 2, 2]

    def test_corrupt_rate_one_flips_exactly_one_bit(self, stream):
        system, record = stream
        packets, frames = _packet_frames(system, record, 2)
        sink = _SinkWriter()
        link = LossyChannel(corrupt=1.0, seed=3).wrap(sink)
        for frame in frames:
            link.write(frame)
        assert link.stats.frames_corrupted == 2
        for original, body in zip(packets, link.stats.delivered):
            clean = original.to_bytes()
            assert len(body) == len(clean)
            diff_bits = sum(
                bin(a ^ b).count("1") for a, b in zip(clean, body)
            )
            assert diff_bits == 1
            with pytest.raises(PacketFormatError):
                EncodedPacket.from_bytes(body)

    def test_reorder_holds_within_window_and_flushes_on_control(
        self, stream
    ):
        """A held frame is passed by later frames and lands out of
        order; nothing is lost, and control frames flush the holds so
        BYE never overtakes data."""
        system, record = stream
        _, frames = _packet_frames(system, record, 8)
        displaced = None
        for seed in range(32):
            sink = _SinkWriter()
            link = LossyChannel(
                reorder=0.5, reorder_window=2, seed=seed
            ).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            kinds = [kind for kind, _ in sink.frames()]
            # every PACKET delivered exactly once, BYE always last
            assert kinds.count(int(FrameKind.PACKET)) == 8
            assert kinds[-1] == int(FrameKind.BYE)
            sequences = [
                EncodedPacket.from_bytes(body).sequence
                for kind, body in sink.frames()
                if kind == int(FrameKind.PACKET)
            ]
            assert sorted(sequences) == list(range(8))
            if sequences != list(range(8)):
                displaced = (seed, sequences, link.stats.frames_reordered)
                break
        assert displaced is not None, "no seed in 0..31 ever reordered"
        assert displaced[2] >= 1

    def test_same_seed_same_fates(self, stream):
        system, record = stream
        _, frames = _packet_frames(system, record, 12)
        outcomes = []
        for _ in range(2):
            sink = _SinkWriter()
            link = LossyChannel(
                loss=0.3, duplicate=0.2, corrupt=0.2, reorder=0.2, seed=42
            ).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            outcomes.append((bytes(sink.data), link.stats.frames_dropped))
        assert outcomes[0] == outcomes[1]

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            LossyChannel(loss=1.5)
        with pytest.raises(ConfigurationError):
            LossyChannel(corrupt=-0.1)
        with pytest.raises(ConfigurationError):
            LossyChannel(reorder_window=0)


class TestReplaySurvivors:
    def test_conservation_invariant_under_mixed_impairment(self, stream):
        """accepted + lost + resynced == sent, for any impairment mix
        — nothing disappears from the books."""
        system, record = stream
        total = 16
        _, frames = _packet_frames(system, record, total)
        for seed in range(8):
            sink = _SinkWriter()
            link = LossyChannel(
                loss=0.2,
                reorder=0.15,
                duplicate=0.15,
                corrupt=0.1,
                seed=seed,
            ).wrap(sink)
            for frame in frames:
                link.write(frame)
            link.write(encode_frame(FrameKind.BYE))
            accepted, accounting = replay_survivors(
                system.config,
                system.encoder.codebook,
                link.stats.delivered,
                windows_sent=total,
            )
            assert (
                len(accepted)
                + accounting.windows_lost
                + accounting.windows_resynced
                == total
            ), f"seed {seed} violated conservation"

    def test_clean_channel_accepts_everything(self, stream):
        system, record = stream
        total = 6
        packets, _ = _packet_frames(system, record, total)
        accepted, accounting = replay_survivors(
            system.config,
            system.encoder.codebook,
            [p.to_bytes() for p in packets],
            windows_sent=total,
        )
        assert [seq for seq, _ in accepted] == list(range(total))
        assert accounting.windows_damaged == 0
        # columns equal a straight stage-1/2 decode
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        reference = payload.measurement_block(packets, np.float64)
        for index, (_, column) in enumerate(accepted):
            np.testing.assert_array_equal(column, reference[:, index])


def test_lossy_link_exported():
    assert isinstance(LossyChannel(seed=0).wrap(_SinkWriter()), LossyLink)
