"""Federation front door: routing, identity, roll-up, failover.

Every test drives a real :class:`~repro.ingest.FederationFrontDoor`
over TCP on loopback.  The functional tests (routing, bit-identity,
telemetry roll-up) run the workers in thread mode — same code path
minus the fork, fast and sandbox-proof — while the failover test
requires real worker processes (you cannot kill a thread) and skips
where multiprocessing cannot spawn.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.core import EcgMonitorSystem
from repro.errors import ConfigurationError
from repro.fleet.scheduler import operator_key
from repro.ingest import FederationFrontDoor, NodeClient
from repro.utils import HashRing


def _system(config, record):
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    return system


def _serial_reference(system, record, max_packets):
    """Fresh serial decode with the node's codebook (ground truth)."""
    reference = EcgMonitorSystem(system.config)
    reference.encoder.codebook = system.encoder.codebook
    reference.decoder.codebook = system.encoder.codebook
    return reference.stream(
        record, max_packets=max_packets, keep_signals=True
    )


def _assert_matches_serial(result, serial):
    """Same solver trajectory and reconstruction as the serial path."""
    assert result.iterations == [p.iterations for p in serial.packets]
    np.testing.assert_allclose(
        np.concatenate(result.samples_adu),
        serial.reconstructed_adu,
        atol=1e-7,
    )


def _make_clients(
    small_config,
    database,
    specs,
    *,
    max_packets=4,
    interval_s=0.0,
    fec=False,
    reconnect=0,
):
    """One calibrated NodeClient per ``(record_name, group)`` spec."""
    clients = []
    for record_name, group in specs:
        record = database.load(record_name)
        config = dataclasses.replace(
            small_config, seed=small_config.seed + group
        )
        clients.append(
            NodeClient(
                _system(config, record),
                record,
                max_packets=max_packets,
                interval_s=interval_s,
                fec=fec,
                reconnect=reconnect,
                backoff_base_s=0.05,
                backoff_seed=2011,
            )
        )
    return clients


def _run_threaded(front_door, clients):
    """Start, stream every client, close; returns (reports, stats)."""

    async def run():
        port = await front_door.start("127.0.0.1", 0)
        reports = await asyncio.gather(
            *[client.run_tcp("127.0.0.1", port) for client in clients]
        )
        live = front_door.federation_stats()
        await front_door.close()
        return reports, live, front_door.federation_stats()

    return asyncio.run(run())


class TestRouting:
    def test_groups_land_together_where_the_ring_predicts(
        self, small_config, database
    ):
        """Same operator group => same gateway, and an offline ring
        with the same seed predicts which one."""
        specs = [("100", 0), ("101", 0), ("102", 1), ("103", 1)]
        clients = _make_clients(small_config, database, specs)
        front_door = FederationFrontDoor(
            gateways=2, batch_size=4, flush_ms=100.0, use_processes=False
        )
        reports, live, _ = _run_threaded(front_door, clients)
        assert all(report.error is None for report in reports)

        oracle = HashRing(("gw0", "gw1"), seed=2011, replicas=64)
        routed = dict(front_door.route_log)
        assert len(front_door.route_log) == 4
        for client, (_, group) in zip(clients, specs):
            key = operator_key(
                client.system.config, client.system.decoder.precision
            )
            assert routed[key] == oracle.lookup(key)
        # the two groups have distinct keys; each maps to exactly one
        # gateway (possibly the same one — the ring decides)
        keys = {
            operator_key(c.system.config, c.system.decoder.precision)
            for c in clients
        }
        assert len(keys) == 2

    def test_thread_fallback_mode_decodes_and_cannot_be_killed(
        self, small_config, database
    ):
        clients = _make_clients(small_config, database, [("100", 0)])
        front_door = FederationFrontDoor(
            gateways=2, batch_size=4, flush_ms=100.0, use_processes=False
        )

        async def run():
            port = await front_door.start("127.0.0.1", 0)
            report = await clients[0].run_tcp("127.0.0.1", port)
            with pytest.raises(ConfigurationError, match="thread"):
                await front_door.kill_gateway("gw0")
            await front_door.close()
            return report

        report = asyncio.run(run())
        assert report.error is None
        assert report.acked == report.sent == 4


class TestBitIdentity:
    def test_federated_decode_matches_serial_reference(
        self, small_config, database
    ):
        """Per-stream output through the front door is bit-identical
        to the serial single-system decode (the same oracle the
        single-gateway tests pin against)."""
        specs = [("100", 0), ("119", 1)]
        clients = _make_clients(small_config, database, specs)
        front_door = FederationFrontDoor(
            gateways=2, batch_size=4, flush_ms=100.0, use_processes=False
        )
        reports, _, _ = _run_threaded(front_door, clients)
        assert all(report.error is None for report in reports)

        merged = front_door.merged_results()
        assert set(merged) == {"100:0", "119:0"}
        for client in clients:
            result = merged[f"{client.record.name}:0"]
            assert result.clean_close
            assert result.windows_lost == 0
            _assert_matches_serial(
                result,
                _serial_reference(client.system, client.record, 4),
            )


class TestTelemetryRollup:
    def test_front_door_registry_holds_fleet_wide_truth(
        self, small_config, database
    ):
        specs = [("100", 0), ("101", 1), ("102", 1)]
        clients = _make_clients(small_config, database, specs)
        front_door = FederationFrontDoor(
            gateways=2, batch_size=4, flush_ms=100.0, use_processes=False
        )
        reports, live, final = _run_threaded(front_door, clients)
        assert all(report.error is None for report in reports)

        assert live.gateways == 2
        assert live.gateways_alive == 2
        assert final.gateways_alive == 0  # after close
        assert final.streams_routed == 3
        assert final.reroutes == 0
        assert sum(final.streams_by_gateway.values()) == 3
        assert final.sessions_opened == 3
        assert final.windows_decoded == 3 * 4
        assert final.windows_lost == 0
        # the GatewayStats read model materializes from the same
        # registry the sinks would export
        stats = front_door.stats
        assert stats.windows_decoded == 12
        assert stats.sessions_completed == 3
        assert stats.sessions_errored == 0

    def test_session_id_ranges_disjoint_across_gateways(
        self, small_config, database
    ):
        from repro.ingest import SESSION_ID_STRIDE

        specs = [("100", 0), ("101", 1), ("102", 2), ("103", 3)]
        clients = _make_clients(small_config, database, specs)
        front_door = FederationFrontDoor(
            gateways=2, batch_size=4, flush_ms=100.0, use_processes=False
        )
        reports, _, _ = _run_threaded(front_door, clients)
        assert all(report.error is None for report in reports)
        routed = dict(front_door.route_log)
        for client, report in zip(clients, reports):
            key = operator_key(
                client.system.config, client.system.decoder.precision
            )
            index = int(routed[key].removeprefix("gw"))
            assert (
                index * SESSION_ID_STRIDE
                <= report.stream_id
                < (index + 1) * SESSION_ID_STRIDE
            )


class TestFailover:
    def test_kill_one_gateway_reroutes_with_bounded_damage(
        self, small_config, database
    ):
        """Kill the busiest gateway mid-stream: its fec nodes
        reconnect through the front door, replay from their keyframe
        anchor, and every window still decodes — zero loss, ≤
        keyframe_interval resync damage (zero here, thanks to the
        anchor), and the reroute is counted against the dead
        gateway."""
        specs = [("100", 0), ("119", 1), ("217", 2)]
        clients = _make_clients(
            small_config,
            database,
            specs,
            max_packets=8,
            interval_s=0.08,
            fec=True,
            reconnect=5,
        )
        front_door = FederationFrontDoor(
            gateways=2, batch_size=4, flush_ms=100.0
        )

        async def run():
            port = await front_door.start("127.0.0.1", 0)
            if any(
                worker.in_process
                for worker in front_door._workers.values()
            ):
                await front_door.close()
                pytest.skip("multiprocessing unavailable; thread fallback")
            streams = [
                asyncio.ensure_future(
                    client.run_tcp("127.0.0.1", port)
                )
                for client in clients
            ]
            await asyncio.sleep(0.25)
            victim = max(
                front_door._workers.values(),
                key=lambda worker: len(worker.sessions),
            )
            assert victim.sessions, "no gateway had a live session yet"
            await front_door.kill_gateway(victim.gateway_id)
            reports = await asyncio.gather(*streams)
            await front_door.close()
            return reports, victim.gateway_id

        with pytest.warns(RuntimeWarning, match="killed"):
            reports, victim_id = asyncio.run(run())

        keyframe_interval = small_config.keyframe_interval
        assert all(report.error is None for report in reports)
        assert any(report.reconnects >= 1 for report in reports)
        final = front_door.federation_stats()
        assert final.reroutes >= 1
        assert final.windows_lost == 0
        merged = front_door.merged_results()
        for client, report in zip(clients, reports):
            result = merged[f"{client.record.name}:0"]
            # the hard damage bound from ISSUE.md: a gateway death
            # costs each of its streams at most one resync epoch
            assert (
                result.windows_lost + result.windows_resynced
                <= keyframe_interval
            )
            # and the fec anchor replay actually achieves zero
            assert result.windows_lost == 0
            assert result.windows_resynced == 0
            # every window decoded (acked can exceed sent: keyframe
            # replays after the reconnect are re-acked by the new
            # gateway and count again in the cumulative total)
            assert len(result.iterations) == 8
            assert report.sent == 8
            assert report.acked >= report.sent


class TestValidation:
    def test_constructor_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="gateways"):
            FederationFrontDoor(gateways=0)
        with pytest.raises(ConfigurationError, match="heartbeat"):
            FederationFrontDoor(gateways=2, heartbeat_s=0.0)
        with pytest.raises(ConfigurationError, match="heartbeat"):
            FederationFrontDoor(gateways=2, heartbeat_misses=0)

    def test_kill_unknown_gateway_rejected(self):
        front_door = FederationFrontDoor(gateways=2, use_processes=False)

        async def run():
            await front_door.start("127.0.0.1", 0)
            try:
                with pytest.raises(KeyError):
                    await front_door.kill_gateway("gw9")
            finally:
                await front_door.close()

        asyncio.run(run())
