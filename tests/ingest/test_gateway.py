"""Gateway behavior: pooling, flush triggers, faults, backpressure.

Each test drives a real :class:`~repro.ingest.IngestGateway` over the
in-process loopback transport (same session code path as TCP) inside
``asyncio.run``; the decoded output is pinned against the serial
per-stream reference exactly like the fleet tests.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import EcgMonitorSystem
from repro.errors import ConfigurationError
from repro.ingest import (
    FrameKind,
    Handshake,
    IngestGateway,
    NodeClient,
    encode_frame,
    encode_json_frame,
    encoded_packets,
    read_frame,
)


def _system(config, record):
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    return system


def _serial_reference(system, record, max_packets):
    """Fresh serial decode with the node's codebook (ground truth)."""
    reference = EcgMonitorSystem(system.config)
    reference.encoder.codebook = system.encoder.codebook
    reference.decoder.codebook = system.encoder.codebook
    return reference.stream(
        record, max_packets=max_packets, keep_signals=True
    )


def _assert_matches_serial(result, serial):
    """Same solver trajectory and reconstruction as the serial path."""
    assert result.iterations == [p.iterations for p in serial.packets]
    np.testing.assert_allclose(
        np.concatenate(result.samples_adu),
        serial.reconstructed_adu,
        atol=1e-7,
    )


async def _drain_sessions(gateway):
    """Wait for every connection handler to finish."""
    while gateway._conn_tasks:
        await asyncio.gather(
            *list(gateway._conn_tasks), return_exceptions=True
        )


class TestPooledDecode:
    def test_two_clients_share_one_operator_group(
        self, small_config, database
    ):
        """Same seed + basis => one group; a batch spans both streams
        and each stream still decodes exactly like its serial run."""
        records = [database.load("100"), database.load("119")]
        systems = [_system(small_config, record) for record in records]

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=5000.0)
            links = [gateway.connect_local() for _ in systems]
            # interleave by hand: one window from each stream, then the
            # batch of 2 must mix the two sessions
            writers = []
            for (reader, writer), system, record in zip(
                links, systems, records
            ):
                writer.write(
                    Handshake(
                        record=record.name,
                        channel=0,
                        config=system.config,
                        codebook=system.encoder.codebook,
                    ).to_frame()
                )
                writers.append(writer)
            packets = [
                encoded_packets(system, record, max_packets=2)
                for system, record in zip(systems, records)
            ]
            for window in range(2):
                for writer, stream_packets in zip(writers, packets):
                    writer.write(
                        encode_frame(
                            FrameKind.PACKET,
                            stream_packets[window].to_bytes(),
                        )
                    )
                    await asyncio.sleep(0.01)  # let the session pool it
            for writer in writers:
                writer.write(encode_frame(FrameKind.BYE))
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        assert len(gateway._groups) == 1
        assert gateway.stats.cross_stream_batches >= 1
        assert gateway.stats.windows_decoded == 4
        results = sorted(gateway.results, key=lambda r: r.session_id)
        for system, record, result in zip(systems, records, results):
            assert result.clean_close
            _assert_matches_serial(
                result, _serial_reference(system, record, max_packets=2)
            )

    def test_distinct_seeds_form_distinct_groups(
        self, small_config, database
    ):
        record = database.load("100")
        other_config = small_config.replace(seed=small_config.seed + 1)
        systems = [
            _system(small_config, record),
            _system(other_config, record),
        ]

        async def run():
            gateway = IngestGateway(batch_size=4, flush_ms=100.0)
            clients = [
                NodeClient(system, record, max_packets=2, interval_s=0.0)
                for system in systems
            ]
            links = [gateway.connect_local() for _ in clients]
            await asyncio.gather(
                *[
                    client.run(reader, writer)
                    for client, (reader, writer) in zip(clients, links)
                ]
            )
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        assert len(gateway._groups) == 2
        assert gateway.stats.windows_decoded == 4
        for system, result in zip(
            systems, sorted(gateway.results, key=lambda r: r.session_id)
        ):
            _assert_matches_serial(
                result, _serial_reference(system, record, max_packets=2)
            )

    def test_flush_on_idle_deadline(self, small_config, database):
        """A lone stream with a part-filled batch decodes within the
        flush deadline instead of waiting for batch-mates forever: the
        link stays open (no BYE, no disconnect), so only the deadline
        can trigger the flush."""
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=3)

        async def run():
            gateway = IngestGateway(batch_size=64, flush_ms=50.0)
            reader, writer = gateway.connect_local()
            writer.write(
                Handshake(
                    record=record.name,
                    channel=0,
                    config=system.config,
                    codebook=system.encoder.codebook,
                ).to_frame()
            )
            for packet in packets:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            decoded = []
            while len(decoded) < 3:  # deadline-flushed DECODED acks
                frame = await asyncio.wait_for(
                    read_frame(reader), timeout=30.0
                )
                assert frame is not None
                kind, body = frame
                if kind is FrameKind.DECODED:
                    decoded.append(json.loads(body))
            writer.write(encode_frame(FrameKind.BYE))
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, decoded

        gateway, decoded = asyncio.run(run())
        assert gateway.stats.flushes_deadline >= 1
        assert gateway.stats.windows_decoded == 3
        assert all(entry["latency_ms"] > 0.0 for entry in decoded)
        _assert_matches_serial(
            gateway.results[0],
            _serial_reference(system, record, max_packets=3),
        )

    def test_process_pool_workers_match_serial(
        self, small_config, database
    ):
        """Live intra-group sharding: batches of one operator group
        decode on a process pool, trajectories identical to serial."""
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(
                batch_size=2, flush_ms=100.0, workers=2
            )
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system, record, max_packets=4, interval_s=0.0
            )
            report = await asyncio.wait_for(
                client.run(reader, writer), timeout=120.0
            )
            await gateway.close()
            return gateway, report

        gateway, report = asyncio.run(run())
        assert report.acked == 4
        result = gateway.results[0]
        assert result.indices == [0, 1, 2, 3]  # re-sorted if needed
        _assert_matches_serial(
            result, _serial_reference(system, record, max_packets=4)
        )

    def test_gateway_validation(self):
        with pytest.raises(ConfigurationError):
            IngestGateway(batch_size=0)
        with pytest.raises(ConfigurationError):
            IngestGateway(flush_ms=0.0)
        with pytest.raises(ConfigurationError):
            IngestGateway(workers=-1)
        with pytest.raises(ConfigurationError):
            IngestGateway(max_pending=0)


class TestFaults:
    def _hello_frame(self, system, record):
        return Handshake(
            record=record.name,
            channel=0,
            config=system.config,
            codebook=system.encoder.codebook,
        ).to_frame()

    def test_mid_stream_disconnect_flushes_partial_batch(
        self, small_config, database
    ):
        """A dropped link's pending windows still decode: the partial
        batch drains instead of rotting in the pool."""
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=4)

        async def run():
            # batch far larger than what arrives + long deadline: only
            # the disconnect drain can flush these two windows
            gateway = IngestGateway(batch_size=64, flush_ms=60_000.0)
            reader, writer = gateway.connect_local()
            writer.write(self._hello_frame(system, record))
            for packet in packets[:2]:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            await asyncio.sleep(0.05)  # let the session pool them
            writer.close()  # abrupt: no BYE
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        assert gateway.stats.flushes_drain >= 1
        assert len(gateway.results) == 1
        result = gateway.results[0]
        assert not result.clean_close
        assert result.error is None
        assert result.num_windows == 2
        serial = _serial_reference(system, record, max_packets=2)
        _assert_matches_serial(result, serial)

    def test_truncated_frame_mid_stream(self, small_config, database):
        """EOF inside a frame is a protocol error: the session errors
        out, the client is told, and completed windows are kept."""
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=2)

        async def run():
            gateway = IngestGateway(batch_size=1, flush_ms=100.0)
            reader, writer = gateway.connect_local()
            writer.write(self._hello_frame(system, record))
            writer.write(
                encode_frame(FrameKind.PACKET, packets[0].to_bytes())
            )
            # a frame announcing 500 body bytes, delivering 10
            writer.write((500).to_bytes(4, "big") + b"\x02" + b"x" * 10)
            await asyncio.sleep(0.05)
            writer.close()
            frames = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                frames.append(frame)
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, frames

        gateway, frames = asyncio.run(run())
        assert gateway.stats.sessions_errored == 1
        kinds = [kind for kind, _ in frames]
        assert kinds[0] is FrameKind.WELCOME
        assert FrameKind.ERROR in kinds
        error_body = json.loads(
            [body for kind, body in frames if kind is FrameKind.ERROR][0]
        )
        assert "truncated frame" in error_body["error"]
        # the window decoded before the fault is retained
        result = gateway.results[0]
        assert result.error is not None
        assert result.num_windows == 1

    def test_unknown_protocol_version_rejected(
        self, small_config, database
    ):
        """The handshake's codec version gate: a node speaking an
        unknown revision gets a reasoned ERROR, not silence."""
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=100.0)
            reader, writer = gateway.connect_local()
            payload = Handshake(
                record=record.name, channel=0, config=system.config
            ).to_payload()
            payload["protocol"] = 99
            writer.write(encode_json_frame(FrameKind.HELLO, payload))
            frame = await read_frame(reader)
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, frame

        gateway, frame = asyncio.run(run())
        kind, body = frame
        assert kind is FrameKind.ERROR
        assert "unsupported protocol version" in json.loads(body)["error"]
        assert gateway.stats.sessions_errored == 1
        assert gateway.results == []  # never admitted

    def test_corrupt_packet_crc_counted_not_fatal(
        self, small_config, database
    ):
        """A bit-flipped on-air packet must not kill the link: the
        frame is counted, stage 2 resyncs, and the stream recovers at
        the next keyframe."""
        config = small_config.replace(keyframe_interval=4)
        record = database.load("100")
        system = _system(config, record)
        packets = encoded_packets(system, record, max_packets=5)
        wire = bytearray(packets[0].to_bytes())
        wire[-1] ^= 0xFF  # break the CRC of the first keyframe

        async def run():
            gateway = IngestGateway(batch_size=1, flush_ms=50.0)
            reader, writer = gateway.connect_local()
            writer.write(self._hello_frame(system, record))
            writer.write(encode_frame(FrameKind.PACKET, bytes(wire)))
            for packet in packets[1:]:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            writer.write(encode_frame(FrameKind.BYE))
            await asyncio.sleep(0.05)  # let the session task start
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        assert gateway.stats.sessions_errored == 0
        result = gateway.results[0]
        assert result.clean_close and result.error is None
        assert result.frames_corrupt == 1
        # the corrupted window surfaces as a loss through the gap the
        # next good frame reveals; diffs 1-3 are unusable until the
        # keyframe at sequence 4 re-anchors the chain
        assert result.windows_lost == 1
        assert result.windows_resynced == 3
        assert result.sequences == [4]
        serial = _serial_reference(system, record, max_packets=5)
        n = config.n
        np.testing.assert_allclose(
            result.samples_adu[0],
            serial.reconstructed_adu[4 * n : 5 * n],
            atol=1e-7,
        )

    def test_invalid_bye_window_count_is_protocol_error(
        self, small_config, database
    ):
        """A malformed BYE body must fail like any other protocol
        violation (ERROR frame + errored session), not crash the
        handler silently."""
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=100.0)
            reader, writer = gateway.connect_local()
            writer.write(self._hello_frame(system, record))
            writer.write(
                encode_json_frame(FrameKind.BYE, {"windows": "abc"})
            )
            frames = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                frames.append(frame)
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, frames

        gateway, frames = asyncio.run(run())
        assert gateway.stats.sessions_errored == 1
        error_body = json.loads(
            [body for kind, body in frames if kind is FrameKind.ERROR][0]
        )
        assert "invalid BYE window count" in error_body["error"]
        assert not gateway.results[0].clean_close

    def test_zero_packet_close_leaves_group_batching_alone(
        self, small_config, database
    ):
        """A session that says HELLO and leaves without streaming must
        not force other streams' pending windows into early partial
        flushes — the stream-end drain is scoped to the closing
        stream's own windows."""
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=2)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=60_000.0)
            keeper_reader, keeper = gateway.connect_local()
            keeper.write(self._hello_frame(system, record))
            keeper.write(
                encode_frame(FrameKind.PACKET, packets[0].to_bytes())
            )
            await asyncio.sleep(0.05)  # window pooled, batch half full
            # a second node joins the group and leaves with no packets
            ghost_reader, ghost = gateway.connect_local()
            ghost.write(self._hello_frame(system, record))
            ghost.write(encode_frame(FrameKind.BYE))
            await asyncio.sleep(0.1)
            flushed_early = gateway.stats.batches
            # the keeper's second window completes the batch normally
            keeper.write(
                encode_frame(FrameKind.PACKET, packets[1].to_bytes())
            )
            keeper.write(encode_frame(FrameKind.BYE))
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, flushed_early

        gateway, flushed_early = asyncio.run(run())
        assert flushed_early == 0  # ghost close triggered no flush
        assert gateway.stats.flushes_full == 1
        assert gateway.stats.windows_decoded == 2

    def test_solve_failure_unblocks_sessions(
        self, small_config, database, monkeypatch
    ):
        """A dying solve must not wedge the gateway: its windows are
        failed, the node gets an ERROR, and close() still returns."""
        import repro.ingest.gateway as gateway_module

        def exploding_solve(task):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(
            gateway_module, "solve_measurement_block", exploding_solve
        )
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=2)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=100.0)
            reader, writer = gateway.connect_local()
            writer.write(self._hello_frame(system, record))
            for packet in packets:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            writer.write(encode_frame(FrameKind.BYE))
            with pytest.warns(RuntimeWarning, match="dropped a batch"):
                await asyncio.wait_for(_drain_sessions(gateway), timeout=30.0)
                await asyncio.wait_for(gateway.close(), timeout=30.0)
            frames = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                frames.append(frame)
            return gateway, frames

        gateway, frames = asyncio.run(run())
        assert gateway.stats.sessions_errored == 1
        assert gateway.stats.windows_decoded == 0
        result = gateway.results[0]
        assert result.error is not None and "kaboom" in result.error
        error_bodies = [
            json.loads(body)
            for kind, body in frames
            if kind is FrameKind.ERROR
        ]
        assert error_bodies and "kaboom" in error_bodies[0]["error"]

    def test_process_pool_solve_failure_releases_inflight(self):
        """The process-pool twin of the test above: _route_async's
        broad except (carrying a justified repro-lint RL005
        suppression) must catch ANY failure a pooled solve raises,
        fail the batch, and release the in-flight slot — a leaked slot
        would wedge every later flush at the semaphore."""

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=100.0)
            gateway._inflight = asyncio.Semaphore(1)
            await gateway._inflight.acquire()
            failed = {}
            gateway._fail_batch = lambda batch, exc: failed.update(
                batch=batch, exc=exc
            )
            future = asyncio.get_running_loop().create_future()
            future.set_exception(RuntimeError("pool kaboom"))
            batch = [object(), object()]
            await gateway._route_async(batch, future, None, "full", 0.0)
            return failed, gateway._inflight.locked()

        failed, still_locked = asyncio.run(run())
        assert isinstance(failed["exc"], RuntimeError)
        assert failed["batch"] and len(failed["batch"]) == 2
        assert not still_locked  # the slot came back

    def test_dispatch_revalidates_pool_after_permit_wait(
        self, small_config
    ):
        """close() can shut the process pool down while _dispatch waits
        on the in-flight semaphore.  The post-acquire re-check must
        route the batch to _fail_batch and release the permit instead
        of submitting to a dead pool — that RuntimeError would escape
        the drain loop and silently stop all flushing."""
        from collections import deque
        from types import SimpleNamespace

        async def run():
            gateway = IngestGateway(
                batch_size=1, flush_ms=100.0, workers=2
            )
            # a pool existed when the batch was planned...
            gateway._process_pool = object()
            gateway._inflight = asyncio.Semaphore(1)
            # ...but close() ran while we waited for the permit
            gateway._closing = True
            failed = {}
            gateway._fail_batch = lambda batch, exc: failed.update(
                batch=batch, exc=exc
            )
            window = SimpleNamespace(
                session=SimpleNamespace(id="s0"),
                index=0,
                column=np.zeros(small_config.m),
                fraction=0.5,
            )
            group = SimpleNamespace(
                key=("k",),
                label="g0",
                config=small_config,
                precision="float64",
                pending=deque([window]),
            )
            await gateway._dispatch(group, "full")
            return failed, gateway._inflight.locked()

        failed, still_locked = asyncio.run(run())
        assert isinstance(failed["exc"], ConfigurationError)
        assert failed["batch"] == [failed["batch"][0]]
        assert not still_locked  # the permit came back

    def test_packet_before_hello_rejected(self, small_config, database):
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=1)

        async def run():
            gateway = IngestGateway()
            reader, writer = gateway.connect_local()
            writer.write(
                encode_frame(FrameKind.PACKET, packets[0].to_bytes())
            )
            frame = await read_frame(reader)
            await _drain_sessions(gateway)
            await gateway.close()
            return frame

        kind, body = asyncio.run(run())
        assert kind is FrameKind.ERROR
        assert "expected HELLO" in json.loads(body)["error"]


class TestUnexpectedFrames:
    def test_ack_loop_reports_unexpected_kind_and_exits(
        self, small_config, database
    ):
        """A frame kind the gateway never sends on the ack path (here a
        looped-back HELLO) must surface in report.error and end the
        receive loop instead of being silently dropped."""
        from repro.ingest import NodeReport

        record = database.load("100")
        client = NodeClient(
            _system(small_config, record), record, max_packets=1
        )

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_json_frame(FrameKind.HELLO, {"record": "100"})
            )
            reader.feed_eof()
            report = NodeReport(record="100", channel=0)
            await asyncio.wait_for(
                client._receive(reader, None, 1, report), timeout=2.0
            )
            return report

        report = asyncio.run(run())
        assert report.error == "unexpected frame kind HELLO"
        assert report.acked == 0


class TestLossResilience:
    """Sequence-gap recovery: drops, reorders, duplicates are survived
    with bounded, accounted damage (the PR-4 tentpole)."""

    def _hello_frame(self, system, record):
        return Handshake(
            record=record.name,
            channel=0,
            config=system.config,
            codebook=system.encoder.codebook,
        ).to_frame()

    def _run_stream(self, system, record, wires, declared=None):
        """Drive one loopback session over an explicit wire sequence."""

        async def run():
            gateway = IngestGateway(batch_size=4, flush_ms=50.0)
            reader, writer = gateway.connect_local()
            writer.write(self._hello_frame(system, record))
            for wire in wires:
                writer.write(encode_frame(FrameKind.PACKET, wire))
            if declared is None:
                writer.write(encode_frame(FrameKind.BYE))
            else:
                writer.write(
                    encode_json_frame(
                        FrameKind.BYE, {"windows": declared}
                    )
                )
            await asyncio.sleep(0.05)  # let the session task start
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        return asyncio.run(run())

    def _assert_windows_match_serial(self, result, serial, config):
        """Each delivered window equals the serial decode of the same
        sequence (resynced chains re-anchor exactly)."""
        n = config.n
        for samples, sequence in zip(result.samples_adu, result.sequences):
            np.testing.assert_allclose(
                samples,
                serial.reconstructed_adu[sequence * n : (sequence + 1) * n],
                atol=1e-7,
            )

    def test_dropped_diff_resyncs_at_next_keyframe(
        self, small_config, database
    ):
        """Losing one difference packet costs the gap plus the diffs up
        to the next keyframe — never the whole stream."""
        config = small_config.replace(keyframe_interval=4)
        record = database.load("100")
        system = _system(config, record)
        packets = encoded_packets(system, record, max_packets=8)
        wires = [
            p.to_bytes() for i, p in enumerate(packets) if i != 2
        ]

        gateway = self._run_stream(system, record, wires, declared=8)
        assert gateway.stats.sessions_errored == 0
        result = gateway.results[0]
        assert result.error is None
        # window 2 lost; window 3 (a diff past the gap) resynced; the
        # keyframe at 4 re-arms and 4-7 decode
        assert result.sequences == [0, 1, 4, 5, 6, 7]
        assert result.windows_lost == 1
        assert result.windows_resynced == 1
        assert result.frames_corrupt == 0
        assert result.frames_duplicate == 0
        serial = _serial_reference(system, record, max_packets=8)
        self._assert_windows_match_serial(result, serial, config)

    def test_lost_keyframe_waits_for_following_keyframe(
        self, small_config, database
    ):
        """Dropping a *keyframe* stalls the stream for one full
        keyframe interval: the resync state machine must hold through
        every diff of the orphaned segment and re-arm only at the
        following keyframe, with the damage fully attributed."""
        config = small_config.replace(keyframe_interval=4)
        record = database.load("100")
        system = _system(config, record)
        packets = encoded_packets(system, record, max_packets=9)
        assert packets[4].kind.name == "KEYFRAME"  # the victim
        wires = [
            p.to_bytes() for i, p in enumerate(packets) if i != 4
        ]

        gateway = self._run_stream(system, record, wires, declared=9)
        result = gateway.results[0]
        assert result.error is None
        # diffs 5-7 arrive but cannot anchor anywhere; keyframe 8 ends
        # the outage
        assert result.sequences == [0, 1, 2, 3, 8]
        assert result.windows_lost == 1
        assert result.windows_resynced == 3
        # one loss event, keyframe_interval-bounded damage, all of it
        # accounted
        damage = result.windows_lost + result.windows_resynced
        assert damage == config.keyframe_interval
        assert result.num_windows + damage == 9
        serial = _serial_reference(system, record, max_packets=9)
        self._assert_windows_match_serial(result, serial, config)

    def test_duplicates_and_stale_frames_dropped_idempotently(
        self, small_config, database
    ):
        config = small_config.replace(keyframe_interval=4)
        record = database.load("100")
        system = _system(config, record)
        packets = encoded_packets(system, record, max_packets=4)
        wires = [
            packets[0].to_bytes(),
            packets[1].to_bytes(),
            packets[1].to_bytes(),  # true duplicate
            packets[2].to_bytes(),
            packets[3].to_bytes(),
            packets[0].to_bytes(),  # stale (far behind)
        ]

        gateway = self._run_stream(system, record, wires, declared=4)
        result = gateway.results[0]
        assert result.error is None
        assert result.sequences == [0, 1, 2, 3]
        assert result.frames_duplicate == 2
        assert result.windows_lost == 0
        assert result.windows_resynced == 0
        serial = _serial_reference(system, record, max_packets=4)
        _assert_matches_serial(result, serial)

    def test_bye_declared_count_accounts_trailing_loss(
        self, small_config, database
    ):
        """A tail loss leaves no later packet to reveal the gap; the
        BYE's declared window count closes the books."""
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=4)
        wires = [p.to_bytes() for p in packets[:2]]

        gateway = self._run_stream(system, record, wires, declared=4)
        result = gateway.results[0]
        assert result.sequences == [0, 1]
        assert result.windows_lost == 2
        assert gateway.stats.windows_lost == 2

    def test_lossy_node_client_end_to_end(self, small_config, database):
        """NodeClient + LossyChannel over the loopback transport: the
        gateway's accounting agrees with the link's ground truth and
        the offline replay of the surviving packet set."""
        from repro.ingest import LossyChannel, replay_survivors

        config = small_config.replace(keyframe_interval=4)
        record = database.load("100")
        system = _system(config, record)
        channel = LossyChannel(drop_sequences=(2, 4), seed=7)

        async def run():
            gateway = IngestGateway(batch_size=4, flush_ms=50.0)
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system,
                record,
                max_packets=9,
                interval_s=0.0,
                lossy_channel=channel,
            )
            report = await asyncio.wait_for(
                client.run(reader, writer), timeout=60.0
            )
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, report, client.last_link

        gateway, report, link = asyncio.run(run())
        assert link.stats.frames_dropped == 2
        assert link.stats.dropped_sequences == [2, 4]
        result = gateway.results[0]
        assert result.error is None
        # drop of diff 2: window 3 resyncs; drop of keyframe 4: diffs
        # 5-7 resync; keyframe 8 recovers
        assert result.sequences == [0, 1, 8]
        assert result.windows_lost == 2
        assert result.windows_resynced == 4
        assert report.acked == result.num_windows
        assert report.windows_lost == 2
        # offline replay of the recorded surviving packet set agrees
        accepted, accounting = replay_survivors(
            config,
            system.encoder.codebook,
            link.stats.delivered,
            windows_sent=9,
        )
        assert [seq for seq, _ in accepted] == result.sequences
        assert accounting.windows_lost == result.windows_lost
        assert accounting.windows_resynced == result.windows_resynced


class TestOrderingRegression:
    def test_out_of_order_batch_completion_renormalized(
        self, small_config, database
    ):
        """Process-pool solves can complete out of order; the ordered()
        accessor (and finalize) must restore window order across every
        positional list so samples_adu/latencies_s stay aligned."""
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=2)

        async def run():
            gateway = IngestGateway(batch_size=64, flush_ms=60_000.0)
            reader, writer = gateway.connect_local()
            writer.write(
                Handshake(
                    record=record.name,
                    channel=0,
                    config=system.config,
                    codebook=system.encoder.codebook,
                ).to_frame()
            )
            for packet in packets:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            await asyncio.sleep(0.05)  # pooled, nothing flushed yet
            session = next(iter(gateway._sessions.values()))
            pending = list(session.group.pending)
            session.group.pending.clear()
            assert [w.index for w in pending] == [0, 1]
            n = system.config.n

            def fake_out(marker):
                return {
                    "signals": np.full((n, 1), float(marker)),
                    "iterations": np.array([marker]),
                    "seconds": np.array([0.001]),
                }

            # force out-of-order completion: window 1's batch routes
            # before window 0's
            gateway._route([pending[1]], fake_out(1))
            gateway._route([pending[0]], fake_out(0))
            assert session.result.indices == [1, 0]  # completion order
            ordered = session.result.ordered()
            assert ordered.indices == [0, 1]
            assert ordered.sequences == [0, 1]
            assert ordered.iterations == [0, 1]
            # rows stayed aligned through the permutation
            for index in (0, 1):
                assert float(ordered.samples_adu[index][0]) == float(
                    index + session.dc_offset
                )
            writer.write(encode_frame(FrameKind.BYE))
            await asyncio.sleep(0.05)
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        result = gateway.results[0]
        assert result.indices == [0, 1]  # finalize normalized too


class TestNoDataReporting:
    def test_no_decoded_windows_report_none_not_zero(
        self, small_config, database
    ):
        """A stream that never decoded a window must report latency as
        no-data (None), not a perfect 0.0."""
        from repro.ingest import NodeReport

        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=4, flush_ms=50.0)
            reader, writer = gateway.connect_local()
            writer.write(
                Handshake(
                    record=record.name,
                    channel=0,
                    config=system.config,
                    codebook=system.encoder.codebook,
                ).to_frame()
            )
            writer.write(encode_frame(FrameKind.BYE))  # zero packets
            await asyncio.sleep(0.05)  # let the session task start
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        assert gateway.stats.windows_decoded == 0
        assert gateway.stats.max_latency_s is None
        assert gateway.results[0].max_latency_s is None
        report = NodeReport(record=record.name, channel=0)
        assert report.max_gateway_latency_ms is None

    def test_latency_reported_when_windows_decode(
        self, small_config, database
    ):
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=1, flush_ms=50.0)
            reader, writer = gateway.connect_local()
            client = NodeClient(system, record, max_packets=1, interval_s=0.0)
            report = await asyncio.wait_for(
                client.run(reader, writer), timeout=60.0
            )
            await gateway.close()
            return gateway, report

        gateway, report = asyncio.run(run())
        assert gateway.stats.max_latency_s > 0.0
        assert report.max_gateway_latency_ms > 0.0


class TestBackpressure:
    def test_quota_bounds_batch_contributions(
        self, small_config, database
    ):
        """With max_pending=2 no flush can hold more than 2 windows of
        one stream, yet the paced deadline flushes keep the stream
        live end to end."""
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(
                batch_size=64, flush_ms=40.0, max_pending=2
            )
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system, record, max_packets=6, interval_s=0.0
            )
            report = await asyncio.wait_for(
                client.run(reader, writer), timeout=60.0
            )
            await gateway.close()
            return gateway, report

        gateway, report = asyncio.run(run())
        assert report.acked == 6
        assert gateway.stats.windows_decoded == 6
        for _key, members, _reason in gateway.batch_log:
            assert len(members) <= 2  # quota held the pool to 2 windows
        _assert_matches_serial(
            gateway.results[0],
            _serial_reference(system, record, max_packets=6),
        )

    def test_quota_gates_stage12_work(
        self, small_config, database, monkeypatch
    ):
        """Regression: stages 1-2 must run *behind* the quota, so a
        flooding node cannot buy unbounded gateway CPU — with
        max_pending=1 and nothing flushing, exactly one frame may be
        parsed, and a disconnect that cancels the quota wait leaks
        neither permits nor outstanding counts."""
        import repro.ingest.channel as channel_module

        parsed = {"count": 0}
        original = channel_module.EncodedPacket.from_bytes.__func__

        def counting_from_bytes(cls, data):
            parsed["count"] += 1
            return original(cls, data)

        monkeypatch.setattr(
            channel_module.EncodedPacket,
            "from_bytes",
            classmethod(counting_from_bytes),
        )
        record = database.load("100")
        system = _system(small_config, record)
        packets = encoded_packets(system, record, max_packets=3)

        async def run():
            gateway = IngestGateway(
                batch_size=64, flush_ms=60_000.0, max_pending=1
            )
            reader, writer = gateway.connect_local()
            writer.write(
                Handshake(
                    record=record.name,
                    channel=0,
                    config=system.config,
                    codebook=system.encoder.codebook,
                ).to_frame()
            )
            for packet in packets:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            await asyncio.sleep(0.1)
            session = next(iter(gateway._sessions.values()))
            # frame 1 parsed and pooled; frame 2's read loop is parked
            # in quota.acquire() with no work done; frame 3 unread
            parsed_under_pressure = parsed["count"]
            # gateway shutdown cancels the parked acquire mid-wait
            # (the disconnect path _finalize must survive)
            await asyncio.wait_for(gateway.close(), timeout=60.0)
            return gateway, session, parsed_under_pressure

        gateway, session, parsed_under_pressure = asyncio.run(run())
        assert parsed_under_pressure == 1
        # no leaks: the pending window decoded on the drain path and
        # released its permit; the cancelled waiter never held one
        assert session.outstanding == 0
        assert session.quota._value == 1
        assert len(gateway.results) == 1
        assert gateway.results[0].num_windows == 1


class TestTcpTransport:
    def test_tcp_roundtrip(self, small_config, database):
        """The same session logic over a real socket."""
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=100.0)
            port = await gateway.start("127.0.0.1", 0)
            client = NodeClient(
                system, record, max_packets=3, interval_s=0.0
            )
            report = await asyncio.wait_for(
                client.run_tcp("127.0.0.1", port), timeout=60.0
            )
            # TCP handler tasks are owned by the server; wait for the
            # result to be published before closing
            for _ in range(200):
                if gateway.results:
                    break
                await asyncio.sleep(0.01)
            await gateway.close()
            return gateway, report

        gateway, report = asyncio.run(run())
        assert report.acked == 3
        assert report.error is None
        assert report.max_gateway_latency_ms > 0.0
        _assert_matches_serial(
            gateway.results[0],
            _serial_reference(system, record, max_packets=3),
        )


class TestStreamReconnect:
    """Regression: a reconnecting stream id must aggregate as ONE
    stream — previously per-stream aggregation keyed by session lost
    the first session's counters and counted the stream twice."""

    def _run_two_sessions(self, config, record, system):
        packets = encoded_packets(system, record, max_packets=6)

        async def run():
            gateway = IngestGateway(batch_size=4, flush_ms=50.0)
            # session 1: windows 0-1 delivered, window 2 lost, then the
            # link drops mid-stream (no BYE)
            reader, writer = gateway.connect_local()
            writer.write(
                Handshake(
                    record=record.name,
                    channel=0,
                    config=system.config,
                    codebook=system.encoder.codebook,
                ).to_frame()
            )
            for packet in (packets[0], packets[1], packets[3]):
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            await asyncio.sleep(0.2)
            writer.close()  # mid-stream disconnect
            for _ in range(200):
                if gateway.results:
                    break
                await asyncio.sleep(0.01)
            # session 2: the same node reconnects (fresh encoder state,
            # sequences restart at 0) and finishes cleanly
            reader, writer = gateway.connect_local()
            writer.write(
                Handshake(
                    record=record.name,
                    channel=0,
                    config=system.config,
                    codebook=system.encoder.codebook,
                ).to_frame()
            )
            for packet in packets[:2]:
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
            writer.write(
                encode_json_frame(FrameKind.BYE, {"windows": 2})
            )
            for _ in range(400):
                if len(gateway.results) == 2:
                    break
                await asyncio.sleep(0.01)
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        return asyncio.run(run())

    def test_sessions_merge_under_one_stream_key(
        self, small_config, database
    ):
        config = small_config.replace(keyframe_interval=8)
        record = database.load("100")
        system = _system(config, record)
        gateway = self._run_two_sessions(config, record, system)

        assert len(gateway.results) == 2  # sessions stay addressable
        stats = gateway.stats
        assert stats.sessions_opened == 2
        # the fix: one stream identity, not two
        assert stats.streams == 1

        merged = gateway.merged_results()
        assert set(merged) == {f"{record.name}:0"}
        stream = merged[f"{record.name}:0"]
        # both sessions' windows and BOTH sessions' damage counters:
        # session 1 lost window 2 (gap exposed by window 3's resync)
        first = min(gateway.results, key=lambda r: r.session_id)
        assert first.windows_lost + first.windows_resynced > 0
        assert stream.num_windows == sum(
            r.num_windows for r in gateway.results
        )
        assert stream.windows_lost == sum(
            r.windows_lost for r in gateway.results
        )
        assert stream.windows_resynced == sum(
            r.windows_resynced for r in gateway.results
        )
        assert stream.clean_close  # the final session ended cleanly
        # indices re-based: monotonic across the reconnect
        assert stream.indices == sorted(stream.indices)

        # telemetry agrees: the per-stream series accumulated across
        # sessions instead of forking
        snap = gateway.telemetry.snapshot()
        key = f"{record.name}:0"
        assert snap.counter_value(
            "ingest_sessions_opened", stream=key
        ) == 2
        assert snap.counter_value(
            "ingest_windows_decoded", stream=key
        ) == stream.num_windows
        assert snap.counter_value(
            "ingest_windows_lost", stream=key
        ) == stream.windows_lost

    def test_distinct_streams_do_not_merge(self, small_config, database):
        records = [database.load("100"), database.load("119")]
        systems = [_system(small_config, r) for r in records]

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=50.0)
            for system, record in zip(systems, records):
                reader, writer = gateway.connect_local()
                client = NodeClient(
                    system, record, max_packets=2, interval_s=0.0
                )
                await asyncio.wait_for(
                    client.run(reader, writer), timeout=60.0
                )
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        assert gateway.stats.streams == 2
        assert set(gateway.merged_results()) == {
            f"{records[0].name}:0",
            f"{records[1].name}:0",
        }


class TestGatewayTelemetry:
    """The gateway's stat surfaces are views over the telemetry plane."""

    def test_stats_view_matches_registry(self, small_config, database):
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=60.0)
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system, record, max_packets=4, interval_s=0.0
            )
            await asyncio.wait_for(client.run(reader, writer), timeout=60.0)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        stats = gateway.stats
        snap = gateway.telemetry.snapshot()
        assert stats.windows_decoded == 4
        assert stats.windows_decoded == int(
            snap.counter_total("ingest_windows_decoded")
        )
        assert stats.batches == int(snap.counter_total("ingest_flushes"))
        assert stats.sessions_completed == 1
        hist = snap.histogram_total("ingest_window_latency_seconds")
        assert hist.total == 4
        assert stats.max_latency_s == hist.max
        # flush width and solve time distributions exist
        assert snap.histogram_total("ingest_flush_width").total >= 1
        assert snap.histogram_total("ingest_solve_seconds").total >= 1
        # solve backend shipped its per-call delta into the same plane
        assert snap.counter_total("fleet_worker_tasks") >= 1

    def test_exposition_and_ring_round_trip_live_gateway(
        self, small_config, database, tmp_path
    ):
        """serve's persistence contract end to end: the scrape parses
        back to the registry and the ring file replays to the same
        final snapshot."""
        from repro.telemetry import (
            JsonlRingSink,
            MetricsServer,
            exposition_matches_snapshot,
            replay_ring,
            scrape_local,
        )

        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=60.0)
            server = MetricsServer(gateway.telemetry)
            port = await server.start()
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system, record, max_packets=3, interval_s=0.0
            )
            await asyncio.wait_for(client.run(reader, writer), timeout=60.0)
            await _drain_sessions(gateway)
            await gateway.close()
            text = await scrape_local(port)
            await server.close()
            return gateway, text

        gateway, text = asyncio.run(run())
        final = gateway.telemetry.snapshot()
        assert exposition_matches_snapshot(text, final)

        ring = JsonlRingSink(tmp_path / "gateway.jsonl", max_records=4)
        ring.append(final)
        assert replay_ring(ring.path) == final

    def test_process_pool_workers_merge_into_plane(
        self, small_config, database
    ):
        """Cross-process fan-in: worker solve deltas are absorbed into
        the gateway's registry (count matches the flush count)."""
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=60.0, workers=2)
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system, record, max_packets=4, interval_s=0.0
            )
            await asyncio.wait_for(
                client.run(reader, writer), timeout=120.0
            )
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway

        gateway = asyncio.run(run())
        snap = gateway.telemetry.snapshot()
        stats = gateway.stats
        assert stats.windows_decoded == 4
        if gateway.workers >= 2:  # pool actually started
            assert snap.counter_total("fleet_worker_tasks") == stats.batches
            assert snap.counter_total("fleet_worker_windows") == 4
            workers = snap.label_values("fleet_worker_tasks", "worker")
            assert len(workers) >= 1


class TestCloseDrain:
    """``close()`` must drain in-flight solves, not abandon them.

    Regression for the two-phase close: the old order flipped
    ``_closing`` before draining, so a close racing a long solve
    failed the stream-end flush against a dead pool — completed
    windows were dropped and the session errored.
    """

    def test_close_racing_slow_solve_keeps_results(
        self, small_config, database, monkeypatch
    ):
        import time as time_module

        import repro.ingest.gateway as gateway_module

        real_solve = gateway_module.solve_measurement_block

        def slow_solve(task):
            # runs on the solver executor thread, off the event loop —
            # long enough that close() arrives mid-solve
            time_module.sleep(0.4)
            return real_solve(task)

        monkeypatch.setattr(
            gateway_module, "solve_measurement_block", slow_solve
        )
        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=8, flush_ms=10_000.0)
            reader, writer = gateway.connect_local()
            client = NodeClient(
                system, record, max_packets=2, interval_s=0.0
            )
            session = asyncio.ensure_future(client.run(reader, writer))
            # wait until the BYE-triggered drain flush has dispatched
            # the (slow) solve, then close immediately: the drain
            # phase must let it finish and route its DECODED acks
            await asyncio.sleep(0.1)
            await gateway.close(drain_s=30.0)
            report = await session
            return gateway, report

        gateway, report = asyncio.run(run())
        assert report.error is None
        assert report.acked == 2
        stats = gateway.stats
        assert stats.windows_decoded == 2
        assert stats.sessions_errored == 0
        assert len(gateway.results) == 1
        result = gateway.results[0]
        assert result.clean_close
        _assert_matches_serial(
            result, _serial_reference(system, record, max_packets=2)
        )


class TestNodeReconnect:
    """Satellite of the federation PR: the node-side retry loop."""

    def test_backoff_schedule_caps_and_grows(self, small_config, database):
        record = database.load("100")
        client = NodeClient(
            _system(small_config, record),
            record,
            backoff_base_s=0.05,
            backoff_cap_s=2.0,
            backoff_jitter=0.0,
        )
        delays = [client.backoff_delay(attempt) for attempt in range(1, 9)]
        assert delays[:6] == pytest.approx(
            [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        )
        assert delays[6] == delays[7] == pytest.approx(2.0)  # capped

    def test_backoff_jitter_bounded_and_seeded(
        self, small_config, database
    ):
        record = database.load("100")

        def make():
            return NodeClient(
                _system(small_config, record),
                record,
                backoff_base_s=0.1,
                backoff_cap_s=2.0,
                backoff_jitter=0.25,
                backoff_seed=7,
            )

        a, b = make(), make()
        delays_a = [a.backoff_delay(k) for k in range(1, 6)]
        delays_b = [b.backoff_delay(k) for k in range(1, 6)]
        assert delays_a == delays_b  # seeded: a fleet can be replayed
        for attempt, delay in enumerate(delays_a, start=1):
            base = min(2.0, 0.1 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25

    def test_mid_stream_cut_reconnects_and_resumes(
        self, small_config, database
    ):
        """Cut the server side of a live session: the client re-dials,
        resumes from its first unsent window, and the merged stream
        still decodes in full (fec keyframe replay => zero damage)."""
        from repro.ingest import merge_stream_results

        record = database.load("100")
        system = _system(small_config, record)

        async def run():
            gateway = IngestGateway(batch_size=2, flush_ms=100.0)
            port = await gateway.start("127.0.0.1", 0)
            client = NodeClient(
                system,
                record,
                max_packets=6,
                interval_s=0.05,
                fec=True,
                reconnect=3,
                backoff_base_s=0.02,
                backoff_seed=2011,
            )
            session = asyncio.ensure_future(
                client.run_tcp("127.0.0.1", port)
            )
            await asyncio.sleep(0.12)  # a few windows in flight
            for task in list(gateway._conn_tasks):
                task.cancel()
            report = await asyncio.wait_for(session, timeout=120.0)
            await _drain_sessions(gateway)
            await gateway.close()
            return gateway, report

        gateway, report = asyncio.run(run())
        assert report.error is None
        assert report.reconnects >= 1
        assert report.sent == 6
        merged = merge_stream_results(gateway.results)
        result = merged[f"{record.name}:0"]
        assert result.windows_lost == 0
        assert len(result.iterations) == 6
