"""Hybrid-precision live path: the gateway output is bit-identical to
the offline replay of the same surviving packet set.

The hybrid backend (float32 FISTA + sparse residual gate + float64
polish) is deterministic for a given batch composition, so the wire
path must add nothing: running a node with ``precision="hybrid"``
through the real asyncio gateway — over a lossy channel, fec off and
on — and then replaying the gateway's logged batch compositions
through :func:`~repro.fleet.engine.solve_measurement_block` with the
same precision must reproduce every delivered sample **exactly**
(``assert_array_equal``, not allclose).  This is the live-gateway leg
of the cross-stack equivalence harness in
``tests/solvers/test_equivalence_harness.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.core import EcgMonitorSystem
from repro.fleet.engine import solve_measurement_block
from repro.ingest import (
    IngestGateway,
    LossyChannel,
    NodeClient,
    replay_survivors,
)

WINDOWS = 9
NACK_BUDGET = 8


async def _drain(gateway):
    while gateway._conn_tasks:
        await asyncio.gather(
            *list(gateway._conn_tasks), return_exceptions=True
        )


@pytest.mark.parametrize("fec", [False, True], ids=["fec_off", "fec_on"])
def test_hybrid_live_gateway_matches_offline_replay(
    small_config, database, fec
):
    config = small_config.replace(keyframe_interval=4)
    record = database.load("100")
    system = EcgMonitorSystem(config, precision="hybrid")
    system.calibrate(record)
    channel = LossyChannel(drop_sequences=(2,), seed=7)

    async def run():
        gateway = IngestGateway(
            batch_size=4, flush_ms=50.0, nack_budget=NACK_BUDGET
        )
        reader, writer = gateway.connect_local()
        client = NodeClient(
            system,
            record,
            max_packets=WINDOWS,
            interval_s=0.0,
            lossy_channel=channel,
            fec=fec,
        )
        await asyncio.wait_for(client.run(reader, writer), timeout=60.0)
        await _drain(gateway)
        await gateway.close()
        return gateway, client.last_link

    gateway, link = asyncio.run(run())
    result = gateway.results[0].ordered()
    assert result.error is None

    # with fec the dropped diff window is rebuilt from the epoch's
    # parity frame; without it the drop costs the window plus resyncs
    if fec:
        assert result.num_windows == WINDOWS
        assert result.windows_recovered_parity == 1
    else:
        assert result.windows_lost == 1
        assert result.windows_resynced > 0

    # the offline survivor replay reconstructs the same accepted set
    delivered = (
        link.stats.delivered_frames if fec else link.stats.delivered
    )
    accepted, accounting = replay_survivors(
        config,
        system.encoder.codebook,
        delivered,
        windows_sent=WINDOWS,
        fec=fec,
        nack_budget=NACK_BUDGET,
    )
    assert result.sequences == [seq for seq, _ in accepted]
    assert result.windows_lost == accounting.windows_lost
    assert result.windows_resynced == accounting.windows_resynced

    # bit-identity: replay the gateway's logged batch compositions
    # through the offline hybrid solver — same columns, same widths,
    # same backend => identical bits out
    columns = {
        (result.session_id, index): column
        for index, (_seq, column) in enumerate(accepted)
    }
    dc_offset = 1 << (config.adc_bits - 1)
    replayed = 0
    for _key, members, _reason in gateway.batch_log:
        block = np.stack([columns[member] for member in members], axis=1)
        out = solve_measurement_block(
            {
                "config": dataclasses.asdict(config),
                "precision": "hybrid",
                "block": block,
                "fractions": np.full(
                    block.shape[1], config.lam, dtype=np.float64
                ),
                "batch_size": block.shape[1],
                "max_iterations": config.max_iterations,
                "tolerance": config.tolerance,
            }
        )
        for column, (_session_id, index) in enumerate(members):
            np.testing.assert_array_equal(
                result.samples_adu[index],
                out["signals"][:, column] + dc_offset,
            )
            replayed += 1
    assert replayed == result.num_windows
