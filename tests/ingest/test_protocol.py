"""Wire-protocol unit tests: framing and handshake edge cases."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import SystemConfig
from repro.errors import ProtocolError
from repro.ingest import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameKind,
    Handshake,
    encode_frame,
    encode_json_frame,
    read_frame,
)


def _read_from(data: bytes, eof: bool = True):
    """Feed bytes into a fresh StreamReader and read one frame."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(_run())


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame(FrameKind.PACKET, b"\xa5payload")
        kind, body = _read_from(frame)
        assert kind is FrameKind.PACKET
        assert body == b"\xa5payload"

    def test_empty_body_roundtrip(self):
        kind, body = _read_from(encode_frame(FrameKind.BYE))
        assert kind is FrameKind.BYE
        assert body == b""

    def test_clean_eof_returns_none(self):
        assert _read_from(b"") is None

    def test_truncated_length_prefix(self):
        with pytest.raises(ProtocolError, match="truncated frame"):
            _read_from(b"\x00\x00")

    def test_truncated_body(self):
        frame = encode_frame(FrameKind.PACKET, b"x" * 100)
        with pytest.raises(ProtocolError, match="truncated frame"):
            _read_from(frame[:20])

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError, match="length prefix"):
            _read_from((0).to_bytes(4, "big"))

    def test_oversized_length_rejected(self):
        prefix = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds"):
            _read_from(prefix + b"x")

    def test_unknown_frame_kind(self):
        raw = (2).to_bytes(4, "big") + bytes([200, 0])
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            _read_from(raw)

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(FrameKind.PACKET, b"x" * MAX_FRAME_BYTES)

    def test_two_frames_back_to_back(self):
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_frame(FrameKind.PACKET, b"one")
                + encode_frame(FrameKind.BYE)
            )
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(_run())
        assert first == (FrameKind.PACKET, b"one")
        assert second == (FrameKind.BYE, b"")
        assert third is None


class TestHandshake:
    def _handshake(self, **overrides) -> Handshake:
        from repro.core import EcgMonitorSystem

        config = SystemConfig(n=256, m=128, d=8, levels=4)
        system = EcgMonitorSystem(config)
        fields = dict(
            record="100",
            channel=0,
            config=config,
            codebook=system.encoder.codebook,
            precision="float64",
        )
        fields.update(overrides)
        return Handshake(**fields)

    def test_roundtrip_with_codebook(self):
        original = self._handshake(channel=1)
        frame = original.to_frame()
        kind, body = _read_from(frame)
        assert kind is FrameKind.HELLO
        parsed = Handshake.from_body(body)
        assert parsed.record == "100"
        assert parsed.channel == 1
        assert parsed.config == original.config
        assert parsed.precision == "float64"
        # canonical lengths rebuild the exact same code
        assert parsed.codebook.code.lengths == original.codebook.code.lengths
        assert parsed.codebook.offset == original.codebook.offset

    def test_roundtrip_without_codebook(self):
        parsed = Handshake.from_body(
            json.dumps(
                {**self._handshake().to_payload(), "codebook": None}
            ).encode()
        )
        assert parsed.codebook is None

    def test_unknown_protocol_version(self):
        payload = self._handshake().to_payload()
        payload["protocol"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="unsupported protocol"):
            Handshake.from_body(json.dumps(payload).encode())

    def test_missing_protocol_version(self):
        payload = self._handshake().to_payload()
        del payload["protocol"]
        with pytest.raises(ProtocolError, match="unsupported protocol"):
            Handshake.from_body(json.dumps(payload).encode())

    def test_invalid_config_rejected(self):
        payload = self._handshake().to_payload()
        payload["config"]["m"] = -3
        with pytest.raises(ProtocolError, match="invalid handshake config"):
            Handshake.from_body(json.dumps(payload).encode())

    def test_unknown_config_field_rejected(self):
        payload = self._handshake().to_payload()
        payload["config"]["surprise"] = 1
        with pytest.raises(ProtocolError, match="invalid handshake config"):
            Handshake.from_body(json.dumps(payload).encode())

    def test_bad_precision_rejected(self):
        payload = self._handshake().to_payload()
        payload["precision"] = "float16"
        with pytest.raises(ProtocolError, match="precision"):
            Handshake.from_body(json.dumps(payload).encode())

    def test_malformed_codebook_rejected(self):
        payload = self._handshake().to_payload()
        payload["codebook"] = {"offset": 0}  # no lengths table
        with pytest.raises(ProtocolError, match="codebook"):
            Handshake.from_body(json.dumps(payload).encode())

    def test_non_json_body_rejected(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            Handshake.from_body(b"\xff\xfe not json")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            Handshake.from_body(b"[1, 2, 3]")

    def test_json_frame_helper(self):
        kind, body = _read_from(
            encode_json_frame(FrameKind.ERROR, {"error": "nope"})
        )
        assert kind is FrameKind.ERROR
        assert json.loads(body) == {"error": "nope"}
