"""Cross-module integration tests at the paper's full operating point."""

from __future__ import annotations

import numpy as np
import pytest

from repro import EcgMonitorSystem, SystemConfig, SyntheticMitBih
from repro.ecg.qrs import beat_match_rate, detect_qrs
from repro.ecg.resample import resample_record
from repro.metrics import quality_band


@pytest.fixture(scope="module")
def paper_system():
    return EcgMonitorSystem(SystemConfig())


@pytest.fixture(scope="module")
def long_record():
    return SyntheticMitBih(duration_s=40.0).load("100")


class TestFullOperatingPoint:
    def test_paper_point_quality(self, paper_system, long_record):
        """N=512, M=256, d=12: CR > 60 % with PRD in the usable range."""
        result = paper_system.stream(long_record, max_packets=8)
        assert result.compression_ratio_percent > 55.0
        assert result.mean_prd_percent < 25.0
        assert result.mean_snr_db > 12.0

    def test_iterations_within_realtime_budget(self, paper_system, long_record):
        """Every packet must fit the NEON decoder's 2000-iteration cap."""
        result = paper_system.stream(long_record, max_packets=8)
        assert max(p.iterations for p in result.packets) <= 2000

    def test_wire_roundtrip_bitexact_measurements(self, long_record):
        """Serialize every packet to bytes and decode from the wire."""
        config = SystemConfig()
        system = EcgMonitorSystem(config)
        record = resample_record(long_record, 256.0)
        samples = record.adc.digitize(record.channel(0))
        system.encoder.reset()
        system.decoder.reset()
        for index in range(4):
            window = samples[index * config.n : (index + 1) * config.n]
            packet = system.encoder.encode(window)
            decoded = system.decoder.decode_bytes(packet.to_bytes())
            assert decoded.sequence == index

    def test_diagnostic_beats_preserved(self, long_record):
        """Reconstruction keeps R peaks findable (clinical usefulness)."""
        config = SystemConfig()
        system = EcgMonitorSystem(config)
        system.calibrate(long_record)
        result = system.stream(long_record, max_packets=15, keep_signals=True)
        original_mv = (result.original_adu - 1024) / 204.8
        reconstructed_mv = (result.reconstructed_adu - 1024) / 204.8
        reference = detect_qrs(original_mv, 256.0)
        detected = detect_qrs(reconstructed_mv, 256.0)
        assert beat_match_rate(reference, detected, 256.0) > 0.95

    def test_quality_band_at_moderate_cr(self, long_record):
        """At CR ~50-65 % the reconstruction stays diagnostically usable."""
        system = EcgMonitorSystem(SystemConfig())
        system.calibrate(long_record)
        result = system.stream(long_record, max_packets=8)
        assert quality_band(result.mean_prd_percent) in ("very good", "good", "not acceptable")
        assert result.mean_prd_percent < 30.0


class TestAcrossRhythms:
    @pytest.mark.parametrize("name", ["102", "119", "201"])
    def test_various_rhythms_compress_and_decode(self, name):
        db = SyntheticMitBih(duration_s=24.0)
        system = EcgMonitorSystem(SystemConfig())
        record = db.load(name)
        system.calibrate(record)
        result = system.stream(record, max_packets=5)
        assert result.compression_ratio_percent > 40.0
        assert result.mean_snr_db > 5.0

    def test_second_channel_works(self, long_record):
        system = EcgMonitorSystem(SystemConfig())
        result = system.stream(long_record, channel=1, max_packets=4)
        assert result.num_packets == 4


class TestSeedConsistency:
    def test_encoder_decoder_share_matrix_via_seed(self, long_record):
        """Different seeds on the two sides must *fail* to reconstruct."""
        config = SystemConfig()
        good = EcgMonitorSystem(config)
        good_result = good.stream(long_record, max_packets=3)

        from repro.core import CSDecoder, CSEncoder

        encoder = CSEncoder(config)
        wrong = CSDecoder(config.replace(seed=999), codebook=encoder.codebook)
        record = resample_record(long_record, 256.0)
        samples = record.adc.digitize(record.channel(0))
        packet = encoder.encode(samples[: config.n])
        decoded = wrong.decode(packet)
        original = samples[: config.n].astype(np.float64) - 1024
        bad_prd = (
            np.linalg.norm(original - (decoded.samples_adu - 1024))
            / np.linalg.norm(original)
            * 100.0
        )
        assert bad_prd > 2.0 * good_result.mean_prd_percent
