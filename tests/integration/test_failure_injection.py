"""Failure-injection tests: corrupted links, truncated payloads, losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SystemConfig
from repro.core import CSDecoder, CSEncoder, EncodedPacket
from repro.ecg import SyntheticMitBih
from repro.ecg.resample import resample_record
from repro.errors import DecodingError, PacketFormatError, ReproError


@pytest.fixture(scope="module")
def stream_setup():
    config = SystemConfig(max_iterations=200)  # fast solver for these tests
    encoder = CSEncoder(config)
    decoder = CSDecoder(config, codebook=encoder.codebook)
    record = resample_record(
        SyntheticMitBih(duration_s=30.0).load("100"), 256.0
    )
    samples = record.adc.digitize(record.channel(0))
    windows = [
        samples[i * config.n : (i + 1) * config.n]
        for i in range(len(samples) // config.n)
    ]
    return config, encoder, decoder, windows


class TestCorruption:
    def test_flipped_payload_bit_caught_by_crc(self, stream_setup):
        _, encoder, decoder, windows = stream_setup
        encoder.reset()
        decoder.reset()
        wire = bytearray(encoder.encode(windows[0]).to_bytes())
        wire[15] ^= 0x40
        with pytest.raises(PacketFormatError):
            decoder.decode_bytes(bytes(wire))

    def test_truncated_wire_rejected(self, stream_setup):
        _, encoder, decoder, windows = stream_setup
        encoder.reset()
        decoder.reset()
        wire = encoder.encode(windows[0]).to_bytes()
        for cut in (1, 5, len(wire) // 2):
            with pytest.raises(PacketFormatError):
                decoder.decode_bytes(wire[:-cut])

    def test_corrupted_huffman_payload_detected(self, stream_setup):
        """Bypass the CRC and hand the decoder garbage Huffman bits."""
        config, encoder, decoder, windows = stream_setup
        encoder.reset()
        decoder.reset()
        decoder.decode(encoder.encode(windows[0]))  # keyframe
        diff = encoder.encode(windows[1])
        corrupted = EncodedPacket(
            kind=diff.kind,
            sequence=diff.sequence,
            m=diff.m,
            payload=bytes(len(diff.payload)),  # all zeros
            payload_bits=diff.payload_bits,
        )
        with pytest.raises(ReproError):
            decoder.decode(corrupted)

    def test_all_ones_payload_detected(self, stream_setup):
        config, encoder, decoder, windows = stream_setup
        encoder.reset()
        decoder.reset()
        decoder.decode(encoder.encode(windows[0]))
        diff = encoder.encode(windows[1])
        corrupted = EncodedPacket(
            kind=diff.kind,
            sequence=diff.sequence,
            m=diff.m,
            payload=b"\xff" * len(diff.payload),
            payload_bits=diff.payload_bits,
        )
        with pytest.raises(ReproError):
            decoder.decode(corrupted)


class TestPacketLoss:
    def test_lost_difference_packet_recovers_at_keyframe(self, stream_setup):
        """Dropping a diff desynchronizes until the next keyframe."""
        base_config, _, _, windows = stream_setup
        config = base_config.replace(keyframe_interval=6)
        encoder = CSEncoder(config)
        decoder = CSDecoder(config, codebook=encoder.codebook)
        prd_by_index: dict[int, float] = {}
        for index in range(10):
            window = windows[index]
            packet = encoder.encode(window)
            if index == 2:
                continue  # packet lost on the air
            decoded = decoder.decode(packet)
            original = window.astype(np.float64) - 1024
            prd_by_index[index] = float(
                np.linalg.norm(original - (decoded.samples_adu - 1024))
                / np.linalg.norm(original)
            )
        healthy = max(prd_by_index[0], prd_by_index[1])
        # desync region (indices 3-5, before the keyframe at 6) is bad...
        assert min(prd_by_index[i] for i in (3, 4, 5)) > 2.0 * healthy
        # ...but the keyframe at index 6 restores quality
        assert prd_by_index[6] < 2.5 * healthy
        assert prd_by_index[9] < 2.5 * healthy

    def test_decoder_restart_mid_stream_waits_for_keyframe(self, stream_setup):
        config, encoder, decoder, windows = stream_setup
        encoder.reset()
        encoder.encode(windows[0])
        diff = encoder.encode(windows[1])
        fresh = CSDecoder(config, codebook=encoder.codebook)
        with pytest.raises(DecodingError):
            fresh.decode(diff)


class TestSolverStress:
    def test_tiny_iteration_budget_still_returns(self, stream_setup):
        """A starved solver degrades quality but never crashes."""
        config, encoder, _, windows = stream_setup
        starved = CSDecoder(
            config.replace(max_iterations=5), codebook=encoder.codebook
        )
        encoder.reset()
        decoded = starved.decode(encoder.encode(windows[0]))
        assert decoded.iterations == 5
        assert not decoded.solver.converged
        assert np.all(np.isfinite(decoded.samples_adu))

    def test_constant_window_handled(self, stream_setup):
        """A flat-lined lead (disconnected electrode) must not crash."""
        config, encoder, decoder, _ = stream_setup
        encoder.reset()
        decoder.reset()
        flat = np.full(config.n, 1024, dtype=np.int64)
        decoded = decoder.decode(encoder.encode(flat))
        assert np.allclose(decoded.samples_adu, 1024.0, atol=1.0)

    def test_full_scale_square_wave_handled(self, stream_setup):
        """Worst-case saturating input stays finite end to end."""
        config, encoder, decoder, _ = stream_setup
        encoder.reset()
        decoder.reset()
        square = np.where(
            np.arange(config.n) % 64 < 32, 2047, 0
        ).astype(np.int64)
        decoded = decoder.decode(encoder.encode(square))
        assert np.all(np.isfinite(decoded.samples_adu))
