"""Tests for the feature-level diagnostic metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import ecgsyn
from repro.metrics import diagnostic_report, hrv_summary
from repro.metrics.diagnostic import HrvSummary


@pytest.fixture(scope="module")
def clean_ecg():
    return ecgsyn(30.0, fs_hz=360.0, seed=5)


class TestHrvSummary:
    def test_constant_rr(self):
        peaks = np.arange(10) * 360  # exactly 1 s apart at 360 Hz
        summary = hrv_summary(peaks, 360.0)
        assert summary.mean_rr_ms == pytest.approx(1000.0)
        assert summary.sdnn_ms == pytest.approx(0.0)
        assert summary.rmssd_ms == pytest.approx(0.0)

    def test_known_variability(self):
        # alternating 900/1100 ms intervals
        intervals = np.array([0.9, 1.1] * 5)
        peaks = np.concatenate([[0.0], np.cumsum(intervals)]) * 360.0
        summary = hrv_summary(peaks.astype(int), 360.0)
        assert summary.mean_rr_ms == pytest.approx(1000.0, abs=5.0)
        assert summary.rmssd_ms == pytest.approx(200.0, abs=15.0)

    def test_too_few_beats(self):
        with pytest.raises(ValueError):
            hrv_summary(np.array([0, 360]), 360.0)


class TestDiagnosticReport:
    def test_identical_signals_are_perfect(self, clean_ecg):
        report = diagnostic_report(clean_ecg, clean_ecg.copy(), 360.0)
        assert report.beat_match_rate == 1.0
        assert report.timing_jitter_ms == pytest.approx(0.0)
        assert report.r_amplitude_error_percent == pytest.approx(0.0)
        assert report.sdnn_error_percent == pytest.approx(0.0, abs=1e-9)
        assert report.is_diagnostic()

    def test_small_noise_stays_diagnostic(self, clean_ecg, rng):
        noisy = clean_ecg + 0.03 * rng.standard_normal(len(clean_ecg))
        report = diagnostic_report(clean_ecg, noisy, 360.0)
        assert report.beat_match_rate > 0.95
        assert report.is_diagnostic()

    def test_flat_reconstruction_fails(self, clean_ecg):
        # a tiny-noise floor so the detector has *something* but no beats
        rng = np.random.default_rng(0)
        flat = 0.001 * rng.standard_normal(len(clean_ecg))
        report = diagnostic_report(clean_ecg, flat, 360.0)
        assert not report.is_diagnostic()

    def test_shape_mismatch_rejected(self, clean_ecg):
        with pytest.raises(ValueError):
            diagnostic_report(clean_ecg, clean_ecg[:-1], 360.0)

    def test_end_to_end_system_is_diagnostic(self, database):
        """The paper's operating point preserves clinical features."""
        from repro import EcgMonitorSystem, SystemConfig

        system = EcgMonitorSystem(SystemConfig())
        record = database.load("100")
        system.calibrate(record)
        result = system.stream(record, max_packets=9, keep_signals=True)
        original = (result.original_adu - 1024) / 204.8
        reconstructed = (result.reconstructed_adu - 1024) / 204.8
        report = diagnostic_report(original, reconstructed, 256.0)
        assert report.beat_match_rate > 0.95
        assert report.timing_jitter_ms < 20.0
        assert report.is_diagnostic()

    def test_hrv_preserved_through_compression(self, database):
        from repro import EcgMonitorSystem, SystemConfig

        system = EcgMonitorSystem(SystemConfig())
        record = database.load("100")
        system.calibrate(record)
        result = system.stream(record, max_packets=9, keep_signals=True)
        original = (result.original_adu - 1024) / 204.8
        reconstructed = (result.reconstructed_adu - 1024) / 204.8
        report = diagnostic_report(original, reconstructed, 256.0)
        assert report.sdnn_error_percent < 25.0
