"""Tests for CR / PRD / SNR metrics (paper Section III)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    compression_ratio,
    prd,
    prdn,
    quality_band,
    rmse,
    snr_db,
    snr_from_prd,
)


class TestCompressionRatio:
    def test_half_size_is_50_percent(self):
        assert compression_ratio(1000, 500) == pytest.approx(50.0)

    def test_no_compression_is_zero(self):
        assert compression_ratio(1000, 1000) == pytest.approx(0.0)

    def test_expansion_is_negative(self):
        assert compression_ratio(1000, 1200) < 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 10)
        with pytest.raises(ValueError):
            compression_ratio(10, -1)

    @given(st.integers(1, 10**9), st.integers(0, 10**9))
    def test_bounded_above_by_100(self, original, compressed):
        assert compression_ratio(original, compressed) <= 100.0


class TestPrdSnr:
    def test_perfect_reconstruction_prd_zero(self, rng):
        x = rng.standard_normal(100)
        assert prd(x, x) == pytest.approx(0.0)

    def test_zero_reconstruction_prd_100(self, rng):
        x = rng.standard_normal(100)
        assert prd(x, np.zeros(100)) == pytest.approx(100.0)

    def test_known_value(self):
        x = np.array([3.0, 4.0])  # norm 5
        r = np.array([3.0, 3.0])  # error norm 1
        assert prd(x, r) == pytest.approx(20.0)

    def test_zero_signal_rejected(self):
        with pytest.raises(ValueError):
            prd(np.zeros(4), np.ones(4))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prd(np.zeros(4), np.zeros(5))

    def test_snr_from_prd_anchors(self):
        assert snr_from_prd(100.0) == pytest.approx(0.0)
        assert snr_from_prd(10.0) == pytest.approx(20.0)
        assert snr_from_prd(1.0) == pytest.approx(40.0)

    def test_snr_db_composition(self, rng):
        x = rng.standard_normal(64)
        r = x + 0.1 * rng.standard_normal(64)
        assert snr_db(x, r) == pytest.approx(snr_from_prd(prd(x, r)))

    def test_snr_rejects_zero_prd(self):
        with pytest.raises(ValueError):
            snr_from_prd(0.0)

    def test_prdn_removes_mean_sensitivity(self, rng):
        x = rng.standard_normal(128)
        r = x + 0.05 * rng.standard_normal(128)
        base = prdn(x, r)
        shifted = prdn(x + 1000.0, r + 1000.0)
        assert shifted == pytest.approx(base, rel=1e-9)

    def test_prdn_constant_signal_rejected(self):
        with pytest.raises(ValueError):
            prdn(np.ones(8), np.ones(8))

    def test_prd_inflated_by_dc_but_prdn_not(self, rng):
        """Why the metrics are computed on centered signals."""
        x = rng.standard_normal(128)
        r = x + 0.3 * rng.standard_normal(128)
        assert prd(x + 1000.0, r + 1000.0) < 0.1  # DC masks the error
        assert prdn(x + 1000.0, r + 1000.0) > 1.0

    @settings(max_examples=30)
    @given(
        hnp.arrays(np.float64, 32, elements=st.floats(-100, 100)),
        hnp.arrays(np.float64, 32, elements=st.floats(-100, 100)),
    )
    def test_prd_nonnegative_and_symmetric_error(self, x, e):
        if np.linalg.norm(x) == 0:
            return
        assert prd(x, x + e) >= 0.0
        assert prd(x, x + e) == pytest.approx(prd(x, x - e))


class TestRmse:
    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_zero_for_identical(self, rng):
        x = rng.standard_normal(10)
        assert rmse(x, x) == 0.0


class TestQualityBands:
    def test_zigel_bands(self):
        assert quality_band(1.0) == "very good"
        assert quality_band(2.0) == "very good"
        assert quality_band(5.0) == "good"
        assert quality_band(9.0) == "good"
        assert quality_band(20.0) == "not acceptable"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quality_band(-1.0)
