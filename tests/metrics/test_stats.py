"""Tests for sweep-point aggregation and table rendering."""

from __future__ import annotations

import pytest

from repro.metrics import SweepPoint, aggregate_points, format_series
from repro.metrics.stats import point_fields


class TestAggregation:
    def _points(self):
        return [
            SweepPoint("100", 50.0, 10.0, 20.0, 600, 0.3),
            SweepPoint("101", 50.0, 20.0, 14.0, 800, 0.5),
        ]

    def test_means(self):
        aggregate = aggregate_points(self._points())
        assert aggregate["prd_percent"] == pytest.approx(15.0)
        assert aggregate["snr_db"] == pytest.approx(17.0)
        assert aggregate["iterations"] == pytest.approx(700.0)
        assert aggregate["decode_seconds"] == pytest.approx(0.4)
        assert aggregate["count"] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_points([])

    def test_point_fields_order(self):
        assert point_fields()[:2] == ["record", "cr_percent"]


class TestFormatting:
    def test_format_series_contains_values(self):
        rows = [{"cr": 50.0, "snr": 21.5}, {"cr": 60.0, "snr": 18.0}]
        text = format_series(rows, columns=["cr", "snr"], header="fig")
        assert "fig" in text
        assert "50.000" in text
        assert "18.000" in text

    def test_missing_column_renders_nan(self):
        text = format_series([{"a": 1.0}], columns=["a", "b"])
        assert "nan" in text

    def test_non_float_values(self):
        text = format_series([{"a": "x"}], columns=["a"])
        assert "x" in text
