"""Tests for the Cortex-A8 model and the NEON strategy models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import PlatformModelError
from repro.platforms import (
    CortexA8Model,
    DecodePipeline,
    LeftoverStrategy,
    if_conversion_cycles,
    leftover_strategy_cycles,
    loop_nest_instruction_counts,
    simulate_leftover_strategies,
)
from repro.platforms.cortexa8 import AccessPattern
from repro.platforms.kernels import idwt_counts, prox_counts


class TestRealTimeAnchors:
    """Section V's published iteration budgets and speedup."""

    def test_scalar_budget_800_iterations(self, paper_config):
        cpu = CortexA8Model()
        assert cpu.max_realtime_iterations(
            paper_config, DecodePipeline.SCALAR_VFP
        ) == pytest.approx(800, abs=8)

    def test_neon_budget_2000_iterations(self, paper_config):
        cpu = CortexA8Model()
        assert cpu.max_realtime_iterations(
            paper_config, DecodePipeline.NEON_OPTIMIZED
        ) == pytest.approx(2000, abs=20)

    def test_speedup_near_2_43(self, paper_config):
        """Derived speedup must land close to the measured 2.43x."""
        cpu = CortexA8Model()
        assert cpu.speedup(paper_config, 1000.0) == pytest.approx(2.43, abs=0.15)

    def test_decode_time_at_cr50_realistic(self, paper_config):
        """~700 iterations at CR 50 -> ~0.35 s (Fig 7's mid-range)."""
        cpu = CortexA8Model()
        time = cpu.decode_time_s(paper_config, 700)
        assert 0.30 < time < 0.42

    def test_neon_iteration_near_half_ms(self, paper_config):
        cpu = CortexA8Model()
        per_iteration = cpu.iteration_cycles(
            paper_config, DecodePipeline.NEON_OPTIMIZED
        ) / cpu.clock_hz
        assert per_iteration == pytest.approx(0.0005, rel=0.05)


class TestModelMechanics:
    def test_scalar_slower_than_neon_everywhere(self, paper_config):
        cpu = CortexA8Model()
        for counts, pattern in (
            (idwt_counts(paper_config), AccessPattern.STREAMING),
            (prox_counts(paper_config), AccessPattern.STREAMING),
        ):
            scalar = cpu.kernel_cycles(counts, DecodePipeline.SCALAR_VFP, pattern)
            neon = cpu.kernel_cycles(counts, DecodePipeline.NEON_OPTIMIZED, pattern)
            assert scalar > neon

    def test_serial_kernels_identical_cost_structure(self, paper_config):
        """Huffman decoding gains nothing from NEON."""
        from repro.platforms.kernels import huffman_decode_counts

        cpu = CortexA8Model()
        counts = huffman_decode_counts(paper_config)
        scalar = cpu.kernel_cycles(
            counts, DecodePipeline.SCALAR_VFP, AccessPattern.SERIAL
        )
        neon = cpu.kernel_cycles(
            counts, DecodePipeline.NEON_OPTIMIZED, AccessPattern.SERIAL
        )
        # only the calibrated overhead factors differ
        assert neon / scalar == pytest.approx(
            cpu.neon_overhead / cpu.scalar_overhead, rel=1e-9
        )

    def test_gather_gains_less_than_streaming(self, paper_config):
        from repro.platforms.kernels import sparse_matvec_float_counts

        cpu = CortexA8Model()
        gather = sparse_matvec_float_counts(paper_config)
        stream = idwt_counts(paper_config)
        gather_speedup = cpu.kernel_cycles(
            gather, DecodePipeline.SCALAR_VFP, AccessPattern.GATHER
        ) / cpu.kernel_cycles(
            gather, DecodePipeline.NEON_OPTIMIZED, AccessPattern.GATHER
        )
        stream_speedup = cpu.kernel_cycles(
            stream, DecodePipeline.SCALAR_VFP, AccessPattern.STREAMING
        ) / cpu.kernel_cycles(
            stream, DecodePipeline.NEON_OPTIMIZED, AccessPattern.STREAMING
        )
        assert stream_speedup > 3.0 * gather_speedup

    def test_invalid_clock(self):
        with pytest.raises(PlatformModelError):
            CortexA8Model(clock_hz=0.0)

    def test_negative_iterations_rejected(self, paper_config):
        with pytest.raises(PlatformModelError):
            CortexA8Model().decode_time_s(paper_config, -1)


class TestLeftoverStrategies:
    """Figure 3: padding <= lane-by-lane <= scalar epilogue."""

    @pytest.mark.parametrize("total", [5, 17, 511, 513, 1023])
    def test_ranking_matches_paper(self, total):
        padding = leftover_strategy_cycles(total, LeftoverStrategy.ARRAY_PADDING)
        lane = leftover_strategy_cycles(total, LeftoverStrategy.LANE_BY_LANE)
        scalar = leftover_strategy_cycles(total, LeftoverStrategy.SCALAR_EPILOGUE)
        assert padding <= lane <= scalar

    def test_no_leftover_all_equal(self):
        cycles = {
            strategy: leftover_strategy_cycles(512, strategy)
            for strategy in LeftoverStrategy
        }
        assert len(set(cycles.values())) == 1

    def test_negative_total_rejected(self):
        with pytest.raises(PlatformModelError):
            leftover_strategy_cycles(-1, LeftoverStrategy.ARRAY_PADDING)

    def test_functional_equivalence(self, rng):
        a = rng.standard_normal(515).astype(np.float32)
        b = rng.standard_normal(515).astype(np.float32)
        c = rng.standard_normal(515).astype(np.float32)
        outputs = simulate_leftover_strategies(a, b, c)
        reference = a + b * c
        for strategy, values in outputs.items():
            assert np.allclose(values, reference, atol=1e-6), strategy

    def test_simulation_rejects_mismatched_inputs(self):
        with pytest.raises(PlatformModelError):
            simulate_leftover_strategies(
                np.zeros(4), np.zeros(5), np.zeros(4)
            )


class TestIfConversion:
    """Figure 4: masked arithmetic beats the branchy loop."""

    def test_vectorized_faster(self):
        assert if_conversion_cycles(512, True) < if_conversion_cycles(512, False)

    def test_speedup_meaningful(self):
        speedup = if_conversion_cycles(512, False) / if_conversion_cycles(512, True)
        assert speedup > 4.0

    def test_zero_elements(self):
        assert if_conversion_cycles(0, True) == 0.0
        assert if_conversion_cycles(0, False) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(PlatformModelError):
            if_conversion_cycles(-1, True)

    def test_prox_speedup_exposed_on_model(self, paper_config):
        cpu = CortexA8Model()
        assert cpu.prox_speedup(paper_config.n) > 4.0


class TestLoopNest:
    """Figure 5: outer-loop vectorization of the two-filter bank."""

    def test_paper_example_counts(self):
        # I=4, m=8, L=4: outer -> 2*(4/4)*8 = 16 vector MACs
        counts = loop_nest_instruction_counts(4, 8)
        assert counts["outer"].vector_macs == 16
        # inner -> same MAC count but 2*I*(L-1) = 24 extra adds
        assert counts["inner"].vector_macs == 16
        assert counts["inner"].extra_adds == 24

    def test_outer_always_wins(self):
        for outer, taps in ((4, 8), (16, 8), (256, 16)):
            counts = loop_nest_instruction_counts(outer, taps)
            assert counts["outer"].cycles() <= counts["inner"].cycles()

    def test_fused_variant_for_small_outer(self):
        # the paper's l1 loops: I < L -> fused X/Y vector, I*m MACs
        counts = loop_nest_instruction_counts(2, 8, fused=True)
        assert counts["fused"].vector_macs == 16
        assert counts["fused"].vector_macs < 2 * 8 * 2  # beats duplicating

    def test_invalid_sizes(self):
        with pytest.raises(PlatformModelError):
            loop_nest_instruction_counts(0, 8)
