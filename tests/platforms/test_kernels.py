"""Tests for the kernel op-count profiles."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.platforms.kernels import (
    KernelCounts,
    difference_counts,
    dense_matvec_counts,
    dwt_counts,
    encoder_packet_counts,
    fista_iteration_counts,
    gaussian_generation_counts,
    huffman_decode_counts,
    huffman_encode_counts,
    idwt_counts,
    momentum_counts,
    packet_reconstruction_counts,
    prox_counts,
    quantize_counts,
    sparse_matvec_float_counts,
    sparse_sensing_counts,
)


class TestKernelCounts:
    def test_addition_merges_fields(self):
        a = KernelCounts(name="a", int_ops=5, loads=2)
        b = KernelCounts(name="b", int_ops=3, stores=1)
        merged = a + b
        assert merged.int_ops == 8
        assert merged.loads == 2
        assert merged.stores == 1

    def test_scaled(self):
        counts = KernelCounts(int_ops=4, branches=2).scaled(10)
        assert counts.int_ops == 40
        assert counts.branches == 20

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            KernelCounts().scaled(-1)

    def test_total_ops(self):
        assert KernelCounts(int_ops=3, loads=2).total_ops() == 5


class TestEncoderKernels:
    def test_sparse_sensing_counts_paper_point(self, paper_config):
        counts = sparse_sensing_counts(paper_config)
        assert counts.int32_adds == 512 * 12
        assert counts.prng_draws == 512 * 12
        assert counts.float_macs == 0  # integer-only pipeline

    def test_stored_index_variant_uses_table(self, paper_config):
        counts = sparse_sensing_counts(paper_config, regenerate_indices=False)
        assert counts.prng_draws == 0
        assert counts.table_lookups == 512 * 12

    def test_quantize_difference_scale_with_m(self, paper_config):
        q = quantize_counts(paper_config)
        d = difference_counts(paper_config)
        assert q.int_ops == 3 * 256
        assert d.int_ops == 4 * 256

    def test_huffman_encode_bits(self, paper_config):
        counts = huffman_encode_counts(paper_config, mean_bits_per_symbol=6.0)
        assert counts.bit_ops == 1536

    def test_encoder_packet_is_sum_of_stages(self, paper_config):
        total = encoder_packet_counts(paper_config)
        parts = (
            sparse_sensing_counts(paper_config)
            + quantize_counts(paper_config)
            + difference_counts(paper_config)
            + huffman_encode_counts(paper_config, 6.0)
        )
        assert total.int32_adds == parts.int32_adds
        assert total.bit_ops == parts.bit_ops

    def test_gaussian_generation_scale(self, paper_config):
        counts = gaussian_generation_counts(paper_config)
        assert counts.prng_draws == 2 * 256 * 512
        assert counts.int_muls == 256 * 512

    def test_dense_matvec_scale(self, paper_config):
        counts = dense_matvec_counts(paper_config)
        assert counts.int_muls == 256 * 512
        assert counts.int32_adds == 256 * 512


class TestDecoderKernels:
    def test_filter_bank_mac_count(self, paper_config):
        counts = idwt_counts(paper_config, filter_length=8)
        # levels 5: halves 256,128,64,32,16 -> 2*8*sum = 7936
        assert counts.float_macs == 2 * 8 * (256 + 128 + 64 + 32 + 16)

    def test_dwt_idwt_symmetric(self, paper_config):
        assert (
            dwt_counts(paper_config).float_macs
            == idwt_counts(paper_config).float_macs
        )

    def test_sparse_matvec_float(self, paper_config):
        counts = sparse_matvec_float_counts(paper_config)
        assert counts.float_ops == 512 * 12
        assert counts.loads == 2 * 512 * 12

    def test_prox_counts(self, paper_config):
        assert prox_counts(paper_config).float_ops == 4 * 512

    def test_fista_iteration_composes_all_kernels(self, paper_config):
        iteration = fista_iteration_counts(paper_config)
        minimum = (
            2 * idwt_counts(paper_config).float_macs
        )
        assert iteration.float_macs == minimum
        assert iteration.float_ops >= 2 * 512 * 12

    def test_huffman_decode_counts(self, paper_config):
        counts = huffman_decode_counts(paper_config, 6.0)
        assert counts.bit_ops == 1536
        assert counts.stores == 256

    def test_packet_reconstruction_counts(self, paper_config):
        counts = packet_reconstruction_counts(paper_config)
        assert counts.float_ops == 256

    def test_momentum_scales_with_n_and_m(self, paper_config):
        counts = momentum_counts(paper_config)
        assert counts.float_ops == 3 * 512 + 2 * 256
