"""Tests for the firmware memory-footprint model."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import MemoryBudgetError
from repro.platforms import MemoryMap, MemoryRegion, encoder_memory_map
from repro.platforms.memory import MSP430_FLASH_BYTES, MSP430_RAM_BYTES


class TestPaperFootprint:
    """The published 6.5 kB RAM / 7.5 kB flash figures."""

    def test_ram_is_6_5_kb(self, paper_config):
        memory = encoder_memory_map(paper_config)
        assert memory.ram_bytes() == 6656  # 6.5 kB exactly

    def test_flash_is_7_5_kb(self, paper_config):
        memory = encoder_memory_map(paper_config)
        assert memory.flash_bytes() == pytest.approx(7680, abs=200)

    def test_huffman_tables_are_1_5_kb(self, paper_config):
        memory = encoder_memory_map(paper_config)
        huffman = sum(
            e.size_bytes for e in memory.entries if "huffman" in e.name
        )
        assert huffman == 1536

    def test_fits_msp430(self, paper_config):
        memory = encoder_memory_map(paper_config)
        assert memory.fits()
        memory.check()  # must not raise

    def test_stored_gaussian_blows_flash(self, paper_config):
        """Approach 2 needs m*n*4 B = 512 kB >> 48 kB flash."""
        memory = encoder_memory_map(paper_config, store_gaussian_matrix=True)
        assert not memory.fits()
        with pytest.raises(MemoryBudgetError):
            memory.check()

    def test_stored_indices_still_fit_flash(self, paper_config):
        """Storing the 6 kB row-index table would fit flash (48 kB) but
        contradicts the paper's published 7.5 kB figure."""
        memory = encoder_memory_map(paper_config, store_sparse_indices=True)
        assert memory.fits()
        assert memory.flash_bytes() > 12_000


class TestMemoryMapMechanics:
    def test_budgets(self):
        assert MSP430_RAM_BYTES == 10240
        assert MSP430_FLASH_BYTES == 49152

    def test_add_and_totals(self):
        memory = MemoryMap(ram_budget_bytes=100, flash_budget_bytes=100)
        memory.add("a", 60, MemoryRegion.RAM)
        memory.add("b", 30, MemoryRegion.FLASH)
        assert memory.ram_bytes() == 60
        assert memory.flash_bytes() == 30
        assert memory.fits()

    def test_ram_overflow_detected(self):
        memory = MemoryMap(ram_budget_bytes=10, flash_budget_bytes=100)
        memory.add("big", 11, MemoryRegion.RAM)
        with pytest.raises(MemoryBudgetError):
            memory.check()

    def test_negative_allocation_rejected(self):
        memory = MemoryMap(ram_budget_bytes=10, flash_budget_bytes=10)
        with pytest.raises(MemoryBudgetError):
            memory.add("bad", -1, MemoryRegion.RAM)

    def test_render_contains_totals(self, paper_config):
        text = encoder_memory_map(paper_config).render()
        assert "TOTAL RAM" in text
        assert "TOTAL FLASH" in text
        assert "huffman codewords" in text

    def test_ram_scales_with_m(self, paper_config):
        small = encoder_memory_map(paper_config.replace(m=64))
        large = encoder_memory_map(paper_config.replace(m=512, d=12))
        assert small.ram_bytes() < large.ram_bytes()
