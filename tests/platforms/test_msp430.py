"""Tests for the MSP430 cycle/energy model — the paper's node claims."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import PlatformModelError
from repro.platforms import Msp430Model, SensingApproach
from repro.platforms.kernels import KernelCounts


class TestCalibrationAnchors:
    """The published numbers the model is pinned to."""

    def test_sensing_time_is_82ms(self, paper_config):
        model = Msp430Model()
        assert model.sensing_time_s(paper_config) * 1e3 == pytest.approx(
            82.0, abs=0.5
        )

    def test_node_cpu_below_5_percent(self, paper_config):
        model = Msp430Model()
        assert model.cpu_usage_fraction(paper_config) < 0.05

    def test_calibration_report_consistent(self, paper_config):
        report = Msp430Model().calibration_report(paper_config)
        assert report["calibrated_ms"] == pytest.approx(82.0, abs=0.5)
        assert report["paper_anchor_ms"] == 82.0
        assert report["compiler_overhead"] > 1.0


class TestApproachComparison:
    """Section IV-A2: why approaches 1 and 2 were rejected."""

    def test_onboard_gaussian_not_realtime(self, paper_config):
        model = Msp430Model()
        assert not model.is_real_time(
            paper_config, SensingApproach.ONBOARD_GAUSSIAN
        )

    def test_sparse_binary_realtime_with_margin(self, paper_config):
        model = Msp430Model()
        time = model.approach_time_s(paper_config, SensingApproach.SPARSE_BINARY)
        assert time < 0.1 * paper_config.packet_seconds

    def test_stored_gaussian_much_slower_than_sparse(self, paper_config):
        model = Msp430Model()
        dense = model.approach_time_s(paper_config, SensingApproach.STORED_GAUSSIAN)
        sparse = model.approach_time_s(paper_config, SensingApproach.SPARSE_BINARY)
        assert dense > 10.0 * sparse

    def test_ordering_of_approaches(self, paper_config):
        model = Msp430Model()
        times = {
            approach: model.approach_time_s(paper_config, approach)
            for approach in SensingApproach
        }
        assert (
            times[SensingApproach.SPARSE_BINARY]
            < times[SensingApproach.STORED_GAUSSIAN]
            < times[SensingApproach.ONBOARD_GAUSSIAN]
        )


class TestModelMechanics:
    def test_float_ops_forbidden(self):
        model = Msp430Model()
        counts = KernelCounts(float_macs=1)
        assert model.hand_assembly_cycles(counts) > 1e8  # guard fires

    def test_cycles_scale_with_overhead(self, paper_config):
        from repro.platforms.kernels import sparse_sensing_counts

        counts = sparse_sensing_counts(paper_config)
        base = Msp430Model(compiler_overhead=1.0).cycles(counts)
        doubled = Msp430Model(compiler_overhead=2.0).cycles(counts)
        assert doubled == pytest.approx(2.0 * base)

    def test_invalid_parameters(self):
        with pytest.raises(PlatformModelError):
            Msp430Model(clock_hz=0.0)
        with pytest.raises(PlatformModelError):
            Msp430Model(compiler_overhead=0.5)

    def test_report_converts_to_seconds(self, paper_config):
        from repro.platforms.kernels import quantize_counts

        model = Msp430Model()
        report = model.report(quantize_counts(paper_config))
        assert report.seconds == pytest.approx(report.cycles / 8e6)
        assert report.milliseconds() == pytest.approx(report.seconds * 1e3)

    def test_encode_energy_positive(self, paper_config):
        model = Msp430Model()
        assert model.encode_energy_mj(paper_config) > 0.0

    def test_encode_time_scales_with_d(self, paper_config):
        model = Msp430Model()
        slow = model.encode_packet_time_s(paper_config.replace(d=24))
        fast = model.encode_packet_time_s(paper_config.replace(d=6))
        assert slow > 1.5 * fast

    def test_cpu_usage_scales_with_packet_rate(self, paper_config):
        """Same work in half the time window -> double the duty."""
        model = Msp430Model()
        half_packets = paper_config.replace(n=256, m=128)
        assert model.cpu_usage_fraction(half_packets) < 0.05
