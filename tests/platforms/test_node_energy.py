"""Tests for Bluetooth, battery, Shimmer and iPhone composition models."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import PlatformModelError
from repro.platforms import (
    Battery,
    BluetoothLink,
    IPhoneModel,
    Msp430Model,
    ShimmerNode,
)
from repro.platforms.battery import lifetime_extension_percent
from repro.platforms.cortexa8 import DecodePipeline


class TestBluetoothLink:
    def test_airtime(self):
        link = BluetoothLink(throughput_bps=60_000.0)
        assert link.airtime_s(6_000) == pytest.approx(0.1)

    def test_tx_energy(self):
        link = BluetoothLink(
            throughput_bps=60_000.0, tx_power_mw=90.0, idle_power_mw=3.0
        )
        assert link.tx_energy_mj(60_000) == pytest.approx(87.0)

    def test_average_power_interpolates(self):
        link = BluetoothLink(
            throughput_bps=60_000.0, tx_power_mw=90.0, idle_power_mw=3.0
        )
        assert link.average_power_mw(0.0) == pytest.approx(3.0)
        assert link.average_power_mw(60_000.0) == pytest.approx(90.0)
        assert link.average_power_mw(30_000.0) == pytest.approx(46.5)

    def test_rate_above_capacity_saturates(self):
        link = BluetoothLink(throughput_bps=60_000.0, tx_power_mw=90.0)
        assert link.average_power_mw(120_000.0) == pytest.approx(90.0)

    def test_fits_realtime(self, paper_config):
        link = BluetoothLink()
        assert link.fits_realtime(3072, paper_config.packet_seconds)
        assert not link.fits_realtime(10**7, paper_config.packet_seconds)

    def test_validation(self):
        with pytest.raises(PlatformModelError):
            BluetoothLink(throughput_bps=0.0)
        with pytest.raises(PlatformModelError):
            BluetoothLink().airtime_s(-1)
        with pytest.raises(PlatformModelError):
            BluetoothLink().average_power_mw(-1)
        with pytest.raises(PlatformModelError):
            BluetoothLink().fits_realtime(100, 0.0)


class TestBattery:
    def test_energy_joules(self):
        battery = Battery(capacity_mah=280.0, voltage_v=3.7)
        assert battery.energy_j == pytest.approx(280 * 3.6 * 3.7)

    def test_lifetime_hours(self):
        battery = Battery(capacity_mah=1000.0, voltage_v=1.0)
        # 3600 J at 1 mW -> 3.6e6 s -> 1000 h
        assert battery.lifetime_hours(1.0) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(PlatformModelError):
            Battery(capacity_mah=0.0)
        with pytest.raises(PlatformModelError):
            Battery().lifetime_hours(0.0)

    def test_extension_formula(self):
        assert lifetime_extension_percent(112.9, 100.0) == pytest.approx(12.9)
        with pytest.raises(PlatformModelError):
            lifetime_extension_percent(0.0, 1.0)


class TestShimmerNode:
    """Section V: < 5 % CPU and the 12.9 % lifetime extension."""

    def test_cpu_usage_below_5_percent(self, paper_config):
        node = ShimmerNode()
        assert node.cpu_usage_percent(paper_config) < 5.0

    def test_lifetime_extension_at_cr50_is_12_9(self, paper_config):
        """The calibration anchor: exactly half the original bits."""
        node = ShimmerNode()
        half_bits = paper_config.original_packet_bits * 0.5
        assert node.lifetime_extension_percent(
            paper_config, half_bits
        ) == pytest.approx(12.9, abs=0.1)

    def test_extension_grows_with_compression(self, paper_config):
        node = ShimmerNode()
        bits = paper_config.original_packet_bits
        low = node.lifetime_extension_percent(paper_config, bits * 0.7)
        high = node.lifetime_extension_percent(paper_config, bits * 0.3)
        assert high > low > 0.0

    def test_power_breakdown_sums(self, paper_config):
        node = ShimmerNode()
        breakdown = node.compressed_power(paper_config, 3072.0)
        assert breakdown.total_mw == pytest.approx(
            breakdown.base_mw + breakdown.radio_mw + breakdown.cpu_mw
        )

    def test_streaming_has_no_cpu_term(self, paper_config):
        node = ShimmerNode()
        assert node.streaming_power(paper_config).cpu_mw == 0.0

    def test_lifetime_hours_plausible(self, paper_config):
        """A 280 mAh Shimmer streaming raw ECG lives for days, not years."""
        node = ShimmerNode()
        hours = node.lifetime_hours(node.streaming_power(paper_config))
        assert 20.0 < hours < 200.0

    def test_negative_bits_rejected(self, paper_config):
        with pytest.raises(PlatformModelError):
            ShimmerNode().compressed_power(paper_config, -1.0)

    def test_raw_rate(self, paper_config):
        assert ShimmerNode().raw_stream_bits_per_second(
            paper_config
        ) == pytest.approx(256 * 12)


class TestIPhoneModel:
    def test_cpu_usage_at_cr50_near_17_7(self, paper_config):
        """~700 iterations (the paper's CR-50 average) -> ~17.7 % CPU."""
        phone = IPhoneModel()
        usage = phone.cpu_usage_percent(paper_config, 700)
        assert usage == pytest.approx(17.7, abs=2.5)

    def test_cpu_usage_below_30_percent_over_sweep(self, paper_config):
        """The abstract's claim, over the full Fig-7 iteration range."""
        phone = IPhoneModel()
        for iterations in (600, 700, 800, 900, 1000):
            assert phone.cpu_usage_percent(paper_config, iterations) < 30.0

    def test_display_share_small(self):
        phone = IPhoneModel()
        assert 0.005 < phone.display_cpu_fraction() < 0.05

    def test_realtime_within_budget(self, paper_config):
        phone = IPhoneModel()
        assert phone.is_realtime(paper_config, 1500)
        assert not phone.is_realtime(paper_config, 5000)

    def test_max_iterations_delegated(self, paper_config):
        phone = IPhoneModel()
        assert phone.max_realtime_iterations(
            paper_config, DecodePipeline.NEON_OPTIMIZED
        ) == pytest.approx(2000, abs=20)

    def test_display_pixel_rate(self):
        phone = IPhoneModel()
        # 4 px / 15 ms ~ 267 px/s ~ the 256 Hz sample rate
        assert phone.display_pixel_rate_hz() == pytest.approx(266.7, abs=0.1)

    def test_buffer_requirement_6s(self):
        assert IPhoneModel().buffer_requirement_s() == 6.0

    def test_validation(self):
        with pytest.raises(PlatformModelError):
            IPhoneModel(display_period_s=0.0)
        with pytest.raises(PlatformModelError):
            IPhoneModel(pixels_per_wakeup=0)
