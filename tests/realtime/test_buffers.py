"""Tests for the 6-second shared ring buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferOverrunError, BufferUnderrunError
from repro.realtime import SampleRingBuffer


class TestBasics:
    def test_write_then_read(self):
        buffer = SampleRingBuffer(100)
        assert buffer.write(40) == 40
        assert buffer.occupancy == 40
        assert buffer.read(30) == 30
        assert buffer.occupancy == 10

    def test_occupancy_seconds(self):
        buffer = SampleRingBuffer(1536)
        buffer.write(512)
        assert buffer.occupancy_seconds(256.0) == pytest.approx(2.0)

    def test_free_tracks_capacity(self):
        buffer = SampleRingBuffer(10)
        buffer.write(3)
        assert buffer.free == 7

    def test_strict_overflow_raises(self):
        buffer = SampleRingBuffer(10, strict=True)
        buffer.write(8)
        with pytest.raises(BufferOverrunError):
            buffer.write(5)

    def test_strict_underrun_raises(self):
        buffer = SampleRingBuffer(10, strict=True)
        buffer.write(2)
        with pytest.raises(BufferUnderrunError):
            buffer.read(5)

    def test_lenient_overflow_drops_and_counts(self):
        buffer = SampleRingBuffer(10, strict=False)
        buffer.write(8)
        accepted = buffer.write(5)
        assert accepted == 2
        assert buffer.overruns == 1
        assert buffer.occupancy == 10

    def test_lenient_underrun_partial_and_counts(self):
        buffer = SampleRingBuffer(10, strict=False)
        buffer.write(3)
        got = buffer.read(5)
        assert got == 3
        assert buffer.underruns == 1
        assert buffer.occupancy == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SampleRingBuffer(0)

    def test_negative_amounts_rejected(self):
        buffer = SampleRingBuffer(10)
        with pytest.raises(ValueError):
            buffer.write(-1)
        with pytest.raises(ValueError):
            buffer.read(-1)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SampleRingBuffer(10).occupancy_seconds(0.0)


class TestStatistics:
    def test_max_occupancy_tracked(self):
        buffer = SampleRingBuffer(100)
        buffer.write(60)
        buffer.read(50)
        buffer.write(20)
        assert buffer.max_occupancy == 60

    def test_min_occupancy_starts_at_first_read(self):
        buffer = SampleRingBuffer(100)
        # the fill phase must not register as a minimum, and before the
        # consumer ever reads there is no steady-state minimum to report
        buffer.write(10)
        assert not buffer.started
        assert buffer.min_occupancy_after_start == 0
        buffer.read(5)
        assert buffer.started
        assert buffer.min_occupancy_after_start == 5

    def test_min_occupancy_zero_sentinel_when_never_started(self):
        """Regression: a run whose display never starts must not report
        a full buffer as its minimum occupancy."""
        buffer = SampleRingBuffer(100)
        buffer.write(60)
        buffer.write(30)
        assert buffer.min_occupancy_after_start == 0
        assert buffer.min_occupancy_after_start == int(
            buffer.min_occupancy_after_start
        )  # NaN-free integer sentinel

    def test_totals(self):
        buffer = SampleRingBuffer(100)
        buffer.write(30)
        buffer.read(10)
        buffer.write(5)
        assert buffer.total_written == 35
        assert buffer.total_read == 10


class TestInvariantProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["w", "r"]), st.integers(0, 50)),
            max_size=60,
        )
    )
    def test_occupancy_invariants(self, operations):
        """0 <= occupancy <= capacity, conservation of samples."""
        buffer = SampleRingBuffer(64, strict=False)
        for op, amount in operations:
            if op == "w":
                buffer.write(amount)
            else:
                buffer.read(amount)
            assert 0 <= buffer.occupancy <= buffer.capacity
        assert buffer.total_written - buffer.total_read == buffer.occupancy
