"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import RealTimeError
from repro.realtime import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(2.0, lambda s: log.append("b"))
        sim.schedule_at(1.0, lambda s: log.append("a"))
        sim.schedule_at(3.0, lambda s: log.append("c"))
        sim.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_ties_break_in_insertion_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule_at(1.0, lambda s, n=name: log.append(n))
        sim.run_until(2.0)
        assert log == ["a", "b", "c"]

    def test_relative_schedule(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda s: times.append(s.now))
        sim.run_until(1.0)
        assert times == [0.5]

    def test_clock_advances_to_end(self):
        sim = Simulator()
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_actions_can_schedule_more(self):
        sim = Simulator()
        log = []

        def chain(s):
            log.append(s.now)
            if len(log) < 3:
                s.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert log == [1.0, 2.0, 3.0]

    def test_events_after_horizon_not_run(self):
        sim = Simulator()
        log = []
        sim.schedule_at(5.0, lambda s: log.append("late"))
        sim.run_until(4.0)
        assert log == []
        assert sim.pending_events == 1

    def test_periodic(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda s: ticks.append(s.now), start=1.0)
        sim.run_until(4.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_past_schedule_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(RealTimeError):
            sim.schedule_at(1.0, lambda s: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(RealTimeError):
            Simulator().schedule(-1.0, lambda s: None)

    def test_invalid_period_rejected(self):
        with pytest.raises(RealTimeError):
            Simulator().schedule_every(0.0, lambda s: None)

    def test_backwards_run_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(RealTimeError):
            sim.run_until(1.0)

    def test_runaway_guard(self):
        sim = Simulator()

        def storm(s):
            s.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(RealTimeError):
            sim.run_until(1.0, max_events=1000)

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda s: None)
        sim.schedule_at(2.0, lambda s: None)
        sim.run_until(3.0)
        assert sim.processed_events == 2
