"""Tests for the end-to-end real-time pipeline simulation (Figure 8)."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import RealTimeError
from repro.platforms.cortexa8 import DecodePipeline
from repro.realtime import MonitorPipeline, PipelineConfig, Processor


def _run(iterations=700, bits=3072, duration=120.0, **kwargs):
    config = PipelineConfig(
        system=SystemConfig(),
        packet_bits=[bits],
        packet_iterations=[iterations],
        duration_s=duration,
        **kwargs,
    )
    return MonitorPipeline(config).run()


class TestProcessor:
    def test_jobs_serialize(self):
        cpu = Processor("test")
        first = cpu.submit(0.0, 1.0)
        second = cpu.submit(0.5, 1.0)  # queued behind the first
        assert first == 1.0
        assert second == 2.0

    def test_idle_gap_not_counted_busy(self):
        cpu = Processor("test")
        cpu.submit(0.0, 1.0)
        cpu.submit(5.0, 1.0)
        assert cpu.busy_seconds == 2.0
        assert cpu.utilization(10.0) == pytest.approx(0.2)

    def test_overload_not_clamped(self):
        """Regression: utilization above 1.0 must be reported, not
        silently clamped — it is the CPU-overload signal."""
        cpu = Processor("test")
        for start in range(10):
            cpu.submit(float(start), 1.5)  # 15 s of work in 10 s
        assert cpu.utilization(10.0) == pytest.approx(1.5)

    def test_validation(self):
        cpu = Processor("test")
        with pytest.raises(RealTimeError):
            cpu.submit(0.0, -1.0)
        with pytest.raises(RealTimeError):
            cpu.utilization(0.0)


class TestPaperClaims:
    def test_node_cpu_below_5_percent(self):
        report = _run()
        assert report.node_cpu_percent < 5.0

    def test_phone_cpu_below_30_percent(self):
        report = _run()
        assert report.phone_cpu_percent < 30.0

    def test_realtime_at_cr50_operating_point(self):
        report = _run(iterations=700, bits=3072)
        assert report.is_realtime()
        assert report.underruns == 0
        assert report.overruns == 0
        assert report.decode_deadline_misses == 0

    def test_all_packets_decoded(self):
        report = _run(duration=60.0)
        assert report.packets_encoded == 30  # one per 2 s
        assert report.packets_decoded >= report.packets_encoded - 1

    def test_buffer_stays_within_6s(self):
        report = _run()
        assert report.buffer_max_s <= 6.0
        assert report.buffer_min_s >= 0.0

    def test_latency_includes_display_delay(self):
        """End-to-end latency is bounded by the 6 s buffer design."""
        report = _run()
        assert 0.0 < report.mean_end_to_end_latency_s < 6.0


class TestDegradedOperation:
    def test_scalar_pipeline_slower_but_may_hold(self):
        neon = _run(iterations=700, decode_pipeline=DecodePipeline.NEON_OPTIMIZED)
        scalar = _run(iterations=700, decode_pipeline=DecodePipeline.SCALAR_VFP)
        assert scalar.phone_decode_percent > 2.0 * neon.phone_decode_percent

    def test_scalar_pipeline_saturates_past_budget(self):
        """Without NEON, 1200 iterations already eat >70 % of the phone
        (the paper's 1 s/2 s budget reserves headroom for everything
        else), and past the full 2 s packet period decoding falls
        irrecoverably behind."""
        at_1200 = _run(
            iterations=1200, decode_pipeline=DecodePipeline.SCALAR_VFP
        )
        assert at_1200.phone_cpu_percent > 70.0
        at_1800 = _run(
            iterations=1800, decode_pipeline=DecodePipeline.SCALAR_VFP
        )
        assert at_1800.decode_deadline_misses > 0

    def test_neon_pipeline_holds_at_1500(self):
        report = _run(iterations=1500)
        assert report.decode_deadline_misses == 0

    def test_slow_radio_breaks_realtime(self):
        from repro.platforms.bluetooth import BluetoothLink

        config = PipelineConfig(
            system=SystemConfig(),
            packet_bits=[3072],
            packet_iterations=[700],
            duration_s=60.0,
        )
        slow = MonitorPipeline(
            config, radio=BluetoothLink(throughput_bps=1200.0)
        ).run()
        assert slow.decode_deadline_misses > 0

    def test_varying_iterations_cycle(self):
        config = PipelineConfig(
            system=SystemConfig(),
            packet_bits=[3072, 2800, 3100],
            packet_iterations=[650, 720, 900],
            duration_s=60.0,
        )
        report = MonitorPipeline(config).run()
        assert report.packets_decoded > 0


class TestOverloadAccounting:
    """Regressions for the CPU-overload reporting fixes."""

    def _overloaded(self):
        # scalar decode of 3000 iterations takes far longer than the
        # 2 s packet period: the phone CPU is handed more work than
        # wall-clock time
        return _run(
            iterations=3000,
            decode_pipeline=DecodePipeline.SCALAR_VFP,
            duration=60.0,
        )

    def test_overload_shows_above_100_percent(self):
        report = self._overloaded()
        assert report.phone_cpu_percent > 100.0
        assert report.decode_deadline_misses > 0

    def test_decode_share_never_negative(self):
        report = self._overloaded()
        assert report.phone_decode_percent >= 0.0
        # decode share is derived from busy time, not from the
        # (potentially clamped) total minus display percentages
        assert report.phone_decode_percent == pytest.approx(
            report.phone_cpu_percent - report.phone_display_percent,
            abs=1e-9,
        )

    def test_buffer_min_zero_when_display_never_starts(self):
        """Regression: if decoding is so slow the display threshold is
        never reached, buffer_min_s must report 0, not a full buffer."""
        report = _run(
            iterations=20000,
            decode_pipeline=DecodePipeline.SCALAR_VFP,
            duration=20.0,
        )
        assert report.phone_display_percent == 0.0
        assert report.buffer_min_s == 0.0


class TestConfigValidation:
    def test_empty_traces_rejected(self):
        with pytest.raises(RealTimeError):
            PipelineConfig(
                system=SystemConfig(),
                packet_bits=[],
                packet_iterations=[700],
            )

    def test_invalid_duration(self):
        with pytest.raises(RealTimeError):
            PipelineConfig(
                system=SystemConfig(),
                packet_bits=[100],
                packet_iterations=[700],
                duration_s=0.0,
            )

    def test_invalid_buffer(self):
        with pytest.raises(RealTimeError):
            PipelineConfig(
                system=SystemConfig(),
                packet_bits=[100],
                packet_iterations=[700],
                buffer_seconds=0.0,
            )


class TestPipelineTelemetry:
    """The realtime surface publishes through the telemetry plane."""

    def test_processor_meters_jobs(self):
        from repro.realtime.pipeline import Processor
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cpu = Processor("phone", meter=registry.meter())
        cpu.submit(0.0, 0.25)
        cpu.submit(1.0, 0.5)
        snap = registry.snapshot()
        assert snap.counter_value("realtime_jobs", processor="phone") == 2
        assert snap.counter_value(
            "realtime_busy_seconds", processor="phone"
        ) == pytest.approx(0.75)
        # the attribute ledger (the report's source) agrees
        assert cpu.busy_seconds == pytest.approx(0.75)
        assert cpu.jobs == 2

    def test_pipeline_run_publishes_utilization(self, small_config):
        from repro.realtime.pipeline import MonitorPipeline, PipelineConfig
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        config = PipelineConfig(
            system=small_config,
            packet_bits=[1200],
            packet_iterations=[50],
            duration_s=20.0,
        )
        report = MonitorPipeline(config, telemetry=registry).run()
        snap = registry.snapshot()
        assert snap.gauge_value(
            "realtime_utilization_percent", processor="phone"
        ) == pytest.approx(report.phone_cpu_percent)
        assert snap.gauge_value(
            "realtime_utilization_percent", processor="node"
        ) == pytest.approx(report.node_cpu_percent)
        assert snap.gauge_value("realtime_deadline_misses") == float(
            report.decode_deadline_misses
        )
        hist = snap.histogram_total("realtime_end_to_end_latency_seconds")
        assert hist.total == report.packets_decoded
