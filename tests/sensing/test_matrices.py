"""Tests for Gaussian, Bernoulli and quantized sensing matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SensingError
from repro.sensing import (
    BernoulliMatrix,
    GaussianMatrix,
    QuantizedGaussianMatrix,
)


class TestGaussianMatrix:
    def test_shape_and_scaling(self):
        phi = GaussianMatrix(64, 256, seed=1)
        assert phi.shape == (64, 256)
        # entries ~ N(0, 1/n): sample std ~ 1/16
        assert np.std(phi.matrix()) == pytest.approx(1.0 / 16.0, rel=0.05)

    def test_deterministic_by_seed(self):
        a = GaussianMatrix(16, 32, seed=5).matrix()
        b = GaussianMatrix(16, 32, seed=5).matrix()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = GaussianMatrix(16, 32, seed=5).matrix()
        b = GaussianMatrix(16, 32, seed=6).matrix()
        assert not np.array_equal(a, b)

    def test_measure(self, rng):
        phi = GaussianMatrix(8, 32, seed=2)
        x = rng.standard_normal(32)
        assert np.allclose(phi.measure(x), phi.matrix() @ x)

    def test_measure_wrong_shape(self):
        phi = GaussianMatrix(8, 32, seed=2)
        with pytest.raises(SensingError):
            phi.measure(np.zeros(31))

    def test_m_greater_than_n_rejected(self):
        with pytest.raises(SensingError):
            GaussianMatrix(33, 32)

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(SensingError):
            GaussianMatrix(0, 32)

    def test_storage_bits(self):
        assert GaussianMatrix(8, 16, seed=1).storage_bits() == 32 * 8 * 16

    def test_matrix_is_readonly(self):
        phi = GaussianMatrix(4, 8, seed=1)
        with pytest.raises(ValueError):
            phi.matrix()[0, 0] = 9.0

    def test_operator_wraps_matrix(self, rng):
        phi = GaussianMatrix(8, 32, seed=3)
        x = rng.standard_normal(32)
        assert np.allclose(phi.operator().matvec(x), phi.measure(x))

    def test_describe(self):
        assert "GaussianMatrix" in GaussianMatrix(4, 8).describe()


class TestBernoulliMatrix:
    def test_entries_are_plus_minus_inv_sqrt_n(self):
        phi = BernoulliMatrix(16, 64, seed=1)
        unique = np.unique(phi.matrix())
        assert np.allclose(np.abs(unique), 1.0 / 8.0)
        assert len(unique) == 2

    def test_roughly_balanced_signs(self):
        phi = BernoulliMatrix(32, 128, seed=2)
        positive = np.count_nonzero(phi.matrix() > 0)
        assert abs(positive / (32 * 128) - 0.5) < 0.05

    def test_storage_is_one_bit_per_entry(self):
        assert BernoulliMatrix(8, 16, seed=1).storage_bits() == 128

    def test_unit_column_norm_expectation(self):
        phi = BernoulliMatrix(64, 64, seed=3)
        norms = np.linalg.norm(phi.matrix(), axis=0)
        assert np.allclose(norms, 1.0)


class TestQuantizedGaussianMatrix:
    def test_int8_entries(self):
        phi = QuantizedGaussianMatrix(8, 16, seed=1)
        assert phi.quantized_entries.dtype == np.int8

    def test_float_view_scaling(self):
        phi = QuantizedGaussianMatrix(8, 16, seed=1)
        expected = phi.quantized_entries.astype(np.float64) * (
            QuantizedGaussianMatrix.QUANT_SCALE / np.sqrt(16)
        )
        assert np.allclose(phi.matrix(), expected)

    def test_distribution_close_to_gaussian(self):
        phi = QuantizedGaussianMatrix(32, 64, seed=2)
        values = phi.quantized_entries.astype(np.float64).ravel() / 32.0
        assert abs(np.mean(values)) < 0.08
        assert 0.8 < np.std(values) < 1.2

    def test_clt_generator_variant(self):
        phi = QuantizedGaussianMatrix(8, 16, seed=3, generator="clt")
        assert phi.quantized_entries.shape == (8, 16)
        assert phi.ops_per_draw == 24

    def test_unknown_generator_rejected(self):
        with pytest.raises(SensingError):
            QuantizedGaussianMatrix(8, 16, generator="mwc")

    def test_draws_required(self):
        assert QuantizedGaussianMatrix(8, 16, seed=1).draws_required == 128

    def test_storage_is_one_byte_per_entry(self):
        assert QuantizedGaussianMatrix(8, 16, seed=1).storage_bits() == 8 * 128

    def test_deterministic(self):
        a = QuantizedGaussianMatrix(8, 16, seed=9).quantized_entries
        b = QuantizedGaussianMatrix(8, 16, seed=9).quantized_entries
        assert np.array_equal(a, b)
