"""Tests for sensing-matrix diagnostics (coherence, empirical RIP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensing import (
    GaussianMatrix,
    SparseBinaryMatrix,
    column_norms,
    empirical_rip_constant,
    mutual_coherence,
    row_weights,
)


class TestCoherence:
    def test_identity_has_zero_coherence(self):
        assert mutual_coherence(np.eye(8)) == pytest.approx(0.0)

    def test_repeated_column_has_unit_coherence(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert mutual_coherence(matrix) == pytest.approx(1.0)

    def test_gaussian_coherence_moderate(self):
        phi = GaussianMatrix(128, 256, seed=1)
        coherence = mutual_coherence(phi.matrix())
        assert 0.05 < coherence < 0.6

    def test_sparse_binary_coherence_bounded(self):
        """Incoherence between columns: the paper's design requirement."""
        phi = SparseBinaryMatrix(256, 512, d=12, seed=2011)
        assert mutual_coherence(phi.matrix()) < 0.6

    def test_zero_column_handled(self):
        matrix = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert mutual_coherence(matrix) == pytest.approx(0.0)


class TestColumnAndRowStats:
    def test_column_norms(self):
        matrix = np.array([[3.0, 0.0], [4.0, 2.0]])
        assert np.allclose(column_norms(matrix), [5.0, 2.0])

    def test_row_weights_sparse_binary(self):
        phi = SparseBinaryMatrix(64, 128, d=8, seed=1)
        weights = row_weights(phi.matrix())
        assert weights.sum() == 128 * 8
        # reasonably balanced: no starving rows at this density
        assert weights.min() >= 1


class TestEmpiricalRip:
    def test_orthonormal_matrix_is_perfect_isometry(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).standard_normal((32, 32)))
        delta = empirical_rip_constant(q, sparsity=4, trials=50)
        assert delta < 1e-10

    def test_gaussian_matrix_small_constant(self):
        phi = GaussianMatrix(128, 256, seed=3)
        delta = empirical_rip_constant(phi.matrix(), sparsity=8, trials=100)
        assert delta < 0.6

    def test_sparse_binary_l1_isometry(self):
        """RIP-p (p=1) flavor: after the 1/d normalization (unit l1
        column norms), sparse vectors keep their l1 norm up to the small
        loss caused by row collisions (Berinde et al. 2008)."""
        import math

        phi = SparseBinaryMatrix(256, 512, d=12, seed=1)
        unit_l1_columns = phi.matrix() / math.sqrt(12)  # entries 1/d
        delta = empirical_rip_constant(
            unit_l1_columns, sparsity=8, trials=100, norm_order=1
        )
        assert delta < 0.35

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            empirical_rip_constant(np.eye(4), sparsity=0)
        with pytest.raises(ValueError):
            empirical_rip_constant(np.eye(4), sparsity=5)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            empirical_rip_constant(np.eye(4), sparsity=1, trials=0)

    def test_deterministic_by_seed(self):
        phi = GaussianMatrix(32, 64, seed=1).matrix()
        a = empirical_rip_constant(phi, sparsity=4, trials=20, seed=7)
        b = empirical_rip_constant(phi, sparsity=4, trials=20, seed=7)
        assert a == b
