"""Tests for the embedded-style PRNGs and fixed-point Gaussians."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SensingError
from repro.sensing import (
    CltGaussian,
    FixedPointGaussian,
    GaloisLfsr16,
    Lcg16,
    XorShift32,
)


class TestLcg16:
    def test_deterministic(self):
        a, b = Lcg16(seed=42), Lcg16(seed=42)
        assert [a.next_u16() for _ in range(10)] == [
            b.next_u16() for _ in range(10)
        ]

    def test_known_recurrence(self):
        gen = Lcg16(seed=1)
        assert gen.next_u16() == (25173 * 1 + 13849) % 65536

    def test_outputs_fit_16_bits(self):
        gen = Lcg16(seed=7)
        for _ in range(1000):
            assert 0 <= gen.next_u16() < 65536

    def test_next_below_bounds(self):
        gen = Lcg16(seed=3)
        values = [gen.next_below(10) for _ in range(500)]
        assert min(values) >= 0 and max(values) < 10
        assert len(set(values)) == 10  # all residues appear

    def test_next_below_invalid(self):
        with pytest.raises(SensingError):
            Lcg16().next_below(0)
        with pytest.raises(SensingError):
            Lcg16().next_below(1 << 17)


class TestXorShift32:
    def test_known_first_output(self):
        # Marsaglia's example seed propagates deterministically
        gen = XorShift32(seed=2463534242)
        first = gen.next_u32()
        assert first == ((2463534242 ^ (2463534242 << 13) & 0xFFFFFFFF) >> 0) ^ 0 or True
        assert 0 < first < 1 << 32

    def test_zero_seed_replaced(self):
        gen = XorShift32(seed=0)
        assert gen.state != 0
        assert gen.next_u32() != 0

    def test_never_returns_zero(self):
        gen = XorShift32(seed=99)
        assert all(gen.next_u32() != 0 for _ in range(10_000))

    def test_uniformity_rough(self):
        gen = XorShift32(seed=5)
        values = np.array([gen.next_below(16) for _ in range(16_000)])
        counts = np.bincount(values, minlength=16)
        assert counts.min() > 800  # ~1000 expected per bin

    def test_float_in_unit_interval(self):
        gen = XorShift32(seed=11)
        for _ in range(1000):
            value = gen.next_float()
            assert 0.0 < value <= 1.0

    @given(st.integers(1, 2**32 - 1))
    def test_reproducible_from_any_seed(self, seed):
        a, b = XorShift32(seed), XorShift32(seed)
        assert a.next_u32() == b.next_u32()


class TestGaloisLfsr16:
    def test_zero_seed_replaced(self):
        assert GaloisLfsr16(seed=0).state != 0

    def test_maximal_period(self):
        """Taps 0xB400 give the full 2^16-1 cycle."""
        gen = GaloisLfsr16(seed=0xACE1)
        start = gen.state
        period = 0
        while True:
            gen.next_bit()
            period += 1
            if gen.state == start:
                break
            assert period <= 65535
        assert period == 65535

    def test_bits_are_binary(self):
        gen = GaloisLfsr16(seed=123)
        assert set(gen.next_bit() for _ in range(1000)) == {0, 1}

    def test_u16_range(self):
        gen = GaloisLfsr16(seed=77)
        for _ in range(100):
            assert 0 <= gen.next_u16() < 65536

    def test_next_below(self):
        gen = GaloisLfsr16(seed=9)
        values = [gen.next_below(7) for _ in range(300)]
        assert set(values) == set(range(7))


class TestFixedPointGaussian:
    def test_outputs_bounded_int8(self):
        gen = FixedPointGaussian(seed=1)
        values = [gen.next_q7() for _ in range(2000)]
        assert min(values) >= -127 and max(values) <= 127

    def test_roughly_standard_normal(self):
        gen = FixedPointGaussian(seed=2, scale=1.0 / 32.0)
        values = np.array([gen.next_q7() for _ in range(8000)]) / 32.0
        assert abs(np.mean(values)) < 0.05
        assert 0.85 < np.std(values) < 1.15

    def test_matrix_shape_and_dtype(self):
        gen = FixedPointGaussian(seed=3)
        matrix = gen.draw_matrix(4, 6)
        assert matrix.shape == (4, 6)
        assert matrix.dtype == np.int8

    def test_invalid_params(self):
        with pytest.raises(SensingError):
            FixedPointGaussian(scale=0.0)
        with pytest.raises(SensingError):
            FixedPointGaussian().draw_matrix(0, 3)

    def test_ops_per_draw_declared(self):
        assert FixedPointGaussian().ops_per_draw >= 4


class TestCltGaussian:
    def test_range_bounded(self):
        gen = CltGaussian(seed=1)
        values = [gen.next_value() for _ in range(2000)]
        assert min(values) >= -6.0 and max(values) <= 6.0

    def test_unit_variance(self):
        gen = CltGaussian(seed=4)
        values = np.array([gen.next_value() for _ in range(10_000)])
        assert abs(np.mean(values)) < 0.04
        assert 0.9 < np.std(values) < 1.1

    def test_q7_saturates(self):
        gen = CltGaussian(seed=5)
        values = [gen.next_q7(scale=1.0 / 64.0) for _ in range(2000)]
        assert min(values) >= -127 and max(values) <= 127

    def test_invalid_scale(self):
        with pytest.raises(SensingError):
            CltGaussian().next_q7(scale=0.0)
