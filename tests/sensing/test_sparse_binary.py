"""Tests for the sparse binary sensing matrix (the adopted design)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SensingError
from repro.sensing import SparseBinaryMatrix


class TestStructure:
    def test_exactly_d_ones_per_column(self):
        phi = SparseBinaryMatrix(64, 128, d=12, seed=1)
        dense = phi.matrix()
        assert np.all(np.count_nonzero(dense, axis=0) == 12)

    def test_nonzero_value_is_inv_sqrt_d(self):
        phi = SparseBinaryMatrix(64, 128, d=9, seed=1)
        values = phi.matrix()[phi.matrix() != 0]
        assert np.allclose(values, 1.0 / 3.0)

    def test_unit_column_norms(self):
        phi = SparseBinaryMatrix(64, 128, d=12, seed=1)
        assert np.allclose(np.linalg.norm(phi.matrix(), axis=0), 1.0)

    def test_rows_per_column_sorted_unique(self):
        phi = SparseBinaryMatrix(32, 64, d=8, seed=2)
        for column in phi.rows_per_column:
            assert len(set(column.tolist())) == 8
            assert list(column) == sorted(column)
            assert column.min() >= 0 and column.max() < 32

    def test_deterministic_by_seed(self):
        a = SparseBinaryMatrix(32, 64, d=6, seed=3)
        b = SparseBinaryMatrix(32, 64, d=6, seed=3)
        assert np.array_equal(a.rows_per_column, b.rows_per_column)

    def test_seed_changes_pattern(self):
        a = SparseBinaryMatrix(32, 64, d=6, seed=3)
        b = SparseBinaryMatrix(32, 64, d=6, seed=4)
        assert not np.array_equal(a.rows_per_column, b.rows_per_column)

    def test_d_must_fit_m(self):
        with pytest.raises(SensingError):
            SparseBinaryMatrix(8, 16, d=9)
        with pytest.raises(SensingError):
            SparseBinaryMatrix(8, 16, d=0)

    def test_sparse_and_dense_agree(self, rng):
        phi = SparseBinaryMatrix(32, 64, d=4, seed=5)
        x = rng.standard_normal(64)
        assert np.allclose(phi.sparse() @ x, phi.matrix() @ x)


class TestMeasurement:
    def test_float_measure_matches_dense(self, rng):
        phi = SparseBinaryMatrix(32, 64, d=4, seed=5)
        x = rng.standard_normal(64)
        assert np.allclose(phi.measure(x), phi.matrix() @ x)

    def test_integer_measure_is_unscaled_sum(self, rng):
        phi = SparseBinaryMatrix(32, 64, d=4, seed=6)
        x = rng.integers(-1024, 1024, size=64)
        y_int = phi.measure_integer(x)
        expected = phi.matrix() @ x.astype(np.float64) * math.sqrt(4)
        assert np.allclose(y_int, expected)

    def test_integer_measure_rejects_floats(self):
        phi = SparseBinaryMatrix(8, 16, d=2, seed=1)
        with pytest.raises(TypeError):
            phi.measure_integer(np.zeros(16))

    def test_integer_measure_wrong_shape(self):
        phi = SparseBinaryMatrix(8, 16, d=2, seed=1)
        with pytest.raises(SensingError):
            phi.measure_integer(np.zeros(15, dtype=np.int64))

    def test_integer_overflow_detected(self):
        phi = SparseBinaryMatrix(2, 4, d=2, seed=1)
        huge = np.full(4, 2**30, dtype=np.int64)
        with pytest.raises(SensingError):
            phi.measure_integer(huge)

    def test_additions_per_packet(self):
        assert SparseBinaryMatrix(256, 512, d=12).additions_per_packet() == 6144

    def test_storage_bits(self):
        phi = SparseBinaryMatrix(256, 512, d=12)
        assert phi.storage_bits() == 512 * 12 * 8  # 8-bit indices for m=256

    def test_describe_mentions_d(self):
        assert "d=12" in SparseBinaryMatrix(256, 512, d=12).describe()

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 8), st.integers(0, 1000))
    def test_integer_and_float_paths_consistent(self, d, seed):
        """The deferred 1/sqrt(d) scale is the only difference."""
        phi = SparseBinaryMatrix(16, 32, d=d, seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.integers(-2048, 2048, size=32)
        y_int = phi.measure_integer(x)
        y_float = phi.measure(x.astype(np.float64))
        assert np.allclose(y_int / math.sqrt(d), y_float, atol=1e-9)
