"""Tests for the LFSR-circulant structured sensing matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SensingError
from repro.sensing import LfsrCirculantMatrix, SparseBinaryMatrix


class TestStructure:
    def test_rows_are_shifts_of_master(self):
        phi = LfsrCirculantMatrix(16, 64, density=0.25, seed=1)
        dense = phi.matrix()
        master = phi.master_row.astype(np.float64)
        for i in range(16):
            expected = np.roll(master, i * phi.stride) * (
                dense[i].max() if dense[i].max() > 0 else 1.0
            )
            pattern = (dense[i] != 0).astype(np.float64)
            assert np.array_equal(pattern, np.roll(master, i * phi.stride))

    def test_density_respected(self):
        phi = LfsrCirculantMatrix(32, 256, density=0.25, seed=2)
        achieved = phi.master_row.mean()
        assert 0.15 < achieved < 0.35

    def test_deterministic(self):
        a = LfsrCirculantMatrix(16, 64, seed=3).matrix()
        b = LfsrCirculantMatrix(16, 64, seed=3).matrix()
        assert np.array_equal(a, b)

    def test_storage_is_one_row(self):
        phi = LfsrCirculantMatrix(128, 512)
        assert phi.storage_bits() == 512 + 16
        # far below sparse binary's per-column indices
        assert phi.storage_bits() < SparseBinaryMatrix(128, 512, 12).storage_bits()

    def test_invalid_density(self):
        with pytest.raises(SensingError):
            LfsrCirculantMatrix(16, 64, density=0.0)
        with pytest.raises(SensingError):
            LfsrCirculantMatrix(16, 64, density=0.9)

    def test_integer_path_matches_float(self, rng):
        phi = LfsrCirculantMatrix(16, 64, seed=4)
        x = rng.integers(-500, 500, size=64)
        y_int = phi.measure_integer(x)
        scale = phi.matrix()[phi.matrix() != 0].flat[0]
        assert np.allclose(y_int * scale, phi.measure(x.astype(np.float64)))

    def test_integer_path_validation(self):
        phi = LfsrCirculantMatrix(16, 64, seed=5)
        with pytest.raises(SensingError):
            phi.measure_integer(np.zeros(64))
        with pytest.raises(SensingError):
            phi.measure_integer(np.zeros(63, dtype=np.int64))


class TestRecoveryQuality:
    def test_recovers_sparse_signals_at_moderate_cr(self, rng):
        """Circulant structure still recovers at mild undersampling."""
        from repro.solvers import fista, lambda_from_fraction
        from repro.wavelet import WaveletTransform

        n, m = 256, 192
        transform = WaveletTransform(n, "db4", 4)
        alpha = np.zeros(n)
        support = rng.choice(n, 12, replace=False)
        alpha[support] = rng.standard_normal(12) * 5
        x = transform.inverse(alpha)

        phi = LfsrCirculantMatrix(m, n, seed=6)
        system = phi.matrix() @ transform.synthesis_matrix()
        y = phi.measure(x)
        lam = lambda_from_fraction(system, y, 0.002)
        result = fista(system, y, lam, max_iterations=4000, tolerance=1e-6)
        reconstruction = transform.inverse(result.coefficients)
        prd = np.linalg.norm(x - reconstruction) / np.linalg.norm(x)
        assert prd < 0.25

    def test_recovery_degrades_at_aggressive_undersampling(self, rng):
        """The documented trade-off: the circulant structure loses
        recovery quality faster than moderate undersampling allows."""
        from repro.solvers import fista, lambda_from_fraction
        from repro.wavelet import WaveletTransform

        n = 256
        transform = WaveletTransform(n, "db4", 4)
        alpha = np.zeros(n)
        support = rng.choice(n, 12, replace=False)
        alpha[support] = rng.standard_normal(12) * 5
        x = transform.inverse(alpha)

        prds = {}
        for m in (192, 48):
            phi = LfsrCirculantMatrix(m, n, seed=8)
            system = phi.matrix() @ transform.synthesis_matrix()
            y = phi.measure(x)
            lam = lambda_from_fraction(system, y, 0.002)
            result = fista(system, y, lam, max_iterations=3000, tolerance=1e-6)
            reconstruction = transform.inverse(result.coefficients)
            prds[m] = float(np.linalg.norm(x - reconstruction) / np.linalg.norm(x))
        assert prds[48] > 5.0 * prds[192]
