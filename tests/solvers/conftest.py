"""Shared synthetic sparse-recovery problems for solver tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensing import SparseBinaryMatrix
from repro.wavelet import WaveletTransform


@pytest.fixture(scope="module")
def sparse_problem():
    """A well-posed CS problem: 20-sparse in db4, 128 of 256 measurements."""
    rng = np.random.default_rng(42)
    n, m, sparsity = 256, 128, 20
    transform = WaveletTransform(n, "db4", 4)
    alpha = np.zeros(n)
    support = rng.choice(n, sparsity, replace=False)
    alpha[support] = rng.standard_normal(sparsity) * 5.0
    x = transform.inverse(alpha)
    phi = SparseBinaryMatrix(m, n, d=8, seed=7)
    system = phi.sparse() @ transform.synthesis_matrix()
    y = phi.measure(x)
    return {
        "system": np.asarray(system),
        "y": y,
        "alpha_true": alpha,
        "x_true": x,
        "transform": transform,
        "sparsity": sparsity,
    }
