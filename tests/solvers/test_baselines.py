"""Tests for the baseline solvers: ISTA, TwIST, OMP, GPSR, basis pursuit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import (
    basis_pursuit,
    fista,
    gpsr,
    ista,
    lambda_from_fraction,
    omp,
    twist,
)


def _prd_of(result, problem):
    x_hat = problem["transform"].inverse(
        np.asarray(result.coefficients, dtype=np.float64)
    )
    return float(
        np.linalg.norm(x_hat - problem["x_true"])
        / np.linalg.norm(problem["x_true"])
    )


class TestIsta:
    def test_recovers(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.005)
        result = ista(a, y, lam, max_iterations=8000, tolerance=1e-7)
        assert _prd_of(result, sparse_problem) < 0.10

    def test_objective_monotone(self, sparse_problem):
        """Unlike FISTA, plain ISTA descends monotonically."""
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        result = ista(
            a, y, lam, max_iterations=200, tolerance=1e-12,
            track_objective=True,
        )
        history = np.asarray(result.objective_history)
        assert np.all(np.diff(history) <= 1e-9)

    def test_rejects_bad_params(self, sparse_problem):
        with pytest.raises(SolverError):
            ista(sparse_problem["system"], sparse_problem["y"], lam=-1.0)
        with pytest.raises(SolverError):
            ista(
                sparse_problem["system"], sparse_problem["y"], lam=1.0,
                max_iterations=0,
            )

    def test_x0_shape_checked(self, sparse_problem):
        with pytest.raises(SolverError):
            ista(
                sparse_problem["system"], sparse_problem["y"], lam=1.0,
                x0=np.zeros(7),
            )


class TestTwist:
    def test_recovers(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.005)
        result = twist(a, y, lam, max_iterations=4000, tolerance=1e-7)
        assert _prd_of(result, sparse_problem) < 0.10

    def test_faster_than_ista(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.005)
        twist_result = twist(a, y, lam, max_iterations=8000, tolerance=1e-6)
        ista_result = ista(a, y, lam, max_iterations=8000, tolerance=1e-6)
        assert twist_result.iterations < ista_result.iterations

    def test_parameters_formula(self):
        from repro.solvers.twist import twist_parameters

        alpha, beta = twist_parameters(1.0)  # perfectly conditioned
        assert alpha == pytest.approx(1.0)
        assert beta == pytest.approx(1.0)

    def test_parameters_validation(self):
        from repro.solvers.twist import twist_parameters

        with pytest.raises(SolverError):
            twist_parameters(0.0)
        with pytest.raises(SolverError):
            twist_parameters(1.5)

    def test_rejects_bad_lambda(self, sparse_problem):
        with pytest.raises(SolverError):
            twist(sparse_problem["system"], sparse_problem["y"], lam=0.0)


class TestOmp:
    def test_exact_recovery_on_sparse_signal(self, sparse_problem):
        """Greedy pursuit nails exactly-sparse signals."""
        a, y = sparse_problem["system"], sparse_problem["y"]
        result = omp(a, y, sparsity=2 * sparse_problem["sparsity"])
        assert _prd_of(result, sparse_problem) < 1e-6
        assert result.converged
        assert result.stop_reason == "residual"

    def test_support_size_bounded(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        result = omp(a, y, sparsity=5)
        assert np.count_nonzero(result.coefficients) <= 5

    def test_zero_measurements(self, sparse_problem):
        a = sparse_problem["system"]
        result = omp(a, np.zeros(a.shape[0]))
        assert result.converged
        assert np.allclose(result.coefficients, 0.0)

    def test_invalid_sparsity(self, sparse_problem):
        with pytest.raises(SolverError):
            omp(sparse_problem["system"], sparse_problem["y"], sparsity=0)

    def test_iterations_equal_selected_atoms(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        result = omp(a, y, sparsity=7, residual_tolerance=0.0)
        assert result.iterations == 7


class TestGpsr:
    def test_recovers(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.005) / 2.0  # GPSR's 0.5 fidelity
        result = gpsr(a, y, lam, max_iterations=3000, tolerance=1e-7)
        assert _prd_of(result, sparse_problem) < 0.10

    def test_agrees_with_fista_optimum(self, sparse_problem):
        """Same convex objective -> same minimizer (lam_gpsr = lam/2)."""
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.02)
        f = fista(a, y, lam, max_iterations=8000, tolerance=1e-9)
        g = gpsr(a, y, lam / 2.0, max_iterations=8000, tolerance=1e-9)
        assert np.allclose(f.coefficients, g.coefficients, atol=5e-3)

    def test_objective_monotone(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        result = gpsr(
            a, y, lam, max_iterations=150, tolerance=1e-12,
            track_objective=True,
        )
        history = np.asarray(result.objective_history)
        assert np.all(np.diff(history) <= 1e-6)

    def test_rejects_bad_params(self, sparse_problem):
        with pytest.raises(SolverError):
            gpsr(sparse_problem["system"], sparse_problem["y"], lam=0.0)


class TestBasisPursuit:
    def test_exact_recovery(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        result = basis_pursuit(a, y)
        assert result.converged
        assert _prd_of(result, sparse_problem) < 1e-4

    def test_residual_is_tiny(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        result = basis_pursuit(a, y)
        assert result.residual_norm < 1e-6 * np.linalg.norm(y)

    def test_l1_not_larger_than_fista(self, sparse_problem):
        """BP minimizes ||.||_1 under exact fit; FISTA trades fit for l1."""
        a, y = sparse_problem["system"], sparse_problem["y"]
        bp_result = basis_pursuit(a, y)
        lam = lambda_from_fraction(a, y, 0.001)
        fista_result = fista(a, y, lam, max_iterations=4000, tolerance=1e-9)
        l1_bp = np.sum(np.abs(bp_result.coefficients))
        l1_fista = np.sum(np.abs(fista_result.coefficients))
        assert l1_bp <= l1_fista * 1.02
