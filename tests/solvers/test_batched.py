"""Tests for the batched FISTA engine (repro.solvers.batched)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import (
    BatchedFista,
    BatchWorkspace,
    batched_fista,
    batched_lambda_from_fraction,
    fista,
    lambda_from_fraction,
)
from repro.solvers.lipschitz import lipschitz_constant


@pytest.fixture(scope="module")
def batch_problem(sparse_problem):
    """A block of measurement columns around the shared sparse problem."""
    rng = np.random.default_rng(7)
    a = sparse_problem["system"]
    transform = sparse_problem["transform"]
    n = a.shape[1]
    columns = []
    for _ in range(6):
        alpha = np.zeros(n)
        support = rng.choice(n, 20, replace=False)
        alpha[support] = rng.standard_normal(20) * 5.0
        x = transform.inverse(alpha)
        columns.append(a @ transform.forward(x))
    ys = np.stack(columns, axis=1)
    ys += 0.01 * rng.standard_normal(ys.shape)
    return {
        "a": a,
        "ys": ys,
        "lipschitz": lipschitz_constant(a),
    }


class TestBatchedLambda:
    def test_matches_serial_per_column(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        lams = batched_lambda_from_fraction(a, ys, 0.05)
        for b in range(ys.shape[1]):
            serial = lambda_from_fraction(a, ys[:, b], 0.05)
            assert lams[b] == pytest.approx(serial, rel=1e-12)

    def test_zero_column_gets_bare_fraction(self, batch_problem):
        a = batch_problem["a"]
        ys = np.zeros((a.shape[0], 2))
        ys[:, 1] = batch_problem["ys"][:, 0]
        lams = batched_lambda_from_fraction(a, ys, 0.05)
        assert lams[0] == 0.05
        assert lams[1] > 0.05

    def test_invalid_fraction(self, batch_problem):
        with pytest.raises(SolverError):
            batched_lambda_from_fraction(
                batch_problem["a"], batch_problem["ys"], 0.0
            )

    def test_per_column_fractions(self, batch_problem):
        """A cross-stream batch can mix streams with different lam."""
        a, ys = batch_problem["a"], batch_problem["ys"]
        fractions = np.linspace(0.02, 0.1, ys.shape[1])
        lams = batched_lambda_from_fraction(a, ys, fractions)
        for b in range(ys.shape[1]):
            serial = lambda_from_fraction(a, ys[:, b], float(fractions[b]))
            assert lams[b] == pytest.approx(serial, rel=1e-12)

    def test_fraction_vector_shape_mismatch(self, batch_problem):
        with pytest.raises(SolverError):
            batched_lambda_from_fraction(
                batch_problem["a"], batch_problem["ys"], np.array([0.05, 0.05])
            )

    def test_fraction_vector_with_nonpositive_entry(self, batch_problem):
        fractions = np.full(batch_problem["ys"].shape[1], 0.05)
        fractions[2] = 0.0
        with pytest.raises(SolverError):
            batched_lambda_from_fraction(
                batch_problem["a"], batch_problem["ys"], fractions
            )


class TestSerialEquivalence:
    def test_per_column_matches_serial_fista(self, batch_problem):
        """The tentpole invariant: batched column b == serial solve b."""
        a, ys = batch_problem["a"], batch_problem["ys"]
        lip = batch_problem["lipschitz"]
        lams = batched_lambda_from_fraction(a, ys, 0.05)
        batch = batched_fista(
            a, ys, lams, max_iterations=600, tolerance=1e-4, lipschitz=lip
        )
        for b in range(ys.shape[1]):
            serial = fista(
                a, ys[:, b], lams[b],
                max_iterations=600, tolerance=1e-4, lipschitz=lip,
            )
            # identical iteration counts: the convergence mask freezes a
            # column at exactly the serial stopping iteration
            assert batch.iterations[b] == serial.iterations
            assert bool(batch.converged[b]) == serial.converged
            assert batch.stop_reasons[b] == serial.stop_reason
            np.testing.assert_allclose(
                batch.coefficients[:, b],
                serial.coefficients,
                atol=1e-9,
            )
            assert batch.residual_norms[b] == pytest.approx(
                serial.residual_norm, rel=1e-6
            )

    def test_scalar_lambda_broadcasts(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        batch = batched_fista(
            a, ys, 0.5,
            max_iterations=50, tolerance=1e-6,
            lipschitz=batch_problem["lipschitz"],
        )
        assert batch.batch_size == ys.shape[1]

    def test_single_column_batch(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        lam = lambda_from_fraction(a, ys[:, 0], 0.05)
        batch = batched_fista(
            a, ys[:, :1], lam,
            max_iterations=300, tolerance=1e-4,
            lipschitz=batch_problem["lipschitz"],
        )
        serial = fista(
            a, ys[:, 0], lam,
            max_iterations=300, tolerance=1e-4,
            lipschitz=batch_problem["lipschitz"],
        )
        assert batch.iterations[0] == serial.iterations


class TestConvergenceMasking:
    def test_iterations_differ_across_columns(self, batch_problem):
        """Columns stop independently; an easy column must not be
        dragged to the hard column's iteration count."""
        a, ys = batch_problem["a"], batch_problem["ys"]
        lams = batched_lambda_from_fraction(a, ys, 0.05)
        # make one column trivially easy: all-zero measurements
        ys = ys.copy()
        ys[:, 0] = 0.0
        lams = lams.copy()
        lams[0] = 1.0
        batch = batched_fista(
            a, ys, lams, max_iterations=600, tolerance=1e-4,
            lipschitz=batch_problem["lipschitz"],
        )
        assert batch.iterations[0] < batch.iterations[1:].min()
        assert batch.total_iterations == batch.iterations.max()

    def test_max_iterations_stop_reason(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        batch = batched_fista(
            a, ys, 1e-6, max_iterations=5, tolerance=1e-12,
            lipschitz=batch_problem["lipschitz"],
        )
        assert not batch.converged.any()
        assert set(batch.stop_reasons) == {"max_iterations"}
        assert (batch.iterations == 5).all()


class TestWarmStart:
    def test_warm_start_reduces_iterations(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        lams = batched_lambda_from_fraction(a, ys, 0.05)
        cold = batched_fista(
            a, ys, lams, max_iterations=600, tolerance=1e-4,
            lipschitz=batch_problem["lipschitz"],
        )
        warm = batched_fista(
            a, ys, lams, max_iterations=600, tolerance=1e-4,
            lipschitz=batch_problem["lipschitz"],
            x0=cold.coefficients,
        )
        assert warm.iterations.sum() < cold.iterations.sum()

    def test_bad_x0_shape_rejected(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        with pytest.raises(SolverError):
            batched_fista(
                a, ys, 0.5, x0=np.zeros((3, 3)),
                lipschitz=batch_problem["lipschitz"],
            )


class TestValidation:
    def test_1d_ys_rejected(self, batch_problem):
        with pytest.raises(SolverError):
            batched_fista(batch_problem["a"], batch_problem["ys"][:, 0], 0.5)

    def test_row_mismatch_rejected(self, batch_problem):
        with pytest.raises(SolverError):
            batched_fista(batch_problem["a"], np.ones((3, 2)), 0.5)

    def test_empty_batch_rejected(self, batch_problem):
        a = batch_problem["a"]
        with pytest.raises(SolverError):
            batched_fista(a, np.empty((a.shape[0], 0)), 0.5)

    def test_nonpositive_lambda_rejected(self, batch_problem):
        with pytest.raises(SolverError):
            batched_fista(
                batch_problem["a"], batch_problem["ys"], 0.0,
                lipschitz=batch_problem["lipschitz"],
            )

    def test_invalid_iterations_and_tolerance(self, batch_problem):
        a, ys = batch_problem["a"], batch_problem["ys"]
        with pytest.raises(SolverError):
            batched_fista(a, ys, 0.5, max_iterations=0)
        with pytest.raises(SolverError):
            batched_fista(a, ys, 0.5, tolerance=0.0)


class TestBatchedFistaClass:
    def test_precomputes_and_solves(self, batch_problem):
        solver = BatchedFista(batch_problem["a"])
        assert solver.lipschitz == pytest.approx(
            batch_problem["lipschitz"], rel=1e-6
        )
        ys = batch_problem["ys"]
        lams = solver.lambdas(ys, 0.05)
        result = solver.solve(ys, lams, max_iterations=50, tolerance=1e-4)
        assert result.coefficients.shape == (
            batch_problem["a"].shape[1],
            ys.shape[1],
        )

    def test_per_column_adapter(self, batch_problem):
        solver = BatchedFista(
            batch_problem["a"], lipschitz=batch_problem["lipschitz"]
        )
        ys = batch_problem["ys"]
        result = solver.solve(ys, 0.5, max_iterations=20, tolerance=1e-4)
        one = result.per_column(0)
        assert one.coefficients.shape == (batch_problem["a"].shape[1],)
        assert one.iterations == int(result.iterations[0])
        with pytest.raises(IndexError):
            result.per_column(ys.shape[1])

    def test_workspace_reuse_matches_fresh_buffers(self, batch_problem):
        """Same-width solves through one workspace stay bit-identical."""
        a, ys = batch_problem["a"], batch_problem["ys"]
        lams = batched_lambda_from_fraction(a, ys, 0.05)
        workspace = BatchWorkspace()
        kwargs = dict(
            max_iterations=200,
            tolerance=1e-4,
            lipschitz=batch_problem["lipschitz"],
        )
        fresh = batched_fista(a, ys, lams, **kwargs)
        first = batched_fista(a, ys, lams, workspace=workspace, **kwargs)
        # a second pass reuses dirty buffers; results must not change
        second = batched_fista(a, ys, lams, workspace=workspace, **kwargs)
        np.testing.assert_array_equal(fresh.coefficients, first.coefficients)
        np.testing.assert_array_equal(first.coefficients, second.coefficients)
        np.testing.assert_array_equal(first.iterations, second.iterations)

    def test_workspace_reallocates_on_width_change(self, batch_problem):
        workspace = BatchWorkspace()
        a = batch_problem["a"]
        m, n = a.shape
        wide = workspace.buffers(m, n, 6, np.float64)
        assert wide[0].shape == (m, 6)
        same = workspace.buffers(m, n, 6, np.float64)
        assert all(x is y for x, y in zip(wide, same))
        narrow = workspace.buffers(m, n, 2, np.float64)
        assert narrow[0].shape == (m, 2)

    def test_solver_class_reuses_its_workspace(self, batch_problem):
        solver = BatchedFista(
            batch_problem["a"], lipschitz=batch_problem["lipschitz"]
        )
        ys = batch_problem["ys"]
        first = solver.solve(ys, 0.5, max_iterations=30, tolerance=1e-4)
        second = solver.solve(ys, 0.5, max_iterations=30, tolerance=1e-4)
        np.testing.assert_array_equal(
            first.coefficients, second.coefficients
        )

    def test_workspace_dtype_alternation_never_hands_stale_buffers(
        self, batch_problem
    ):
        """Regression: alternating float32/float64 solves through one
        workspace must key arenas by dtype — a float64 request right
        after a float32 one (the hybrid fast-then-polish cadence) gets
        float64 buffers, never a reinterpreted stale-dtype view."""
        workspace = BatchWorkspace()
        a = batch_problem["a"]
        m, n = a.shape
        wide64 = workspace.buffers(m, n, 4, np.float64)
        wide32 = workspace.buffers(m, n, 4, np.float32)
        assert all(b.dtype == np.float64 for b in wide64)
        assert all(b.dtype == np.float32 for b in wide32)
        # the float32 grab must not have recycled the float64 storage
        assert not any(
            b32.base is b64.base for b32, b64 in zip(wide32, wide64)
        )
        # returning to either dtype reuses its own arenas exactly
        again64 = workspace.buffers(m, n, 4, np.float64)
        again32 = workspace.buffers(m, n, 4, np.float32)
        assert all(x is y for x, y in zip(wide64, again64))
        assert all(x is y for x, y in zip(wide32, again32))

    def test_workspace_growth_invalidates_cached_views(self):
        """Growing an arena must drop that key's cached views — a view
        of the old (orphaned) storage would silently decouple from
        later writes through the new arena."""
        workspace = BatchWorkspace()
        small = workspace.arena("u", (4, 2), np.float64)
        grown = workspace.arena("u", (8, 2), np.float64)
        refetched = workspace.arena("u", (4, 2), np.float64)
        assert refetched is not small
        assert refetched.base is grown.base

    def test_alternating_precision_solves_match_fresh_solvers(
        self, batch_problem
    ):
        """The hybrid cadence end to end: one solver instance running
        float32 / float64 / float32 blocks back to back produces the
        same bits as fresh single-use solvers."""
        a64 = np.asarray(batch_problem["a"], dtype=np.float64)
        a32 = a64.astype(np.float32)
        ys64 = np.asarray(batch_problem["ys"], dtype=np.float64)
        ys32 = ys64.astype(np.float32)
        lams = batched_lambda_from_fraction(a64, ys64, 0.05)
        workspace = BatchWorkspace()
        kwargs = dict(max_iterations=200, tolerance=1e-4)
        lip = batch_problem["lipschitz"]
        sequence = [
            (a32, ys32, np.float32),
            (a64, ys64, np.float64),
            (a32, ys32, np.float32),
        ]
        for a, ys, dtype in sequence:
            shared = batched_fista(
                a, ys, lams, lipschitz=lip, workspace=workspace, **kwargs
            )
            fresh = batched_fista(a, ys, lams, lipschitz=lip, **kwargs)
            assert shared.coefficients.dtype == dtype
            np.testing.assert_array_equal(
                shared.coefficients, fresh.coefficients
            )
            np.testing.assert_array_equal(
                shared.iterations, fresh.iterations
            )

    def test_float32_batch_keeps_dtype(self, batch_problem):
        solver = BatchedFista(
            np.asarray(batch_problem["a"], dtype=np.float32)
        )
        ys = np.asarray(batch_problem["ys"], dtype=np.float32)
        result = solver.solve(ys, 0.5, max_iterations=20, tolerance=1e-4)
        assert result.coefficients.dtype == np.float32
