"""Tests for least-squares debiasing of l1 solutions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import debias, fista, lambda_from_fraction


class TestDebias:
    def test_reduces_residual(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.02)
        biased = fista(a, y, lam, max_iterations=2000, tolerance=1e-6)
        refined = debias(a, y, biased, support_threshold=1e-6)
        assert refined.residual_norm <= biased.residual_norm + 1e-9

    def test_support_preserved_or_shrunk(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.02)
        biased = fista(a, y, lam, max_iterations=2000, tolerance=1e-6)
        refined = debias(a, y, biased, support_threshold=1e-6)
        before = set(np.flatnonzero(np.abs(biased.coefficients) > 1e-6))
        after = set(np.flatnonzero(refined.coefficients != 0))
        assert after <= before

    def test_improves_recovery_of_exactly_sparse(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.05)  # heavy shrinkage
        biased = fista(a, y, lam, max_iterations=3000, tolerance=1e-7)
        refined = debias(a, y, biased, support_threshold=1e-6)
        transform = sparse_problem["transform"]
        x_true = sparse_problem["x_true"]
        prd_biased = np.linalg.norm(
            transform.inverse(biased.coefficients) - x_true
        )
        prd_refined = np.linalg.norm(
            transform.inverse(refined.coefficients) - x_true
        )
        assert prd_refined < prd_biased

    def test_max_support_cap(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        biased = fista(a, y, lam, max_iterations=1000, tolerance=1e-5)
        refined = debias(a, y, biased, max_support=5)
        assert np.count_nonzero(refined.coefficients) <= 5

    def test_empty_support(self, sparse_problem):
        from repro.solvers.base import SolverResult

        a, y = sparse_problem["system"], sparse_problem["y"]
        zero = SolverResult(
            coefficients=np.zeros(a.shape[1]),
            iterations=1,
            converged=True,
            stop_reason="test",
            residual_norm=float(np.linalg.norm(y)),
        )
        refined = debias(a, y, zero)
        assert np.allclose(refined.coefficients, 0.0)
        assert "empty" in refined.stop_reason

    def test_oversized_support_returned_unchanged(self, sparse_problem):
        from repro.solvers.base import SolverResult

        a, y = sparse_problem["system"], sparse_problem["y"]
        dense_result = SolverResult(
            coefficients=np.ones(a.shape[1]),
            iterations=1,
            converged=True,
            stop_reason="test",
            residual_norm=1.0,
        )
        assert debias(a, y, dense_result) is dense_result

    def test_validation(self, sparse_problem):
        from repro.solvers.base import SolverResult

        a, y = sparse_problem["system"], sparse_problem["y"]
        result = SolverResult(
            coefficients=np.zeros(a.shape[1]),
            iterations=1,
            converged=True,
            stop_reason="t",
            residual_norm=0.0,
        )
        with pytest.raises(SolverError):
            debias(a, y, result, support_threshold=-1.0)
        with pytest.raises(SolverError):
            debias(a, y, result, max_support=0)
        bad = SolverResult(
            coefficients=np.zeros(3),
            iterations=1,
            converged=True,
            stop_reason="t",
            residual_norm=0.0,
        )
        with pytest.raises(SolverError):
            debias(a, y, bad)
