"""Cross-stack equivalence harness for the raw-speed solver pass.

The sparse ``Phi`` scatter/gather kernels and the float32/float64
hybrid pipeline are *performance* levers — this module is the property
harness that pins them to the dense-GEMM float64 reference at every
layer they thread through:

- **kernel level** (seed sweep): ``SparsePhiApply.apply`` /
  ``apply_transpose`` against the materialized pattern GEMM, across
  >= 8 sensing seeds x 4 shapes x widths including ``B = 1`` and
  ragged tails.  For integer-valued float64 inputs the agreement is
  **bit-identical** — both sides sum the exact 0/1 pattern and apply
  the common ``1/sqrt(d)`` scale as one final multiply (the
  pattern-sum-then-scale contract of
  :mod:`repro.solvers.sparse_apply`); for general float inputs the
  float64 path is ulp-tight and the float32 path atol-bounded.
- **solver level**: ``structured_batched_fista`` with a float64
  iterate is bit-identical to a direct ``batched_fista`` on the fused
  dense operator; the hybrid (float32 + polish) result stays inside
  the fig-6 PRD corridor of the pure-float64 solve; a synthetically
  hard column (float32-overflowing measurements) must trip the
  residual gate, fall back to float64, and land inside the corridor.
- **fleet level**: ``solve_measurement_block`` with
  ``precision="hybrid"`` reconstructs real encoded windows within the
  corridor of the float64 block solve and reports the new telemetry
  counters.
- **CLI level**: ``repro-ecg fleet --precision hybrid`` runs the whole
  encode->schedule->decode path green.

The live-gateway layer of the same contract lives in
``tests/ingest/test_gateway_hybrid.py`` (bit-identity of the wire path
against the offline replay, fec on and off).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.errors import SolverError
from repro.fleet import StreamTask, decode_fleet
from repro.fleet.engine import solve_measurement_block
from repro.sensing import SparseBinaryMatrix
from repro.solvers import (
    DEFAULT_POLISH_CORRIDOR,
    SparsePhiApply,
    StructuredOperator,
    batched_fista,
    batched_lambda_from_fraction,
    structured_batched_fista,
)
from repro.wavelet import WaveletTransform

#: the property sweep: every (seed, shape) pair builds a fresh sensing
#: matrix; widths cover the single-column path and ragged tails
SEEDS = tuple(range(8))
#: (m, n, d) — the last shape is square with d=1, so some CSR rows
#: come out empty (the reduceat clamp path; pinned deterministically
#: in TestSparseApplyBuffers.test_empty_rows_covered_by_sweep)
SHAPES = ((64, 128, 8), (96, 192, 12), (32, 80, 6), (64, 64, 1))
WIDTHS = (1, 3, 8)


def _pattern(matrix: SparseBinaryMatrix) -> np.ndarray:
    """The dense unscaled 0/1 pattern of ``Phi``."""
    return (matrix.sparse().toarray() != 0).astype(np.float64)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"m{s[0]}n{s[1]}")
class TestSparseApplyKernels:
    """Seed-swept agreement of the gather kernels with the dense GEMM."""

    def test_apply_bit_identical_on_integer_float64(self, seed, shape):
        """Integer-valued float64 inputs: pattern sums are exact in any
        association order, so gather == GEMM bit for bit."""
        m, n, d = shape
        matrix = SparseBinaryMatrix(m, n, d=d, seed=seed)
        phi = SparsePhiApply(matrix)
        pattern = _pattern(matrix)
        rng = np.random.default_rng(1000 + seed)
        for width in WIDTHS:
            signals = rng.integers(
                -2048, 2048, size=(n, width)
            ).astype(np.float64)
            reference = (pattern @ signals) * matrix.scale
            assert np.array_equal(phi.apply(signals), reference)

    def test_apply_transpose_bit_identical_on_integer_float64(
        self, seed, shape
    ):
        m, n, d = shape
        matrix = SparseBinaryMatrix(m, n, d=d, seed=seed)
        phi = SparsePhiApply(matrix)
        pattern = _pattern(matrix)
        rng = np.random.default_rng(2000 + seed)
        for width in WIDTHS:
            resid = rng.integers(
                -2048, 2048, size=(m, width)
            ).astype(np.float64)
            reference = (pattern.T @ resid) * matrix.scale
            assert np.array_equal(phi.apply_transpose(resid), reference)

    def test_apply_float64_real_inputs_ulp_tight(self, seed, shape):
        """General float inputs: every output is a d-term sum, so the
        two association orders agree to a few ulps."""
        m, n, d = shape
        matrix = SparseBinaryMatrix(m, n, d=d, seed=seed)
        phi = SparsePhiApply(matrix)
        csr = matrix.sparse()
        rng = np.random.default_rng(3000 + seed)
        signals = rng.standard_normal((n, 5))
        np.testing.assert_allclose(
            phi.apply(signals), csr @ signals, rtol=0, atol=1e-12
        )
        resid = rng.standard_normal((m, 5))
        np.testing.assert_allclose(
            phi.apply_transpose(resid), csr.T @ resid, rtol=0, atol=1e-12
        )

    def test_apply_float32_atol_bounded(self, seed, shape):
        """float32 gather vs the float64 GEMM reference: single
        precision noise only."""
        m, n, d = shape
        matrix = SparseBinaryMatrix(m, n, d=d, seed=seed)
        phi = SparsePhiApply(matrix)
        pattern = _pattern(matrix)
        rng = np.random.default_rng(4000 + seed)
        signals32 = rng.standard_normal((n, 4)).astype(np.float32)
        out = phi.apply(signals32)
        assert out.dtype == np.float32
        reference = (pattern @ signals32.astype(np.float64)) * matrix.scale
        np.testing.assert_allclose(out, reference, rtol=0, atol=1e-4)
        resid32 = rng.standard_normal((m, 4)).astype(np.float32)
        out_t = phi.apply_transpose(resid32)
        assert out_t.dtype == np.float32
        reference_t = (
            pattern.T @ resid32.astype(np.float64)
        ) * matrix.scale
        np.testing.assert_allclose(out_t, reference_t, rtol=0, atol=1e-4)


class TestSparseApplyBuffers:
    """Preallocated out/gather buffers and the residual convenience."""

    def test_supplied_buffers_are_used_and_returned(self):
        matrix = SparseBinaryMatrix(64, 128, d=8, seed=3)
        phi = SparsePhiApply(matrix)
        rng = np.random.default_rng(9)
        signals = rng.standard_normal((128, 4))
        out = np.empty((64, 4))
        gather = np.empty((phi.nnz, 4))
        result = phi.apply(signals, out=out, gather=gather)
        assert result is out
        np.testing.assert_array_equal(result, phi.apply(signals))

    def test_transpose_gather_reuses_oversized_flat_buffer(self):
        """The transpose reshapes whatever scratch it is handed — an
        arena sized for the forward gather works for both kernels."""
        matrix = SparseBinaryMatrix(64, 128, d=8, seed=3)
        phi = SparsePhiApply(matrix)
        rng = np.random.default_rng(10)
        resid = rng.standard_normal((64, 4))
        big = np.empty(phi.nnz * 4)
        np.testing.assert_array_equal(
            phi.apply_transpose(resid, gather=big),
            phi.apply_transpose(resid),
        )

    def test_residual_is_apply_minus_ys(self):
        matrix = SparseBinaryMatrix(64, 128, d=8, seed=3)
        phi = SparsePhiApply(matrix)
        rng = np.random.default_rng(11)
        signals = rng.standard_normal((128, 4))
        ys = rng.standard_normal((64, 4))
        np.testing.assert_array_equal(
            phi.residual(signals, ys), phi.apply(signals) - ys
        )

    def test_empty_rows_covered_by_sweep(self):
        """The d=1 square shape of the seed sweep really exercises the
        empty-row clamp: at least one swept matrix has empty rows."""
        m, n, d = SHAPES[-1]
        sizes = [
            SparsePhiApply(
                SparseBinaryMatrix(m, n, d=d, seed=seed)
            ).empty_rows.size
            for seed in SEEDS
        ]
        assert max(sizes) > 0

    def test_shape_mismatch_raises(self):
        matrix = SparseBinaryMatrix(64, 128, d=8, seed=3)
        phi = SparsePhiApply(matrix)
        with pytest.raises(SolverError):
            phi.apply(np.zeros((64, 2)))
        with pytest.raises(SolverError):
            phi.apply_transpose(np.zeros((128, 2)))


# ----------------------------------------------------------------------
# solver level: structured pipeline vs the dense float64 reference
# ----------------------------------------------------------------------

MAX_ITERATIONS = 400
TOLERANCE = 1e-4
FRACTION = 0.05


@pytest.fixture(scope="module")
def structured_problem():
    """A real CS problem factored for the structured solver: sparse
    ``Phi``, db4 synthesis, a 6-column measurement block."""
    rng = np.random.default_rng(42)
    n, m = 256, 128
    transform = WaveletTransform(n, "db4", 4)
    matrix = SparseBinaryMatrix(m, n, d=8, seed=7)
    structure = StructuredOperator(matrix, transform.synthesis_matrix())
    columns = []
    for _ in range(6):
        alpha = np.zeros(n)
        support = rng.choice(n, 20, replace=False)
        alpha[support] = rng.standard_normal(20) * 5.0
        columns.append(matrix.measure(transform.inverse(alpha)))
    ys = np.stack(columns, axis=1)
    ys += 0.01 * rng.standard_normal(ys.shape)
    return {
        "structure": structure,
        "transform": transform,
        "ys": ys,
    }


class TestStructuredSolver:
    def test_float64_lever_bit_identical_to_dense_reference(
        self, structured_problem
    ):
        """iterate_dtype=float64 runs the *same* dense GEMM iteration;
        the sparse kernels only gate — coefficients are bit-identical
        to a direct batched_fista on the fused operator."""
        structure = structured_problem["structure"]
        ys = structured_problem["ys"]
        result = structured_batched_fista(
            structure,
            ys,
            FRACTION,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
            iterate_dtype=np.float64,
        )
        lams = batched_lambda_from_fraction(structure.dense64, ys, FRACTION)
        reference = batched_fista(
            structure.dense64,
            ys,
            lams,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
            lipschitz=structure.lipschitz,
            operator_t=structure.dense64_t,
        )
        assert np.array_equal(result.coefficients, reference.coefficients)
        assert np.array_equal(result.iterations, reference.iterations)
        assert not result.polished.any()
        # the structured path owns synthesis: signals == Psi @ alpha
        np.testing.assert_allclose(
            result.signals,
            structured_problem["transform"].inverse_batch(
                reference.coefficients
            ),
            rtol=0,
            atol=1e-10,
        )

    def test_hybrid_stays_inside_float64_corridor(self, structured_problem):
        """The float32 fast path lands within a whisker of the float64
        solve: same residual quality, near-identical signals, and no
        polish fired on a well-behaved block."""
        structure = structured_problem["structure"]
        ys = structured_problem["ys"]
        hybrid = structured_batched_fista(
            structure,
            ys,
            FRACTION,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
        )
        pure = structured_batched_fista(
            structure,
            ys,
            FRACTION,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
            iterate_dtype=np.float64,
        )
        assert hybrid.signals.dtype == np.float64
        assert np.all(hybrid.rel_residuals <= DEFAULT_POLISH_CORRIDOR)
        # residual quality within 5% of the float64 reference
        floor = np.maximum(pure.rel_residuals, 1e-12)
        assert np.all(hybrid.rel_residuals <= 1.05 * floor + 1e-6)
        scale = np.linalg.norm(pure.signals)
        assert (
            np.linalg.norm(hybrid.signals - pure.signals) / scale < 1e-2
        )

    def test_single_column_block(self, structured_problem):
        """B=1 — the serial decode() route through the hybrid path."""
        structure = structured_problem["structure"]
        ys = structured_problem["ys"][:, :1]
        result = structured_batched_fista(
            structure,
            ys,
            FRACTION,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
        )
        assert result.batch_size == 1
        assert result.signals.shape == (structure.n_samples, 1)
        single = result.per_column(0)
        assert single.iterations == int(result.iterations[0])

    def test_hard_column_triggers_polish_and_lands_in_corridor(
        self, structured_problem
    ):
        """A column whose measurements overflow float32 (|y| ~ 1e39)
        goes non-finite on the fast path; the residual gate must catch
        exactly that column, re-solve it in float64, and bring it back
        inside the corridor without touching its neighbours."""
        structure = structured_problem["structure"]
        ys = structured_problem["ys"].copy()
        hard = 2
        ys[:, hard] *= 1e39  # finite in float64, inf as float32
        result = structured_batched_fista(
            structure,
            ys,
            FRACTION,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
        )
        assert result.polished[hard]
        others = np.delete(np.arange(ys.shape[1]), hard)
        assert not result.polished[others].any()
        assert np.all(np.isfinite(result.rel_residuals))
        assert result.rel_residuals[hard] <= DEFAULT_POLISH_CORRIDOR
        # the polished column is the float64 solve of the scaled column
        pure = structured_batched_fista(
            structure,
            ys[:, hard : hard + 1],
            FRACTION,
            max_iterations=MAX_ITERATIONS,
            tolerance=TOLERANCE,
            iterate_dtype=np.float64,
        )
        np.testing.assert_allclose(
            result.signals[:, hard],
            pure.signals[:, 0],
            rtol=1e-10,
            atol=1e-6 * float(np.abs(pure.signals).max()),
        )

    def test_invalid_arguments(self, structured_problem):
        structure = structured_problem["structure"]
        ys = structured_problem["ys"]
        with pytest.raises(SolverError):
            structured_batched_fista(
                structure, ys, FRACTION, iterate_dtype=np.int32
            )
        with pytest.raises(SolverError):
            structured_batched_fista(
                structure, ys, FRACTION, polish_corridor=0.0
            )

    def test_workspace_arenas_steady_state(self, structured_problem):
        """Repeated solves through one workspace allocate nothing new:
        the arena map reaches a fixed point after the first call."""
        from repro.solvers import BatchedFista

        structure = structured_problem["structure"]
        ys = structured_problem["ys"]
        solver = BatchedFista(
            structure.dense64,
            lipschitz=structure.lipschitz,
            structure=structure,
        )
        first = solver.solve_structured(
            ys, FRACTION, max_iterations=MAX_ITERATIONS, tolerance=TOLERANCE
        )
        arenas = {
            key: id(buf)
            for key, buf in solver.workspace._arenas.items()
        }
        second = solver.solve_structured(
            ys, FRACTION, max_iterations=MAX_ITERATIONS, tolerance=TOLERANCE
        )
        after = {
            key: id(buf)
            for key, buf in solver.workspace._arenas.items()
        }
        assert arenas == after  # no arena grew or was replaced
        # outputs are freshly allocated, never arena views
        assert first.signals is not second.signals
        np.testing.assert_array_equal(first.signals, second.signals)


# ----------------------------------------------------------------------
# fleet + CLI level: the levers through the production decode paths
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def encoded_block(database):
    """Real encoded windows of record 100 at the fast test point,
    dequantized into one measurement block (the fleet/gateway input)."""
    config = SystemConfig(
        n=256, m=128, d=8, levels=4, max_iterations=400, tolerance=1e-4
    )
    record = database.load("100")
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    packets = []
    samples = system._prepare_samples(record, 0)
    system.encoder.reset()
    for index in range(4):
        window = samples[index * config.n : (index + 1) * config.n]
        packets.append(system.encoder.encode(window))
    block = system.decoder.payload.measurement_block(packets, np.float64)
    return {"config": config, "record": record, "block": block}


class TestFleetEquivalence:
    def _task(self, encoded_block, precision):
        config = encoded_block["config"]
        block = encoded_block["block"]
        return {
            "config": dataclasses.asdict(config),
            "precision": precision,
            "block": block,
            "fractions": np.full(
                block.shape[1], config.lam, dtype=np.float64
            ),
            "batch_size": block.shape[1],
            "max_iterations": config.max_iterations,
            "tolerance": config.tolerance,
        }

    def test_solve_measurement_block_hybrid_matches_float64(
        self, encoded_block
    ):
        hybrid = solve_measurement_block(
            self._task(encoded_block, "hybrid")
        )
        pure = solve_measurement_block(
            self._task(encoded_block, "float64")
        )
        scale = np.linalg.norm(pure["signals"])
        assert (
            np.linalg.norm(hybrid["signals"] - pure["signals"]) / scale
            < 1e-2
        )

    def test_hybrid_block_reports_telemetry_counters(self, encoded_block):
        out = solve_measurement_block(self._task(encoded_block, "hybrid"))
        by_name = {
            series["name"]: series["value"]
            for series in out["telemetry"]["counters"]
        }
        assert by_name["fleet_hybrid_windows"] == (
            encoded_block["block"].shape[1]
        )
        assert "fleet_polish_windows" in by_name

    def test_fleet_hybrid_prd_matches_float64(self, database):
        config = SystemConfig(
            n=256, m=128, d=8, levels=4, max_iterations=400, tolerance=1e-4
        )
        record = database.load("100")
        results = {}
        for precision in ("float64", "hybrid"):
            system = EcgMonitorSystem(config, precision=precision)
            system.calibrate(record)
            (results[precision],) = decode_fleet(
                [
                    StreamTask(
                        system, record, max_packets=4, keep_signals=True
                    )
                ],
                batch_size=4,
            )
        pure, hybrid = results["float64"], results["hybrid"]
        assert [p.sequence for p in pure.packets] == [
            p.sequence for p in hybrid.packets
        ]
        for a, b in zip(pure.packets, hybrid.packets):
            assert abs(a.prd_percent - b.prd_percent) < 0.5
        np.testing.assert_allclose(
            hybrid.reconstructed_adu,
            pure.reconstructed_adu,
            atol=1.0,  # ADU counts; float32 noise is far below 1 LSB
        )


class TestCliEquivalence:
    @pytest.mark.parametrize("precision", ["hybrid", "float32"])
    def test_fleet_cli_precision_flag(self, capsys, precision):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--streams", "1",
                "--packets", "2",
                "--duration", "12",
                "--batch-size", "4",
                "--precision", precision,
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "windows/s" in captured

    def test_fleet_cli_rejects_unknown_precision(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fleet", "--precision", "float16"])
