"""Tests for FISTA — the paper's reconstruction solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import fista, ista, lambda_from_fraction
from repro.wavelet import DenseOperator


class TestInterface:
    def test_rejects_bad_lambda(self, sparse_problem):
        with pytest.raises(SolverError):
            fista(sparse_problem["system"], sparse_problem["y"], lam=0.0)

    def test_rejects_bad_iterations(self, sparse_problem):
        with pytest.raises(SolverError):
            fista(
                sparse_problem["system"], sparse_problem["y"], lam=1.0,
                max_iterations=0,
            )

    def test_rejects_bad_tolerance(self, sparse_problem):
        with pytest.raises(SolverError):
            fista(
                sparse_problem["system"], sparse_problem["y"], lam=1.0,
                tolerance=0.0,
            )

    def test_rejects_mismatched_y(self, sparse_problem):
        with pytest.raises(SolverError):
            fista(sparse_problem["system"], np.zeros(5), lam=1.0)

    def test_rejects_bad_x0(self, sparse_problem):
        with pytest.raises(SolverError):
            fista(
                sparse_problem["system"], sparse_problem["y"], lam=1.0,
                x0=np.zeros(3),
            )

    def test_rejects_bad_lipschitz(self, sparse_problem):
        with pytest.raises(SolverError):
            fista(
                sparse_problem["system"], sparse_problem["y"], lam=1.0,
                lipschitz=-1.0,
            )


class TestRecovery:
    def test_recovers_sparse_signal(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.001)
        result = fista(a, y, lam, max_iterations=3000, tolerance=1e-7)
        x_hat = sparse_problem["transform"].inverse(result.coefficients)
        prd = np.linalg.norm(x_hat - sparse_problem["x_true"]) / np.linalg.norm(
            sparse_problem["x_true"]
        )
        assert prd < 0.05

    def test_converged_flag(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        result = fista(a, y, lam, max_iterations=3000, tolerance=1e-6)
        assert result.converged
        assert result.stop_reason == "tolerance"
        assert result.iterations < 3000

    def test_budget_exhaustion_reported(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.001)
        result = fista(a, y, lam, max_iterations=3, tolerance=1e-12)
        assert not result.converged
        assert result.stop_reason == "max_iterations"
        assert result.iterations == 3

    def test_objective_decreases_overall(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        result = fista(
            a, y, lam, max_iterations=300, tolerance=1e-10,
            track_objective=True,
        )
        history = result.objective_history
        # FISTA is not monotone per-step, but start -> end must descend
        assert history[-1] < history[0]
        assert result.objective == history[-1]

    def test_large_lambda_gives_zero(self, sparse_problem):
        """lambda >= 2||A^T y||_inf makes 0 the optimum."""
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = 2.5 * float(np.max(np.abs(a.T @ y)))
        result = fista(a, y, lam, max_iterations=500, tolerance=1e-10)
        assert np.allclose(result.coefficients, 0.0, atol=1e-8)

    def test_solution_is_fixed_point(self, sparse_problem):
        """x* = prox(x* - (1/L) grad f(x*)) at convergence."""
        from repro.solvers import soft_threshold
        from repro.solvers.lipschitz import lipschitz_constant

        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        lipschitz = lipschitz_constant(a)
        result = fista(
            a, y, lam, max_iterations=6000, tolerance=1e-10,
            lipschitz=lipschitz,
        )
        alpha = result.coefficients
        gradient = 2.0 * a.T @ (a @ alpha - y)
        step = soft_threshold(alpha - gradient / lipschitz, lam / lipschitz)
        assert np.allclose(step, alpha, atol=1e-5)

    def test_warm_start_converges_faster(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        cold = fista(a, y, lam, max_iterations=4000, tolerance=1e-6)
        warm = fista(
            a, y, lam, max_iterations=4000, tolerance=1e-6,
            x0=cold.coefficients,
        )
        assert warm.iterations <= cold.iterations

    def test_operator_and_dense_agree(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.01)
        dense = fista(a, y, lam, max_iterations=200, tolerance=1e-8)
        operator = fista(
            DenseOperator(a), y, lam, max_iterations=200, tolerance=1e-8
        )
        assert np.allclose(dense.coefficients, operator.coefficients, atol=1e-10)

    def test_faster_than_ista(self, sparse_problem):
        """The paper's motivation: O(1/k^2) vs O(1/k)."""
        a, y = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a, y, 0.005)
        fista_result = fista(a, y, lam, max_iterations=5000, tolerance=1e-6)
        ista_result = ista(a, y, lam, max_iterations=5000, tolerance=1e-6)
        assert fista_result.iterations < ista_result.iterations


class TestPrecision:
    def test_float32_pipeline(self, sparse_problem):
        a = sparse_problem["system"].astype(np.float32)
        y = sparse_problem["y"].astype(np.float32)
        lam = lambda_from_fraction(a, y, 0.01)
        result = fista(a, y, lam, max_iterations=1000, tolerance=1e-5)
        assert result.coefficients.dtype == np.float32

    def test_float64_operator_cast_to_match_float32_y(self, sparse_problem):
        """A float64 dense A with float32 y must run the whole solve at
        float32 — bit-identical to passing a float32 A — rather than
        silently promoting every matvec to float64."""
        a64 = sparse_problem["system"]
        y32 = sparse_problem["y"].astype(np.float32)
        lam = lambda_from_fraction(a64, y32, 0.01)
        mixed = fista(a64, y32, lam, max_iterations=200, tolerance=1e-5)
        pure = fista(
            a64.astype(np.float32), y32, lam,
            max_iterations=200, tolerance=1e-5,
        )
        assert mixed.coefficients.dtype == np.float32
        assert mixed.iterations == pure.iterations
        assert np.array_equal(mixed.coefficients, pure.coefficients)

    def test_float32_matches_float64_quality(self, sparse_problem):
        """The Figure 6 claim at unit-test scale."""
        a64, y64 = sparse_problem["system"], sparse_problem["y"]
        lam = lambda_from_fraction(a64, y64, 0.005)
        r64 = fista(a64, y64, lam, max_iterations=2000, tolerance=1e-6)
        r32 = fista(
            a64.astype(np.float32), y64.astype(np.float32), lam,
            max_iterations=2000, tolerance=1e-6,
        )
        t = sparse_problem["transform"]
        x64 = t.inverse(r64.coefficients)
        x32 = t.inverse(r32.coefficients.astype(np.float64))
        x_true = sparse_problem["x_true"]
        prd64 = np.linalg.norm(x64 - x_true) / np.linalg.norm(x_true)
        prd32 = np.linalg.norm(x32 - x_true) / np.linalg.norm(x_true)
        assert abs(prd64 - prd32) < 0.01


class TestLambdaFromFraction:
    def test_scales_with_fraction(self, sparse_problem):
        a, y = sparse_problem["system"], sparse_problem["y"]
        assert lambda_from_fraction(a, y, 0.2) == pytest.approx(
            2.0 * lambda_from_fraction(a, y, 0.1)
        )

    def test_zero_measurements(self, sparse_problem):
        a = sparse_problem["system"]
        assert lambda_from_fraction(a, np.zeros(a.shape[0]), 0.3) == 0.3

    def test_rejects_nonpositive_fraction(self, sparse_problem):
        with pytest.raises(SolverError):
            lambda_from_fraction(
                sparse_problem["system"], sparse_problem["y"], 0.0
            )
