"""Tests for power-iteration spectral-norm estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import lipschitz_constant, power_iteration_norm
from repro.wavelet import DenseOperator


class TestPowerIteration:
    def test_diagonal_matrix(self):
        matrix = np.diag([1.0, 5.0, 3.0])
        assert power_iteration_norm(matrix) == pytest.approx(5.0, rel=1e-5)

    def test_matches_svd(self, rng):
        matrix = rng.standard_normal((20, 40))
        expected = np.linalg.svd(matrix, compute_uv=False)[0]
        assert power_iteration_norm(matrix) == pytest.approx(expected, rel=1e-4)

    def test_operator_input(self, rng):
        matrix = rng.standard_normal((10, 15))
        assert power_iteration_norm(DenseOperator(matrix)) == pytest.approx(
            power_iteration_norm(matrix), rel=1e-6
        )

    def test_zero_matrix(self):
        assert power_iteration_norm(np.zeros((4, 4))) == 0.0

    def test_invalid_iterations(self):
        with pytest.raises(SolverError):
            power_iteration_norm(np.eye(3), iterations=0)

    def test_non_2d_rejected(self):
        with pytest.raises(SolverError):
            power_iteration_norm(np.zeros(3))

    def test_deterministic(self, rng):
        matrix = rng.standard_normal((12, 12))
        assert power_iteration_norm(matrix) == power_iteration_norm(matrix)


class TestLipschitzConstant:
    def test_value_is_2_sigma_squared_with_margin(self, rng):
        matrix = rng.standard_normal((16, 32))
        sigma = np.linalg.svd(matrix, compute_uv=False)[0]
        constant = lipschitz_constant(matrix, safety=1.02)
        assert constant == pytest.approx(2.0 * 1.02 * sigma**2, rel=1e-3)

    def test_never_underestimates(self, rng):
        """The safety margin must keep L >= 2 sigma_max^2."""
        for seed in range(5):
            matrix = np.random.default_rng(seed).standard_normal((10, 20))
            sigma = np.linalg.svd(matrix, compute_uv=False)[0]
            assert lipschitz_constant(matrix) >= 2.0 * sigma**2 - 1e-9

    def test_invalid_safety(self):
        with pytest.raises(SolverError):
            lipschitz_constant(np.eye(3), safety=0.9)
