"""Tests for the three soft-threshold implementations (Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.solvers import (
    soft_threshold,
    soft_threshold_branchy,
    soft_threshold_if_converted,
)


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        u = np.array([3.0, -3.0, 0.5, -0.5, 0.0])
        out = soft_threshold(u, 1.0)
        assert np.allclose(out, [2.0, -2.0, 0.0, 0.0, 0.0])

    def test_zero_threshold_is_identity(self, rng):
        u = rng.standard_normal(32)
        assert np.allclose(soft_threshold(u, 0.0), u)

    def test_negative_threshold_rejected(self):
        for fn in (
            soft_threshold,
            soft_threshold_branchy,
            soft_threshold_if_converted,
        ):
            with pytest.raises(ValueError):
                fn(np.zeros(4), -1.0)

    def test_float32_preserved(self, rng):
        u = rng.standard_normal(16).astype(np.float32)
        assert soft_threshold(u, 0.5).dtype == np.float32

    def test_prox_optimality_condition(self, rng):
        """p = prox(u) satisfies u - p in t * subgradient(|p|)."""
        u = rng.standard_normal(64)
        t = 0.7
        p = soft_threshold(u, t)
        residual = u - p
        nonzero = p != 0
        assert np.allclose(residual[nonzero], t * np.sign(p[nonzero]))
        assert np.all(np.abs(residual[~nonzero]) <= t + 1e-12)


class TestEquivalence:
    """The paper's claim in Figure 4: the transformation is exact."""

    @settings(deadline=None, max_examples=40)
    @given(
        hnp.arrays(
            np.float64, st.integers(1, 64),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.floats(0.0, 100.0),
    )
    def test_all_three_forms_identical(self, u, threshold):
        base = soft_threshold(u, threshold)
        assert np.array_equal(soft_threshold_branchy(u, threshold), base)
        assert np.array_equal(soft_threshold_if_converted(u, threshold), base)

    def test_exact_threshold_boundary(self):
        u = np.array([1.0, -1.0])
        for fn in (
            soft_threshold,
            soft_threshold_branchy,
            soft_threshold_if_converted,
        ):
            assert np.allclose(fn(u, 1.0), [0.0, 0.0])

    def test_nonexpansiveness(self, rng):
        """||prox(u) - prox(v)|| <= ||u - v||."""
        u, v = rng.standard_normal(64), rng.standard_normal(64)
        pu, pv = soft_threshold(u, 0.4), soft_threshold(v, 0.4)
        assert np.linalg.norm(pu - pv) <= np.linalg.norm(u - v) + 1e-12
