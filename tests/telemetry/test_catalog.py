"""The metric catalog: shape invariants and the HELP-line exposition."""

import re

from repro.telemetry import (
    CATALOG,
    COUNTER,
    GAUGE,
    HISTOGRAM,
    LABEL_NAMES,
    MetricsRegistry,
    exposition_matches_snapshot,
    render_prometheus,
    spec_for,
)

_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class TestCatalogShape:
    def test_every_entry_well_formed(self):
        for name, spec in CATALOG.items():
            assert spec.name == name
            assert _PROM_NAME.match(name), name
            assert spec.kind in (COUNTER, GAUGE, HISTOGRAM)
            assert spec.description.strip(), name
            for label in spec.labels:
                assert _PROM_NAME.match(label), (name, label)

    def test_label_vocabulary_is_union_of_specs(self):
        assert LABEL_NAMES == frozenset(
            label for spec in CATALOG.values() for label in spec.labels
        )

    def test_histogram_suffixes_never_collide_with_entries(self):
        # _bucket/_sum/_count series of a histogram must not shadow a
        # declared metric name
        for name, spec in CATALOG.items():
            if spec.kind != HISTOGRAM:
                continue
            for suffix in ("_bucket", "_sum", "_count"):
                assert name + suffix not in CATALOG

    def test_spec_for(self):
        assert spec_for("ingest_windows_decoded").kind == COUNTER
        assert spec_for("no_such_metric") is None


class TestHelpExposition:
    def test_help_lines_precede_type_lines(self):
        registry = MetricsRegistry()
        registry.meter(stream="s0").inc("ingest_windows_decoded")
        text = render_prometheus(registry.snapshot())
        lines = text.splitlines()
        help_idx = lines.index(
            "# HELP ingest_windows_decoded "
            + CATALOG["ingest_windows_decoded"].description
        )
        assert lines[help_idx + 1] == "# TYPE ingest_windows_decoded counter"

    def test_undeclared_metric_renders_without_help(self):
        # the renderer must not crash on a name outside the catalog
        # (dynamic/test-only metrics): it just has no HELP line
        registry = MetricsRegistry()
        registry.inc("test_only_metric")
        text = render_prometheus(registry.snapshot())
        assert "# TYPE test_only_metric counter" in text
        assert "# HELP test_only_metric" not in text

    def test_round_trip_survives_help_lines(self):
        registry = MetricsRegistry()
        meter = registry.meter(stream="s1")
        meter.inc("ingest_windows_decoded", amount=3)
        meter.observe("ingest_solve_seconds", 0.25)
        registry.set_gauge("ingest_queue_depth", 2, group="g0")
        snapshot = registry.snapshot()
        text = render_prometheus(snapshot)
        assert exposition_matches_snapshot(text, snapshot)
