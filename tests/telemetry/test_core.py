"""Telemetry core: instruments, labels, and the snapshot merge algebra."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    DEFAULT_SIZE_BUCKETS,
    NULL_METER,
    Meter,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("windows", stream="100:0")
        registry.inc("windows", 2, stream="100:0")
        registry.inc("windows", stream="119:0")
        snap = registry.snapshot()
        assert snap.counter_value("windows", stream="100:0") == 3
        assert snap.counter_value("windows", stream="119:0") == 1
        assert snap.counter_total("windows") == 4
        assert snap.counter_value("windows", stream="nope") == 0.0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.inc("windows", -1)

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.inc("x", stream="a", group="g0")
        registry.inc("x", group="g0", stream="a")
        assert registry.snapshot().counter_value(
            "x", stream="a", group="g0"
        ) == 2

    def test_gauge_keeps_latest_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 4)
        registry.set_gauge("depth", 2)
        assert registry.snapshot().gauge_value("depth") == 2
        assert registry.snapshot().gauge_value("missing") is None

    def test_histogram_percentiles_and_extremes(self):
        registry = MetricsRegistry()
        for value in (0.002, 0.004, 0.03, 0.4, 1.2):
            registry.observe("latency", value)
        hist = registry.snapshot().histogram("latency")
        assert hist.total == 5
        assert hist.min == pytest.approx(0.002)
        assert hist.max == pytest.approx(1.2)
        assert hist.mean == pytest.approx(sum((0.002, 0.004, 0.03, 0.4, 1.2)) / 5)
        p50 = hist.percentile(50)
        assert 0.0025 <= p50 <= 0.05
        # percentiles clamp to observed extremes
        assert hist.percentile(0) == pytest.approx(0.002)
        assert hist.percentile(100) == pytest.approx(1.2)

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.observe("widths", 4, buckets=DEFAULT_SIZE_BUCKETS)
        with pytest.raises(TelemetryError):
            registry.observe("widths", 4, buckets=(1.0, 2.0))

    def test_empty_histogram_queries(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.1)
        hist = registry.snapshot().histogram("latency")
        assert hist.percentile(50) == pytest.approx(0.1)
        assert registry.snapshot().histogram("missing") is None
        assert registry.snapshot().histogram_total("missing") is None

    def test_meter_binds_static_labels(self):
        registry = MetricsRegistry()
        meter = registry.meter(stream="100:0")
        meter.inc("windows")
        meter.child(group="g0").inc("windows")
        snap = registry.snapshot()
        assert snap.counter_value("windows", stream="100:0") == 1
        assert snap.counter_value("windows", stream="100:0", group="g0") == 1
        assert meter.active

    def test_null_meter_is_inert(self):
        NULL_METER.inc("anything")
        NULL_METER.set_gauge("anything", 1)
        NULL_METER.observe("anything", 1.0)
        assert not NULL_METER.active
        assert not Meter(None, {"a": "b"}).active


def _random_snapshot(rng: random.Random) -> MetricsSnapshot:
    """One worker's delta: a private registry with random activity."""
    registry = MetricsRegistry()
    for _ in range(rng.randrange(1, 12)):
        registry.inc(
            rng.choice(("windows", "flushes", "drops")),
            rng.randrange(1, 5),
            stream=rng.choice(("a", "b", "c")),
        )
    for _ in range(rng.randrange(0, 4)):
        registry.set_gauge("depth", rng.randrange(0, 50))
    for _ in range(rng.randrange(1, 20)):
        registry.observe("latency", rng.random() * 3.0)
    return registry.snapshot()


class TestSnapshotMergeAlgebra:
    """The cross-process contract: order-independent, exact fan-in."""

    def test_empty_merge_is_identity(self):
        rng = random.Random(7)
        snap = _random_snapshot(rng)
        empty = MetricsSnapshot.empty()
        assert empty.merge(snap) == snap
        assert snap.merge(empty) == snap
        assert empty.merge(empty) == MetricsSnapshot.empty()

    def test_merge_is_associative_and_commutative(self):
        rng = random.Random(2011)
        parts = [_random_snapshot(rng) for _ in range(4)]
        a, b, c, d = parts
        left = a.merge(b).merge(c).merge(d)
        right = a.merge(b.merge(c.merge(d)))
        shuffled = d.merge(b).merge(a).merge(c)
        assert left == right == shuffled

    def test_histogram_percentiles_survive_merge_exactly(self):
        """percentile(merge(h(A), h(B))) == percentile(h(A + B))."""
        rng = random.Random(5)
        samples_a = [rng.random() * 2.5 for _ in range(40)]
        samples_b = [rng.random() * 0.05 for _ in range(25)]
        reg_a, reg_b, reg_all = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        )
        for value in samples_a:
            reg_a.observe("latency", value)
            reg_all.observe("latency", value)
        for value in samples_b:
            reg_b.observe("latency", value)
            reg_all.observe("latency", value)
        merged = reg_a.snapshot().merge(reg_b.snapshot())
        direct = reg_all.snapshot()
        assert merged.histogram("latency") == direct.histogram("latency")
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert merged.histogram("latency").percentile(q) == pytest.approx(
                direct.histogram("latency").percentile(q), abs=0.0
            )

    def test_mismatched_histogram_buckets_refuse_to_merge(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.observe("x", 1.0, buckets=(1.0, 2.0))
        reg_b.observe("x", 1.0, buckets=(1.0, 3.0))
        with pytest.raises(TelemetryError):
            reg_a.snapshot().merge(reg_b.snapshot())

    def test_gauge_merge_is_order_independent(self):
        # the higher update version wins regardless of merge order
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.set_gauge("depth", 10)  # version 1
        reg_b.set_gauge("depth", 3)   # version 1
        reg_b.set_gauge("depth", 7)   # version 2 -> wins
        a, b = reg_a.snapshot(), reg_b.snapshot()
        assert a.merge(b).gauge_value("depth") == 7
        assert b.merge(a).gauge_value("depth") == 7

    def test_absorb_matches_functional_merge(self):
        rng = random.Random(13)
        deltas = [_random_snapshot(rng) for _ in range(3)]
        registry = MetricsRegistry()
        registry.inc("windows", 5, stream="a")
        functional = registry.snapshot()
        for delta in deltas:
            functional = functional.merge(delta)
        for delta in reversed(deltas):  # absorption order must not matter
            registry.absorb(delta)
        assert registry.snapshot() == functional

    def test_snapshot_round_trips_through_dict_and_pickle(self):
        snap = _random_snapshot(random.Random(99))
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap
        assert pickle.loads(pickle.dumps(snap)) == snap
        # the dict form is what crosses the process-pool boundary
        registry = MetricsRegistry()
        registry.absorb(snap.to_dict())
        assert registry.snapshot() == snap

    def test_label_values_enumerates_series(self):
        registry = MetricsRegistry()
        registry.inc("sessions", stream="100:0")
        registry.inc("sessions", stream="100:0")
        registry.inc("sessions", stream="119:1")
        snap = registry.snapshot()
        assert snap.label_values("sessions", "stream") == {"100:0", "119:1"}
        assert snap.label_values("sessions", "absent") == set()
