"""MetricsSnapshot across process boundaries: the federation roll-up.

The federation front door never reads a worker registry directly: each
gateway worker ships ``snapshot().delta_since(shipped).to_dict()``
through its control pipe (a pickle boundary) and the coordinator
``absorb``s the dict.  These tests pin the three properties that
contract rests on:

- the wire forms (``to_dict`` and pickling) round-trip exactly;
- the merge is a commutative monoid, so any absorption order over any
  worker completion order yields the same aggregate — counters and
  percentiles exact, gauges resolved by update version;
- periodic ``delta_since`` shipping absorbs to the same totals as one
  final cumulative snapshot (no double counting).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.telemetry import MetricsRegistry, MetricsSnapshot

BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0)


def _worker_registry(worker: int, solves: int) -> MetricsRegistry:
    """A registry shaped like one gateway worker's private plane."""
    registry = MetricsRegistry()
    for index in range(solves):
        registry.inc("ingest_windows_decoded", gateway=f"gw{worker}")
        registry.observe(
            "solve_seconds",
            0.001 * (1 + worker) * (1 + index),
            buckets=BUCKETS,
        )
    registry.set_gauge("federation_gateways", float(worker + 1))
    return registry


class TestWireForms:
    def test_to_dict_round_trip_is_exact(self):
        snap = _worker_registry(0, 5).snapshot()
        clone = MetricsSnapshot.from_dict(snap.to_dict())
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.histograms == snap.histograms

    def test_pickle_round_trip_is_exact(self):
        # multiprocessing.Pipe pickles whatever the worker sends; the
        # roll-up ships plain dicts, but the snapshot itself must
        # survive pickling too (thread-mode fallback passes it as-is)
        snap = _worker_registry(1, 7).snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.histograms == snap.histograms

    def test_absorb_accepts_the_wire_dict(self):
        coordinator = MetricsRegistry()
        coordinator.absorb(_worker_registry(0, 3).snapshot().to_dict())
        assert (
            coordinator.counter_value(
                "ingest_windows_decoded", gateway="gw0"
            )
            == 3
        )


class TestMonoidMerge:
    def test_counter_totals_exact_across_workers(self):
        coordinator = MetricsRegistry()
        for worker, solves in enumerate((3, 5, 11)):
            coordinator.absorb(
                _worker_registry(worker, solves).snapshot().to_dict()
            )
        snap = coordinator.snapshot()
        assert snap.counter_total("ingest_windows_decoded") == 19
        for worker, solves in enumerate((3, 5, 11)):
            assert (
                snap.counter_value(
                    "ingest_windows_decoded", gateway=f"gw{worker}"
                )
                == solves
            )

    def test_merge_order_independent(self):
        snaps = [
            _worker_registry(worker, 4 + worker).snapshot()
            for worker in range(4)
        ]
        rng = random.Random(2011)
        merges = []
        for _ in range(6):
            order = snaps[:]
            rng.shuffle(order)
            merged = MetricsSnapshot.empty()
            for snap in order:
                merged = merged.merge(snap)
            merges.append(merged)
        reference = merges[0]
        for merged in merges[1:]:
            assert merged.counters == reference.counters
            assert merged.gauges == reference.gauges
            assert merged.histograms == reference.histograms

    def test_percentiles_exact_vs_single_registry(self):
        # bucketed percentiles are a function of the bucket counts, so
        # merging per-worker histograms must answer exactly what one
        # registry seeing every observation would answer
        union = MetricsRegistry()
        merged = MetricsSnapshot.empty()
        for worker, solves in enumerate((6, 9, 13)):
            registry = _worker_registry(worker, solves)
            merged = merged.merge(registry.snapshot())
            for index in range(solves):
                union.observe(
                    "solve_seconds",
                    0.001 * (1 + worker) * (1 + index),
                    buckets=BUCKETS,
                )
        ours = merged.histogram_total("solve_seconds")
        reference = union.snapshot().histogram_total("solve_seconds")
        assert ours.counts == reference.counts
        assert ours.total == reference.total
        assert ours.sum == pytest.approx(reference.sum)
        for q in (0.5, 0.9, 0.99):
            assert ours.percentile(q) == reference.percentile(q)
        assert ours.min == reference.min
        assert ours.max == reference.max

    def test_gauge_update_version_tiebreak(self):
        # the fresher write wins regardless of absorption order: a
        # worker that set the gauge three times beats one that set it
        # once, even if its snapshot is absorbed first
        stale = MetricsRegistry()
        stale.set_gauge("federation_gateways", 4.0)
        fresh = MetricsRegistry()
        for value in (4.0, 3.0, 2.0):
            fresh.set_gauge("federation_gateways", value)
        forward = MetricsRegistry()
        forward.absorb(stale.snapshot())
        forward.absorb(fresh.snapshot())
        backward = MetricsRegistry()
        backward.absorb(fresh.snapshot())
        backward.absorb(stale.snapshot())
        assert (
            forward.snapshot().gauge_value("federation_gateways")
            == backward.snapshot().gauge_value("federation_gateways")
            == 2.0
        )

    def test_gauge_same_version_resolves_by_value(self):
        a = MetricsRegistry()
        a.set_gauge("federation_gateways", 1.0)
        b = MetricsRegistry()
        b.set_gauge("federation_gateways", 3.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.gauge_value("federation_gateways") == 3.0


class TestDeltaShipping:
    def test_periodic_deltas_equal_final_cumulative(self):
        # the worker loop: record, ship delta, record more, ship again
        worker = MetricsRegistry()
        periodic = MetricsRegistry()
        shipped = MetricsSnapshot.empty()
        for round_solves in (3, 0, 5):
            for index in range(round_solves):
                worker.inc("ingest_windows_decoded", gateway="gw0")
                worker.observe(
                    "solve_seconds", 0.002 * (index + 1), buckets=BUCKETS
                )
            worker.set_gauge("ingest_active_sessions", float(round_solves))
            current = worker.snapshot()
            periodic.absorb(current.delta_since(shipped).to_dict())
            shipped = current
        final = MetricsRegistry()
        final.absorb(worker.snapshot())
        periodic_snap = periodic.snapshot()
        final_snap = final.snapshot()
        assert periodic_snap.counters == final_snap.counters
        assert periodic_snap.gauges == final_snap.gauges
        assert periodic_snap.histograms == final_snap.histograms

    def test_unchanged_series_ship_nothing(self):
        worker = _worker_registry(0, 4)
        first = worker.snapshot()
        delta = worker.snapshot().delta_since(first)
        assert delta.counters == {}
        assert delta.gauges == {}
        assert delta.histograms == {}


def _child_main(conn, solves: int) -> None:
    registry = _worker_registry(0, solves)
    conn.send(registry.snapshot().to_dict())
    conn.close()


class TestRealProcessBoundary:
    def test_snapshot_ships_through_a_real_pipe(self):
        multiprocessing = pytest.importorskip("multiprocessing")
        parent, child = multiprocessing.Pipe()
        try:
            process = multiprocessing.Process(
                target=_child_main, args=(child, 6), daemon=True
            )
            process.start()
        except (ImportError, OSError, ValueError) as exc:
            pytest.skip(f"cannot start a worker process: {exc}")
        try:
            assert parent.poll(30)
            payload = parent.recv()
        finally:
            process.join(timeout=30)
            parent.close()
            child.close()
        coordinator = MetricsRegistry()
        coordinator.absorb(payload)
        assert (
            coordinator.counter_value(
                "ingest_windows_decoded", gateway="gw0"
            )
            == 6
        )
        hist = coordinator.snapshot().histogram_total("solve_seconds")
        assert hist is not None and hist.total == 6
