"""Telemetry sinks: ring-file persistence and the scrape round-trip."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    JsonlRingSink,
    MetricsRegistry,
    MetricsServer,
    MetricsSnapshot,
    exposition_matches_snapshot,
    iter_ring_records,
    parse_prometheus,
    render_prometheus,
    render_result_table,
    render_snapshot_table,
    replay_ring,
    scrape_local,
)


def _busy_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("ingest_windows_decoded", 7, stream="100:0")
    registry.inc("ingest_windows_decoded", 3, stream="119:0")
    registry.inc("ingest_flushes", 2, reason="full")
    registry.set_gauge("ingest_effective_batch", 24)
    for value in (0.01, 0.02, 0.3, 1.4):
        registry.observe("ingest_window_latency_seconds", value)
    return registry


class TestJsonlRing:
    def test_replay_restores_final_snapshot(self, tmp_path):
        registry = _busy_registry()
        sink = JsonlRingSink(tmp_path / "metrics.jsonl", max_records=8)
        sink.append(registry.snapshot())
        registry.inc("ingest_windows_decoded", 5, stream="100:0")
        final = registry.snapshot()
        sink.append(final)
        assert replay_ring(sink.path) == final

    def test_ring_stays_bounded_and_keeps_newest(self, tmp_path):
        registry = MetricsRegistry()
        sink = JsonlRingSink(tmp_path / "metrics.jsonl", max_records=4)
        for index in range(20):
            registry.inc("ticks")
            sink.append(registry.snapshot(), timestamp=float(index))
        records = iter_ring_records(sink.path)
        assert len(records) <= 2 * sink.max_records
        # newest record survived compaction and replays exactly
        assert records[-1]["unix_time"] == 19.0
        assert replay_ring(sink.path) == registry.snapshot()

    def test_torn_final_line_falls_back_to_previous_record(self, tmp_path):
        registry = _busy_registry()
        sink = JsonlRingSink(tmp_path / "metrics.jsonl")
        good = registry.snapshot()
        sink.append(good)
        with sink.path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "unix_time": 1.0, "snap')  # crash
        assert replay_ring(sink.path) == good

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay_ring(tmp_path / "never.jsonl") == MetricsSnapshot.empty()

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = JsonlRingSink(path)
        sink.append(MetricsSnapshot.empty())
        lines = path.read_text().splitlines()
        path.write_text("garbage\n" + lines[0] + "\n")
        with pytest.raises(TelemetryError):
            iter_ring_records(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps({"schema": 99, "snapshot": {}}) + "\n")
        with pytest.raises(TelemetryError):
            replay_ring(path)

    def test_reopened_sink_continues_counting(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        first = JsonlRingSink(path, max_records=2)
        for _ in range(3):
            first.append(MetricsSnapshot.empty())
        again = JsonlRingSink(path, max_records=2)
        for _ in range(3):
            again.append(MetricsSnapshot.empty())
        assert len(iter_ring_records(path)) <= 4


class TestPrometheusExposition:
    def test_round_trip_recovers_every_sample(self):
        snap = _busy_registry().snapshot()
        text = render_prometheus(snap)
        assert exposition_matches_snapshot(text, snap)
        samples = parse_prometheus(text)
        assert samples[
            ("ingest_windows_decoded", (("stream", "100:0"),))
        ] == 7.0
        assert samples[("ingest_effective_batch", ())] == 24.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.003, buckets=(0.001, 0.01, 1.0))
        registry.observe("lat", 0.5, buckets=(0.001, 0.01, 1.0))
        samples = parse_prometheus(render_prometheus(registry.snapshot()))
        assert samples[("lat_bucket", (("le", "0.001"),))] == 0.0
        assert samples[("lat_bucket", (("le", "0.01"),))] == 1.0
        assert samples[("lat_bucket", (("le", "1"),))] == 2.0
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 2.0
        assert samples[("lat_count", ())] == 2.0

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("odd", stream='rec"with\\quotes')
        snap = registry.snapshot()
        assert exposition_matches_snapshot(render_prometheus(snap), snap)

    def test_type_headers_present(self):
        text = render_prometheus(_busy_registry().snapshot())
        assert "# TYPE ingest_windows_decoded counter" in text
        assert "# TYPE ingest_effective_batch gauge" in text
        assert "# TYPE ingest_window_latency_seconds histogram" in text

    def test_mismatch_detected(self):
        snap = _busy_registry().snapshot()
        other = MetricsRegistry()
        other.inc("ingest_windows_decoded", 1, stream="100:0")
        assert not exposition_matches_snapshot(
            render_prometheus(other.snapshot()), snap
        )


class TestMetricsServer:
    def test_http_scrape_serves_current_registry(self):
        async def scenario():
            registry = _busy_registry()
            server = MetricsServer(registry)
            port = await server.start("127.0.0.1", 0)
            before = await scrape_local(port)
            registry.inc("ingest_windows_decoded", 1, stream="100:0")
            after = await scrape_local(port)
            await server.close()
            return registry.snapshot(), before, after

        final, before, after = asyncio.run(scenario())
        assert not exposition_matches_snapshot(before, final)
        assert exposition_matches_snapshot(after, final)

    def test_close_does_not_null_a_concurrent_restart(self):
        """close() swaps the listener out *before* awaiting
        wait_closed(); a start() that lands during that await must not
        have its fresh listener nulled by close()'s tail."""

        async def scenario():
            server = MetricsServer(_busy_registry())
            fresh = object()

            class OldListener:
                def close(self):
                    pass

                async def wait_closed(self):
                    # a concurrent start() lands while the old
                    # listener drains
                    server._server = fresh

            server._server = OldListener()
            await server.close()
            return server._server is fresh

        assert asyncio.run(scenario())

    def test_callable_source(self):
        async def scenario():
            snap = _busy_registry().snapshot()
            server = MetricsServer(lambda: snap)
            port = await server.start()
            text = await scrape_local(port)
            await server.close()
            return snap, text

        snap, text = asyncio.run(scenario())
        assert exposition_matches_snapshot(text, snap)


class TestViews:
    def test_result_table_renders_none_as_na_once(self):
        text = render_result_table(
            [{"stream": 0, "max_latency_ms": None, "prd": 1.25}],
            title="t",
        )
        assert "n/a" in text
        assert "None" not in text

    def test_snapshot_table_lists_all_kinds(self):
        snap = _busy_registry().snapshot()
        text = render_snapshot_table(snap, title="plane")
        assert "ingest_windows_decoded" in text
        assert "ingest_effective_batch" in text
        assert "ingest_window_latency_seconds" in text
        assert "stream=100:0" in text

    def test_empty_snapshot_table(self):
        text = render_snapshot_table(MetricsSnapshot.empty(), title="plane")
        assert "no telemetry" in text
