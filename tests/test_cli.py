"""Tests for the repro-ecg command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_quickstart(self, capsys):
        code = main(
            [
                "quickstart",
                "--record", "100",
                "--cr", "50",
                "--packets", "2",
                "--duration", "12",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "measured_cr" in captured
        assert "snr_db" in captured

    def test_sweep_fig7(self, capsys):
        code = main(
            [
                "sweep",
                "--figure", "fig7",
                "--records", "1",
                "--packets", "2",
                "--duration", "12",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "iterations" in captured
        assert "iphone_time_s" in captured

    def test_fig8(self, capsys):
        code = main(["fig8", "--packets", "3", "--duration", "30"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "node_cpu_percent" in captured
        assert "buffer_min_s" in captured

    def test_budget(self, capsys):
        code = main(["budget"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "sensing_ms" in captured
        assert "sparse-binary" in captured

    def test_simd(self, capsys):
        code = main(["simd"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "array-padding" in captured
        assert "cap_neon" in captured

    def test_records(self, capsys):
        code = main(["records"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "atrial-fibrillation" in captured
        assert captured.count("\n") > 48

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_invalid_record_rejected(self):
        with pytest.raises(SystemExit):
            main(["quickstart", "--record", "999"])
