"""Tests for the repro-ecg command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_quickstart(self, capsys):
        code = main(
            [
                "quickstart",
                "--record", "100",
                "--cr", "50",
                "--packets", "2",
                "--duration", "12",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "measured_cr" in captured
        assert "snr_db" in captured

    def test_fleet(self, capsys):
        code = main(
            [
                "fleet",
                "--streams", "2",
                "--packets", "2",
                "--duration", "12",
                "--batch-size", "4",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "1 operator group(s)" in captured
        assert "single process" in captured
        assert "windows/s" in captured

    def test_fleet_workers_flag(self, capsys):
        code = main(
            [
                "fleet",
                "--streams", "2",
                "--packets", "2",
                "--duration", "12",
                "--batch-size", "4",
                "--groups", "2",
                "--fleet-workers", "2",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "2 operator group(s)" in captured
        assert "2 workers" in captured

    def test_fleet_workers_without_shardable_work_reports_and_warns(
        self, capsys
    ):
        """One group, one batch: nothing to shard.  The mode string
        must say what actually ran, and the engine must emit one
        warning naming the reason instead of staying silent."""
        with pytest.warns(RuntimeWarning, match="nothing to shard"):
            code = main(
                [
                    "fleet",
                    "--streams", "2",
                    "--packets", "2",
                    "--duration", "12",
                    "--batch-size", "4",
                    "--fleet-workers", "4",
                ]
            )
        captured = capsys.readouterr().out
        assert code == 0
        assert "single process" in captured

    def test_fleet_invalid_streams(self, capsys):
        assert main(["fleet", "--streams", "0"]) == 2

    def test_fleet_invalid_packets(self, capsys):
        assert main(["fleet", "--streams", "1", "--packets", "0"]) == 2

    def test_fleet_invalid_batch_size_exits_cleanly(self, capsys):
        assert main(["fleet", "--batch-size", "0"]) == 2
        assert main(["fleet", "--fleet-workers", "-1"]) == 2
        assert main(["fleet", "--groups", "0"]) == 2

    def test_serve_simulate_runs_gateway_over_tcp(self, capsys):
        """serve --simulate: real TCP listener, N node clients, one
        latency table, clean exit."""
        code = main(
            [
                "serve",
                "--port", "0",
                "--simulate", "2",
                "--packets", "2",
                "--batch-size", "2",
                "--flush-ms", "150",
                "--interval-ms", "20",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "live gateway: 2 nodes over TCP" in captured
        assert "max_latency_ms" in captured
        assert "4 windows" in captured  # 2 nodes x 2 windows, all decoded

    def test_serve_simulate_with_lossy_channel(self, capsys):
        """The --loss knob drives the simulator: the run survives the
        impaired channel, and the table/summary report the damage
        accounting instead of silently under-decoding."""
        code = main(
            [
                "serve",
                "--port", "0",
                "--simulate", "2",
                "--packets", "4",
                "--batch-size", "2",
                "--flush-ms", "100",
                "--interval-ms", "10",
                "--loss", "0.25",
                "--channel-seed", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "channel loss=0.25" in captured
        assert "lost" in captured and "resynced" in captured
        assert "channel damage:" in captured

    def test_serve_simulate_with_telemetry_and_adaptive(
        self, capsys, tmp_path
    ):
        """--adaptive/--metrics-file/--metrics-port wire the telemetry
        plane: the run exits cleanly, prints the controller summary,
        and the ring file replays to a snapshot with the decoded
        windows accounted."""
        from repro.telemetry import replay_ring

        ring = tmp_path / "metrics.jsonl"
        code = main(
            [
                "serve",
                "--port", "0",
                "--simulate", "2",
                "--packets", "2",
                "--batch-size", "2",
                "--flush-ms", "150",
                "--interval-ms", "20",
                "--adaptive",
                "--metrics-file", str(ring),
                "--metrics-port", "0",
                "--metrics-interval", "0.2",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "adaptive controller:" in captured
        assert "metrics exposition on http://" in captured
        assert "pressure)" in captured  # flush summary includes pressure
        snapshot = replay_ring(ring)
        assert snapshot.counter_total("ingest_windows_decoded") == 4

    def test_serve_rejects_bad_metrics_interval(self, capsys):
        assert main(["serve", "--metrics-interval", "0"]) == 2

    def test_latency_cell_reports_no_data_distinctly(self):
        # the per-command cell formatters were deduplicated into the
        # telemetry views; n/a handling lives in exactly one place now
        from repro.telemetry import na, render_result_table

        assert na(None) == "n/a"
        assert na(12.5) == 12.5
        table = render_result_table(
            [{"stream": 0, "max_latency_ms": None}], title="t"
        )
        assert "n/a" in table and "None" not in table

    def test_serve_invalid_parameters_exit_cleanly(self, capsys):
        assert main(["serve", "--simulate", "-1"]) == 2
        assert main(["serve", "--simulate", "1", "--packets", "0"]) == 2
        assert main(["serve", "--batch-size", "0"]) == 2
        assert main(["serve", "--flush-ms", "0"]) == 2
        assert main(["serve", "--simulate", "1", "--loss", "1.5"]) == 2
        assert main(["serve", "--simulate", "1", "--corrupt", "-0.1"]) == 2
        # channel flags without --simulate would be silently ignored
        assert main(["serve", "--loss", "0.1"]) == 2

    def test_sweep_fig7(self, capsys):
        code = main(
            [
                "sweep",
                "--figure", "fig7",
                "--records", "1",
                "--packets", "2",
                "--duration", "12",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "iterations" in captured
        assert "iphone_time_s" in captured

    def test_fig8(self, capsys):
        code = main(["fig8", "--packets", "3", "--duration", "30"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "node_cpu_percent" in captured
        assert "buffer_min_s" in captured

    def test_budget(self, capsys):
        code = main(["budget"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "sensing_ms" in captured
        assert "sparse-binary" in captured

    def test_simd(self, capsys):
        code = main(["simd"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "array-padding" in captured
        assert "cap_neon" in captured

    def test_records(self, capsys):
        code = main(["records"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "atrial-fibrillation" in captured
        assert captured.count("\n") > 48

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_invalid_record_rejected(self):
        with pytest.raises(SystemExit):
            main(["quickstart", "--record", "999"])
