"""Tests for repro.config.SystemConfig and module constants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    HUFFMAN_MAX_CODE_BITS,
    HUFFMAN_SYMBOLS,
    PACKET_SAMPLES,
    PAPER_DEFAULT,
    SystemConfig,
    config_for_cr_sweep,
    db_snr_from_prd,
)
from repro.errors import ConfigurationError


class TestConstants:
    def test_packet_samples_is_512(self):
        assert PACKET_SAMPLES == 512

    def test_huffman_alphabet_is_512_symbols(self):
        assert HUFFMAN_SYMBOLS == 512

    def test_huffman_codeword_cap_is_16_bits(self):
        assert HUFFMAN_MAX_CODE_BITS == 16


class TestSystemConfigValidation:
    def test_defaults_are_paper_operating_point(self):
        cfg = SystemConfig()
        assert cfg.n == 512
        assert cfg.m == 256
        assert cfg.d == 12
        assert cfg.sample_rate_hz == 256

    def test_paper_default_singleton_matches(self):
        assert PAPER_DEFAULT == SystemConfig()

    def test_non_power_of_two_n_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=500)

    def test_m_larger_than_n_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=512, m=513)

    def test_zero_m_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(m=0)

    def test_d_larger_than_m_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(m=16, d=17)

    def test_negative_lam_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(lam=-0.1)

    def test_zero_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(tolerance=0.0)

    def test_zero_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(levels=0)

    def test_zero_max_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(max_iterations=0)

    def test_keyframe_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(keyframe_interval=0)

    def test_adc_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(adc_bits=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(adc_bits=17)

    def test_original_bits_below_adc_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(adc_bits=12, original_sample_bits=11)


class TestDerivedQuantities:
    def test_packet_seconds_is_two(self):
        assert SystemConfig().packet_seconds == pytest.approx(2.0)

    def test_packets_per_second(self):
        assert SystemConfig().packets_per_second == pytest.approx(0.5)

    def test_undersampling_ratio(self):
        assert SystemConfig(m=256).undersampling_ratio == pytest.approx(0.5)

    def test_nominal_cr(self):
        assert SystemConfig(m=256).nominal_cr_percent == pytest.approx(50.0)

    def test_original_packet_bits(self):
        assert SystemConfig().original_packet_bits == 512 * 12

    def test_with_target_cr_roundtrip(self):
        cfg = SystemConfig().with_target_cr(75.0)
        assert cfg.m == 128
        assert cfg.nominal_cr_percent == pytest.approx(75.0)

    def test_with_target_cr_invalid(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().with_target_cr(100.0)
        with pytest.raises(ConfigurationError):
            SystemConfig().with_target_cr(-1.0)

    def test_with_target_cr_never_below_d(self):
        cfg = SystemConfig().with_target_cr(99.9)
        assert cfg.m >= cfg.d

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().replace(m=0)

    def test_replace_changes_field(self):
        assert SystemConfig().replace(d=6).d == 6

    def test_max_wavelet_levels(self):
        cfg = SystemConfig()
        # every level's input length must stay >= the filter length:
        # 512, 256, ..., 8 for an 8-tap filter -> 7 levels
        assert cfg.max_wavelet_levels(8) == 7
        assert cfg.max_wavelet_levels(2) == 9

    def test_max_wavelet_levels_invalid_filter(self):
        with pytest.raises(ConfigurationError):
            SystemConfig().max_wavelet_levels(1)

    def test_summary_mentions_key_fields(self):
        text = SystemConfig().summary()
        assert "n=512" in text and "d=12" in text

    @given(st.floats(min_value=0.0, max_value=95.0))
    def test_with_target_cr_hits_target_within_rounding(self, cr):
        cfg = SystemConfig().with_target_cr(cr)
        # m rounds to the nearest integer: CR error bounded by 1/n
        assert abs(cfg.nominal_cr_percent - cr) <= 100.0 / cfg.n + 1e-9


class TestSweepHelpers:
    def test_config_for_cr_sweep_keys(self):
        configs = config_for_cr_sweep((30.0, 50.0))
        assert set(configs) == {30.0, 50.0}
        assert configs[50.0].m == 256

    def test_db_snr_from_prd_matches_formula(self):
        assert db_snr_from_prd(100.0) == pytest.approx(0.0)
        assert db_snr_from_prd(10.0) == pytest.approx(20.0)
        assert db_snr_from_prd(1.0) == pytest.approx(40.0)

    def test_db_snr_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            db_snr_from_prd(0.0)

    @given(st.floats(min_value=0.01, max_value=1000.0))
    def test_snr_monotone_decreasing_in_prd(self, prd):
        assert db_snr_from_prd(prd) >= db_snr_from_prd(prd * 1.5) - 1e-9
