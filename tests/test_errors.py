"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.ConfigurationError,
            errors.CodingError,
            errors.BitstreamError,
            errors.CodebookError,
            errors.DecodingError,
            errors.SensingError,
            errors.SolverError,
            errors.PlatformModelError,
            errors.MemoryBudgetError,
            errors.RealTimeError,
            errors.BufferOverrunError,
            errors.BufferUnderrunError,
            errors.PacketFormatError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)

    def test_value_error_compat(self):
        """Config/sensing errors double as ValueError for ergonomics."""
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.SensingError, ValueError)
        assert issubclass(errors.PlatformModelError, ValueError)

    def test_coding_family(self):
        assert issubclass(errors.BitstreamError, errors.CodingError)
        assert issubclass(errors.CodebookError, errors.CodingError)
        assert issubclass(errors.DecodingError, errors.CodingError)

    def test_buffer_family(self):
        assert issubclass(errors.BufferOverrunError, errors.RealTimeError)
        assert issubclass(errors.BufferUnderrunError, errors.RealTimeError)

    def test_memory_budget_is_platform_error(self):
        assert issubclass(errors.MemoryBudgetError, errors.PlatformModelError)

    def test_convergence_warning_is_warning(self):
        assert issubclass(errors.ConvergenceWarning, RuntimeWarning)

    def test_single_catch_all(self):
        try:
            raise errors.PacketFormatError("boom")
        except errors.ReproError as exc:
            assert "boom" in str(exc)
