"""Consistent-hash ring invariants the federation front door relies on.

The federation's failover contract — "a dead gateway remaps only its
own ring segment" — and its cross-process determinism ("the front
door and any offline tool predict the same placement") are properties
of :class:`repro.utils.HashRing`, so they are pinned here at the data
structure, independent of sockets and worker processes.
"""

from __future__ import annotations

import pytest

from repro.utils import HashRing

NODES = ("gw0", "gw1", "gw2", "gw3")


def _keys(count: int = 200) -> list[tuple]:
    # operator-key-shaped tuples: mixed ints and strings, repr-stable
    return [("db4", 5, 256 + i, 128, "float64") for i in range(count)]


class TestDeterminism:
    def test_same_seed_same_mapping(self):
        a = HashRing(NODES, seed=7, replicas=32)
        b = HashRing(NODES, seed=7, replicas=32)
        assert [a.lookup(k) for k in _keys()] == [
            b.lookup(k) for k in _keys()
        ]

    def test_insertion_order_irrelevant(self):
        a = HashRing(NODES, seed=7, replicas=32)
        b = HashRing(tuple(reversed(NODES)), seed=7, replicas=32)
        assert [a.lookup(k) for k in _keys()] == [
            b.lookup(k) for k in _keys()
        ]

    def test_seed_changes_mapping(self):
        a = HashRing(NODES, seed=1, replicas=32)
        b = HashRing(NODES, seed=2, replicas=32)
        assert [a.lookup(k) for k in _keys()] != [
            b.lookup(k) for k in _keys()
        ]

    def test_golden_lookups_pin_cross_process_stability(self):
        # literal expected owners: BLAKE2b placement cannot depend on
        # PYTHONHASHSEED, so these hold in every interpreter — the
        # property that lets offline tooling predict the front door
        ring = HashRing(("gw0", "gw1", "gw2"), seed=2011, replicas=64)
        assert ring.lookup(("db4", 5, 256, 128, "float64")) == "gw2"
        assert ring.lookup(("db4", 5, 256, 128, "hybrid")) == "gw0"
        assert ring.lookup(("sym8", 4, 512, 192, "float32")) == "gw2"
        assert ring.lookup("record:100:0") == "gw0"


class TestMembership:
    def test_remove_remaps_only_owned_segment(self):
        ring = HashRing(NODES, seed=2011, replicas=64)
        before = {k: ring.lookup(k) for k in _keys()}
        ring.remove("gw1")
        for key, owner in before.items():
            if owner == "gw1":
                assert ring.lookup(key) in {"gw0", "gw2", "gw3"}
            else:
                # survivors keep every key they owned: their warm
                # operator caches stay valid through the failover
                assert ring.lookup(key) == owner

    def test_add_back_restores_original_mapping(self):
        ring = HashRing(NODES, seed=2011, replicas=64)
        before = {k: ring.lookup(k) for k in _keys()}
        ring.remove("gw2")
        ring.add("gw2")
        assert {k: ring.lookup(k) for k in _keys()} == before

    def test_duplicate_add_rejected(self):
        ring = HashRing(("gw0",))
        with pytest.raises(ValueError, match="already on ring"):
            ring.add("gw0")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError, match="not on ring"):
            HashRing(("gw0",)).remove("gw9")

    def test_membership_introspection(self):
        ring = HashRing(NODES)
        assert len(ring) == 4
        assert "gw1" in ring
        ring.remove("gw1")
        assert "gw1" not in ring
        assert ring.nodes == frozenset({"gw0", "gw2", "gw3"})

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError, match="empty"):
            HashRing().lookup("anything")

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)


class TestBalance:
    def test_segment_share_sums_to_one(self):
        share = HashRing(NODES, seed=2011, replicas=64).segment_share()
        assert sum(share.values()) == pytest.approx(1.0)
        assert set(share) == set(NODES)

    def test_shares_reasonably_balanced(self):
        # 64 virtual points per node keep the worst node within ~2x of
        # fair share; a modulo table would be perfectly fair but lose
        # the minimal-remap property TestMembership pins
        share = HashRing(NODES, seed=2011, replicas=64).segment_share()
        for node, fraction in share.items():
            assert 0.10 < fraction < 0.50, (node, fraction)

    def test_keys_actually_spread(self):
        ring = HashRing(NODES, seed=2011, replicas=64)
        owners = {ring.lookup(k) for k in _keys(400)}
        assert owners == set(NODES)

    def test_empty_ring_share(self):
        assert HashRing().segment_share() == {}
