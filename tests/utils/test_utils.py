"""Tests for validation helpers and deterministic seeding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    check_1d,
    check_integer_array,
    check_positive,
    check_probability,
    check_same_length,
    derive_seed,
    rng_from,
)


class TestValidation:
    def test_check_1d_accepts_vector(self):
        assert check_1d(np.zeros(4)).shape == (4,)

    def test_check_1d_rejects_matrix_and_empty(self):
        with pytest.raises(ValueError):
            check_1d(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            check_1d(np.array([]))

    def test_check_integer_array(self):
        arr = check_integer_array(np.array([1, 2, 3]), low=0, high=5)
        assert arr.dtype.kind == "i"

    def test_check_integer_array_rejects_floats(self):
        with pytest.raises(TypeError):
            check_integer_array(np.array([1.0]))

    def test_check_integer_array_bounds(self):
        with pytest.raises(ValueError):
            check_integer_array(np.array([-1]), low=0)
        with pytest.raises(ValueError):
            check_integer_array(np.array([10]), high=5)

    def test_check_positive(self):
        assert check_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0)
        with pytest.raises(ValueError):
            check_positive(-1.0)

    def test_check_probability(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01)

    def test_check_same_length(self):
        check_same_length(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            check_same_length(np.zeros(3), np.zeros(4))


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_change_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_63_bit_range(self):
        seed = derive_seed(123456789, "x")
        assert 0 <= seed < 2**63

    def test_rng_from_reproducible(self):
        a = rng_from(7, "stream").standard_normal(5)
        b = rng_from(7, "stream").standard_normal(5)
        assert np.array_equal(a, b)

    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_distinct_label_pairs_rarely_collide(self, x, y):
        if x != y:
            assert derive_seed(0, x) != derive_seed(0, y)
