"""Tests for the periodized multi-level DWT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.wavelet import WaveletTransform


class TestConstruction:
    def test_defaults(self):
        t = WaveletTransform(512, "db4", 5)
        assert t.n == 512
        assert t.levels == 5
        assert t.coefficient_length == 512

    def test_auto_levels(self):
        t = WaveletTransform(512, "db4", levels=None)
        # auto depth keeps every level's input at least 2x the filter
        # length: 512, 256, 128, 64, 32, 16 -> 6 levels for 8 taps
        assert t.levels == 6

    def test_auto_levels_haar(self):
        t = WaveletTransform(64, "haar", levels=None)
        assert t.levels == 5

    def test_indivisible_length_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveletTransform(96, "db4", levels=6)

    def test_tiny_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveletTransform(1, "haar")

    def test_zero_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveletTransform(64, "db4", levels=0)

    def test_band_slices_partition_everything(self):
        t = WaveletTransform(256, "db4", 4)
        slices = t.band_slices()
        covered = sorted(
            index
            for s in slices.values()
            for index in range(s.start, s.stop)
        )
        assert covered == list(range(256))
        assert slices["a"] == slice(0, 16)
        assert slices["d4"] == slice(16, 32)
        assert slices["d1"] == slice(128, 256)


class TestTransformCorrectness:
    @pytest.mark.parametrize("wavelet", ["haar", "db2", "db4", "db8", "sym4"])
    @pytest.mark.parametrize("n,levels", [(64, 3), (256, 4), (512, 5)])
    def test_perfect_reconstruction(self, wavelet, n, levels, rng):
        t = WaveletTransform(n, wavelet, levels)
        x = rng.standard_normal(n)
        assert np.allclose(t.inverse(t.forward(x)), x, atol=1e-10)

    @pytest.mark.parametrize("wavelet", ["haar", "db4", "sym4"])
    def test_energy_preservation(self, wavelet, rng):
        t = WaveletTransform(128, wavelet, 4)
        x = rng.standard_normal(128)
        c = t.forward(x)
        assert np.dot(c, c) == pytest.approx(np.dot(x, x), rel=1e-12)

    def test_synthesis_matrix_is_orthonormal(self):
        t = WaveletTransform(128, "db4", 4)
        psi = t.synthesis_matrix()
        assert np.allclose(psi.T @ psi, np.eye(128), atol=1e-10)

    def test_forward_is_transpose_of_inverse(self, rng):
        t = WaveletTransform(128, "db4", 4)
        psi = t.synthesis_matrix()
        x = rng.standard_normal(128)
        assert np.allclose(t.forward(x), psi.T @ x, atol=1e-10)
        c = rng.standard_normal(128)
        assert np.allclose(t.inverse(c), psi @ c, atol=1e-10)

    def test_constant_signal_concentrates_in_approximation(self):
        t = WaveletTransform(256, "db4", 4)
        c = t.forward(np.ones(256))
        slices = t.band_slices()
        detail_energy = sum(
            float(np.sum(c[s] ** 2))
            for name, s in slices.items()
            if name != "a"
        )
        assert detail_energy == pytest.approx(0.0, abs=1e-12)

    def test_linearity(self, rng):
        t = WaveletTransform(64, "db2", 3)
        x, y = rng.standard_normal(64), rng.standard_normal(64)
        assert np.allclose(
            t.forward(2.0 * x - 3.0 * y),
            2.0 * t.forward(x) - 3.0 * t.forward(y),
            atol=1e-10,
        )

    def test_wrong_shape_rejected(self):
        t = WaveletTransform(64, "haar", 3)
        with pytest.raises(ValueError):
            t.forward(np.zeros(65))
        with pytest.raises(ValueError):
            t.inverse(np.zeros(63))

    def test_float32_stays_float32(self, rng):
        t = WaveletTransform(128, "db4", 4)
        x = rng.standard_normal(128).astype(np.float32)
        c = t.forward(x)
        assert c.dtype == np.float32
        assert t.inverse(c).dtype == np.float32

    def test_float32_reconstruction_close(self, rng):
        t = WaveletTransform(128, "db4", 4)
        x = rng.standard_normal(128).astype(np.float32)
        assert np.allclose(t.inverse(t.forward(x)), x, atol=1e-5)

    def test_ecg_is_sparse_in_db4(self, record_100):
        """The premise of the paper: ECG compresses in the wavelet domain."""
        from repro.ecg.resample import resample_record

        resampled = resample_record(record_100, 256.0)
        x = resampled.channel(0)[:512]
        t = WaveletTransform(512, "db4", 5)
        captured = t.sparsity_profile(x, keep=50)
        assert captured > 0.97  # 50 of 512 coefficients carry >97 % energy

    def test_sparsity_profile_edges(self, rng):
        t = WaveletTransform(64, "haar", 3)
        x = rng.standard_normal(64)
        assert t.sparsity_profile(x, keep=0) == 0.0
        assert t.sparsity_profile(x, keep=64) == pytest.approx(1.0)
        assert t.sparsity_profile(np.zeros(64), keep=1) == 1.0


class TestHypothesisProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        hnp.arrays(
            np.float64,
            128,
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    def test_roundtrip_any_signal(self, x):
        t = WaveletTransform(128, "db4", 4)
        scale = max(1.0, float(np.max(np.abs(x))))
        assert np.allclose(t.inverse(t.forward(x)), x, atol=1e-8 * scale)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 127))
    def test_basis_vectors_have_unit_norm(self, index):
        t = WaveletTransform(128, "db4", 4)
        e = np.zeros(128)
        e[index] = 1.0
        assert np.linalg.norm(t.inverse(e)) == pytest.approx(1.0, rel=1e-10)
