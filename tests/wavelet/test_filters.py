"""Tests for orthonormal wavelet filter construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wavelet import available_wavelets, get_wavelet

#: Published db2 coefficients (Daubechies 1988).
DB2_REFERENCE = (
    0.4829629131445341,
    0.8365163037378079,
    0.2241438680420134,
    -0.1294095225512604,
)

#: Published db4 coefficients (first four taps).
DB4_REFERENCE_HEAD = (0.23037781, 0.71484657, 0.63088077, -0.02798377)


class TestKnownValues:
    def test_haar(self):
        h = get_wavelet("haar").lowpass()
        assert np.allclose(h, [1 / np.sqrt(2)] * 2)

    def test_db2_matches_published_table(self):
        h = get_wavelet("db2").lowpass()
        assert np.allclose(h, DB2_REFERENCE, atol=1e-12)

    def test_db4_matches_published_table(self):
        h = get_wavelet("db4").lowpass()
        assert np.allclose(h[:4], DB4_REFERENCE_HEAD, atol=1e-7)

    def test_db1_is_haar(self):
        assert np.allclose(
            get_wavelet("db1").lowpass(), get_wavelet("haar").lowpass()
        )

    def test_sym4_first_tap_matches_pywavelets(self):
        h = get_wavelet("sym4").lowpass()
        assert h[0] == pytest.approx(-0.07576571478927333, abs=1e-9)


class TestDefiningProperties:
    @pytest.mark.parametrize(
        "name", ["haar", "db2", "db3", "db4", "db5", "db6", "db8", "db10",
                 "sym2", "sym4", "sym5", "sym6", "sym8"]
    )
    def test_double_shift_orthonormality(self, name):
        h = get_wavelet(name).lowpass()
        length = len(h)
        for k in range(length // 2):
            value = sum(h[n] * h[n + 2 * k] for n in range(length - 2 * k))
            expected = 1.0 if k == 0 else 0.0
            assert value == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("name", ["db2", "db4", "db6", "sym4", "sym8"])
    def test_sum_is_sqrt2(self, name):
        assert get_wavelet(name).lowpass().sum() == pytest.approx(
            np.sqrt(2.0), abs=1e-10
        )

    @pytest.mark.parametrize("name", ["db2", "db4", "sym4"])
    def test_highpass_is_quadrature_mirror(self, name):
        w = get_wavelet(name)
        h, g = w.lowpass(), w.highpass()
        signs = np.where(np.arange(len(h)) % 2 == 0, 1.0, -1.0)
        assert np.allclose(g, signs * h[::-1])

    @pytest.mark.parametrize("name", ["db2", "db4", "db6", "sym4", "sym8"])
    def test_highpass_sums_to_zero(self, name):
        assert get_wavelet(name).highpass().sum() == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize(
        "name,moments", [("db2", 2), ("db4", 4), ("db6", 6), ("sym4", 4)]
    )
    def test_vanishing_moments(self, name, moments):
        """g annihilates polynomials up to degree moments-1."""
        g = get_wavelet(name).highpass()
        n = np.arange(len(g), dtype=np.float64)
        for power in range(moments):
            assert np.dot(g, n**power) == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("name", ["db4", "sym4"])
    def test_filter_length_is_twice_moments(self, name):
        w = get_wavelet(name)
        assert w.length == 2 * w.vanishing_moments

    def test_symlet_more_symmetric_than_db(self):
        """The symlet selection must not be *less* linear-phase than db."""
        from repro.wavelet.filters import _phase_nonlinearity

        db = get_wavelet("db8").lowpass()
        sym = get_wavelet("sym8").lowpass()
        assert _phase_nonlinearity(sym) <= _phase_nonlinearity(db) + 1e-9


class TestLookup:
    def test_available_wavelets_all_load(self):
        for name in available_wavelets():
            w = get_wavelet(name)
            assert w.length >= 2

    def test_case_insensitive(self):
        assert get_wavelet("DB4").name == "db4"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_wavelet("coif3")
        with pytest.raises(ConfigurationError):
            get_wavelet("dbx")
        with pytest.raises(ConfigurationError):
            get_wavelet("db99")
        with pytest.raises(ConfigurationError):
            get_wavelet("sym1")

    def test_cached_instances(self):
        assert get_wavelet("db4") is get_wavelet("db4")
