"""Tests for the matrix-free operator layer."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.wavelet import (
    ComposedOperator,
    DenseOperator,
    WaveletSynthesisOperator,
    WaveletTransform,
)


class TestDenseOperator:
    def test_matvec_matches_matmul(self, rng):
        matrix = rng.standard_normal((10, 20))
        op = DenseOperator(matrix)
        x = rng.standard_normal(20)
        assert np.allclose(op.matvec(x), matrix @ x)
        y = rng.standard_normal(10)
        assert np.allclose(op.rmatvec(y), matrix.T @ y)

    def test_sparse_matrix_supported(self, rng):
        matrix = sp.random(12, 30, density=0.2, random_state=0, format="csr")
        op = DenseOperator(matrix)
        x = rng.standard_normal(30)
        assert np.allclose(op.matvec(x), matrix @ x)
        assert np.allclose(op.to_dense(), matrix.toarray())

    def test_shape(self):
        assert DenseOperator(np.zeros((3, 7))).shape == (3, 7)

    def test_to_dense_identity(self):
        matrix = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(DenseOperator(matrix).to_dense(), matrix)


class TestWaveletSynthesisOperator:
    def test_matvec_is_inverse_transform(self, rng):
        t = WaveletTransform(64, "db4", 3)
        op = WaveletSynthesisOperator(t)
        c = rng.standard_normal(64)
        assert np.allclose(op.matvec(c), t.inverse(c))

    def test_rmatvec_is_forward_transform(self, rng):
        t = WaveletTransform(64, "db4", 3)
        op = WaveletSynthesisOperator(t)
        x = rng.standard_normal(64)
        assert np.allclose(op.rmatvec(x), t.forward(x))

    def test_to_dense_matches_synthesis_matrix(self):
        t = WaveletTransform(64, "db2", 3)
        assert np.allclose(
            WaveletSynthesisOperator(t).to_dense(), t.synthesis_matrix()
        )


class TestComposedOperator:
    def test_composition_matches_product(self, rng):
        a = rng.standard_normal((5, 8))
        b = rng.standard_normal((8, 12))
        composed = ComposedOperator(DenseOperator(a), DenseOperator(b))
        x = rng.standard_normal(12)
        assert np.allclose(composed.matvec(x), a @ b @ x)
        y = rng.standard_normal(5)
        assert np.allclose(composed.rmatvec(y), b.T @ a.T @ y)
        assert np.allclose(composed.to_dense(), a @ b)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ComposedOperator(
                DenseOperator(np.zeros((3, 4))), DenseOperator(np.zeros((5, 6)))
            )

    def test_matmul_syntax(self, rng):
        a = DenseOperator(rng.standard_normal((4, 6)))
        b = DenseOperator(rng.standard_normal((6, 9)))
        composed = a @ b
        assert composed.shape == (4, 9)

    def test_adjoint_consistency(self, rng):
        """<A x, y> == <x, A^T y> for the composed CS operator."""
        t = WaveletTransform(64, "db4", 3)
        phi = rng.standard_normal((32, 64))
        a = ComposedOperator(DenseOperator(phi), WaveletSynthesisOperator(t))
        x = rng.standard_normal(64)
        y = rng.standard_normal(32)
        assert np.dot(a.matvec(x), y) == pytest.approx(
            np.dot(x, a.rmatvec(y)), rel=1e-10
        )

    def test_generic_to_dense_from_matvec(self, rng):
        """LinearOperator.to_dense default path (column probing)."""
        t = WaveletTransform(32, "haar", 3)
        op = WaveletSynthesisOperator(t)
        dense = super(WaveletSynthesisOperator, op).to_dense()
        assert np.allclose(dense, t.synthesis_matrix())
